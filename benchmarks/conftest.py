"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` file regenerates one of the paper's tables/figures
through pytest-benchmark.  Benchmarks run at "smoke" quality so the whole
suite stays interactive; use the ``concord-repro`` CLI with
``--quality full`` for the numbers recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments.registry import run_experiment


@pytest.fixture(scope="session")
def quality():
    return "smoke"


def run_once(benchmark, experiment_id, quality):
    """Benchmark one experiment with a single round: the experiments are
    deterministic simulations, so repeated rounds only repeat identical
    work."""
    return benchmark.pedantic(
        run_experiment,
        args=(experiment_id,),
        kwargs={"quality": quality},
        rounds=1,
        iterations=1,
    )


def assert_summary(results, key_substring):
    """Find a summary entry whose key contains ``key_substring`` across a
    list of ExperimentResults; returns (key, value) of the first match."""
    for result in results:
        for key, value in result.summary.items():
            if key_substring in key:
                return key, value
    raise AssertionError(
        "no summary key containing {!r} in {}".format(
            key_substring, [list(r.summary) for r in results]
        )
    )
