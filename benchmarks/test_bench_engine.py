"""Benchmark: raw event-loop throughput.

Guards the simulator hot path (local bindings, hoisted trace branch, lazy-
cancellation compaction).  Two shapes:

* a plain event chain — the dispatch/completion pattern that dominates
  every run;
* a cancellation storm — the quantum-re-arm pattern (every event cancels a
  decoy timer) that exercises the dead-entry accounting and amortized heap
  compaction.

The floors are deliberately conservative (shared CI runners); the real
numbers land in ``BENCH_parallel.json`` via ``test_bench_parallel.py``.
"""

CHAIN_EVENTS = 100_000
STORM_EVENTS = 50_000
MIN_EVENTS_PER_SEC = 50_000


def _noop():
    return None


def _event_chain(num_events):
    """num_events self-rescheduling callbacks, no cancellations."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    remaining = [num_events]

    def step():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.after(10, step)

    sim.at(0, step)
    sim.run()
    return sim


def _cancellation_storm(num_events):
    """Every fired event re-arms a decoy timer and cancels the previous
    one — the preemption-timer pattern that motivated compaction."""
    from repro.sim.engine import Simulator

    sim = Simulator()
    remaining = [num_events]
    decoy = [None]

    def step():
        if decoy[0] is not None:
            decoy[0].cancel()
        remaining[0] -= 1
        if remaining[0] > 0:
            # Far enough out that dead decoys pile up in the heap instead
            # of being popped past by the advancing clock — compaction,
            # not pop-and-skip, must reclaim them.
            decoy[0] = sim.after(10_000_000, _noop)
            sim.after(10, step)

    sim.at(0, step)
    sim.run()
    return sim


def _events_per_sec(sim, benchmark):
    best_seconds = benchmark.stats.stats.min
    rate = sim.events_run / max(best_seconds, 1e-9)
    benchmark.extra_info["events_per_sec"] = round(rate)
    return rate


def test_engine_event_chain(benchmark):
    sim = benchmark.pedantic(
        _event_chain, args=(CHAIN_EVENTS,), rounds=3, iterations=1
    )
    assert sim.events_run == CHAIN_EVENTS
    assert sim.pending == 0
    assert _events_per_sec(sim, benchmark) > MIN_EVENTS_PER_SEC


def test_engine_cancellation_storm(benchmark):
    sim = benchmark.pedantic(
        _cancellation_storm, args=(STORM_EVENTS,), rounds=3, iterations=1
    )
    assert sim.events_run == STORM_EVENTS
    assert sim.events_cancelled == STORM_EVENTS - 1
    # Compaction kept the heap from accumulating all the dead timers.
    assert sim.compactions > 0
    assert sim.heap_size < STORM_EVENTS
    assert _events_per_sec(sim, benchmark) > MIN_EVENTS_PER_SEC / 2
