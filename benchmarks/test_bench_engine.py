"""Benchmark: Engine v2 — event-queue backends, the ``post`` fast-path,
the compiled IR fast-path, and the persistent worker pool.

Guards the simulator hot path (local bindings, hoisted trace branch, lazy-
cancellation compaction) across **both** queue backends, and writes the
headline numbers to ``BENCH_engine.json`` at the repo root (the CI perf
artifact).  Three shapes:

* a plain event chain — the dispatch/completion pattern that dominates
  every run — in both the handle-returning ``after`` form and the
  allocation-free ``post`` form;
* a cancellation storm — the quantum-re-arm pattern (every event cancels a
  decoy timer) that exercises the dead-entry accounting and amortized
  compaction;
* a kernel execution shoot-out — the interpreter vs the compiled IR
  fast-path on an instrumented kernel.

Targets from ISSUE 9 (``engine_events_per_sec`` >= 2x the 1,227,182
baseline recorded in PR 4's ``BENCH_parallel.json``; pool ``speedup >=
1.5`` at jobs=4 on a non-smoke sweep) are **recorded, not fatal**: shared
CI runners and low core counts move the wall-clock numbers, and the
determinism suites are the part that must never regress.
"""

import json
import os
import time
import warnings
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_engine.json"

CHAIN_EVENTS = 100_000
STORM_EVENTS = 50_000
MIN_EVENTS_PER_SEC = 50_000

#: engine_events_per_sec recorded by benchmarks/test_bench_parallel.py in
#: PR 4 — the floor Engine v2 is measured against.
BASELINE_EVENTS_PER_SEC = 1_227_182
ENGINE_TARGET = 2.0   # x over baseline, recorded-not-fatal
POOL_TARGET = 1.5     # pool speedup at jobs=4, recorded-not-fatal

#: The pool leg must be a non-smoke sweep (ISSUE 9 acceptance); override
#: only to debug the harness itself.
POOL_QUALITY = os.environ.get("REPRO_BENCH_POOL_QUALITY", "standard")

BACKENDS = ("heap", "wheel")


def _noop():
    return None


def _event_chain(num_events, queue="heap"):
    """num_events self-rescheduling callbacks, no cancellations."""
    from repro.sim.engine import Simulator

    sim = Simulator(queue=queue)
    remaining = [num_events]

    def step():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.after(10, step)

    sim.at(0, step)
    sim.run()
    return sim


def _post_chain(num_events, queue="heap"):
    """The same chain through ``post`` — no Event allocation, no handle."""
    from repro.sim.engine import Simulator

    sim = Simulator(queue=queue)
    remaining = [num_events]

    def step():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.post(10, step)

    sim.post(0, step)
    sim.run()
    return sim


def _cancellation_storm(num_events, queue="heap"):
    """Every fired event re-arms a decoy timer and cancels the previous
    one — the preemption-timer pattern that motivated compaction."""
    from repro.sim.engine import Simulator

    sim = Simulator(queue=queue)
    remaining = [num_events]
    decoy = [None]

    def step():
        if decoy[0] is not None:
            decoy[0].cancel()
        remaining[0] -= 1
        if remaining[0] > 0:
            # Far enough out that dead decoys pile up in the queue instead
            # of being popped past by the advancing clock — compaction,
            # not pop-and-skip, must reclaim them.
            decoy[0] = sim.after(10_000_000, _noop)
            sim.after(10, step)

    sim.at(0, step)
    sim.run()
    return sim


def _events_per_sec(sim, benchmark):
    best_seconds = benchmark.stats.stats.min
    rate = sim.events_run / max(best_seconds, 1e-9)
    benchmark.extra_info["events_per_sec"] = round(rate)
    return rate


def _timed_rate(fn, *args):
    """events/sec of one un-benchmarked run (artifact measurements)."""
    started = time.perf_counter()
    sim = fn(*args)
    return sim.events_run / max(time.perf_counter() - started, 1e-9)


@pytest.mark.parametrize("queue", BACKENDS)
def test_engine_event_chain(benchmark, queue):
    sim = benchmark.pedantic(
        _event_chain, args=(CHAIN_EVENTS, queue), rounds=3, iterations=1
    )
    assert sim.events_run == CHAIN_EVENTS
    assert sim.pending == 0
    assert _events_per_sec(sim, benchmark) > MIN_EVENTS_PER_SEC


@pytest.mark.parametrize("queue", BACKENDS)
def test_engine_post_chain(benchmark, queue):
    sim = benchmark.pedantic(
        _post_chain, args=(CHAIN_EVENTS, queue), rounds=3, iterations=1
    )
    assert sim.events_run == CHAIN_EVENTS
    assert sim.pending == 0
    assert _events_per_sec(sim, benchmark) > MIN_EVENTS_PER_SEC


@pytest.mark.parametrize("queue", BACKENDS)
def test_engine_cancellation_storm(benchmark, queue):
    sim = benchmark.pedantic(
        _cancellation_storm, args=(STORM_EVENTS, queue), rounds=3, iterations=1
    )
    assert sim.events_run == STORM_EVENTS
    assert sim.events_cancelled == STORM_EVENTS - 1
    # Compaction kept the queue from accumulating all the dead timers.
    assert sim.compactions > 0
    assert sim.heap_size < STORM_EVENTS
    assert _events_per_sec(sim, benchmark) > MIN_EVENTS_PER_SEC / 2


def _kernel_executor_seconds(backend):
    """Wall seconds to execute an instrumented kernel on one IR backend."""
    from repro.instrument.compile import executor_for
    from repro.instrument.kernels import KERNELS
    from repro.instrument.optim import optimize_function
    from repro.instrument.passes import (
        CACHELINE_STYLE,
        LoopUnrollPass,
        ProbeInsertionPass,
    )

    module = KERNELS[0].factory()
    for function in module.functions.values():
        optimize_function(function)
    probe_pass = ProbeInsertionPass(CACHELINE_STYLE)
    for function in module.functions.values():
        probe_pass.run(function)
    unroll = LoopUnrollPass(discount=True)
    for function in module.functions.values():
        unroll.run(function)
    executor = executor_for(module, backend=backend)
    started = time.perf_counter()
    result = executor.run()
    return time.perf_counter() - started, result


def _pool_sweep_speedup(jobs):
    """Run the Fig. 6-shaped sweep through a persistent pool and return
    the runner's own speedup estimate (in-worker compute seconds vs pool
    wall) plus the footer line."""
    from repro.core.presets import concord, persephone_fcfs, shinjuku
    from repro.experiments.common import load_grid, scale_for, sweep_systems
    from repro.hardware import c6420
    from repro.parallel import ParallelRunner
    from repro.workloads.named import bimodal_50_1_50_100

    scale = scale_for(POOL_QUALITY)
    machine = c6420()
    workload = bimodal_50_1_50_100()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    loads = load_grid(max_load, scale.load_points)
    configs = [persephone_fcfs(), shinjuku(5.0), concord(5.0)]
    with ParallelRunner(jobs=jobs) as runner:
        started = time.perf_counter()
        sweep_systems(
            machine, configs, workload, loads, scale.num_requests, seed=1,
            runner=runner,
        )
        wall = time.perf_counter() - started
        return runner.parallel_speedup(), runner.summary_line(), wall


def test_engine_artifact(benchmark):
    """Measure the Engine v2 headline numbers and write BENCH_engine.json.

    Everything against the ISSUE 9 targets is recorded-not-fatal; the only
    hard assertions are structural (the runs completed, the artifact is
    well-formed).
    """
    rates = {}
    for queue in BACKENDS:
        rates["chain_{}".format(queue)] = _timed_rate(
            _event_chain, CHAIN_EVENTS, queue
        )
        rates["post_{}".format(queue)] = _timed_rate(
            _post_chain, CHAIN_EVENTS, queue
        )

    interp_seconds, interp_result = _kernel_executor_seconds("interp")
    compiled_seconds, compiled_result = _kernel_executor_seconds("compiled")
    assert interp_result.cycles == compiled_result.cycles
    kernel_speedup = interp_seconds / max(compiled_seconds, 1e-9)

    pool_speedup, pool_footer, pool_wall = benchmark.pedantic(
        _pool_sweep_speedup, args=(4,), rounds=1, iterations=1
    )

    engine_events_per_sec = max(rates.values())
    engine_ratio = engine_events_per_sec / BASELINE_EVENTS_PER_SEC
    artifact = {
        "schema": 1,
        "baseline_events_per_sec": BASELINE_EVENTS_PER_SEC,
        "engine_events_per_sec": round(engine_events_per_sec),
        "engine_speedup_vs_baseline": round(engine_ratio, 3),
        "engine_target": ENGINE_TARGET,
        "engine_target_ok": engine_ratio >= ENGINE_TARGET,
        "events_per_sec": {k: round(v) for k, v in sorted(rates.items())},
        "compiled_kernel_speedup": round(kernel_speedup, 2),
        "pool": {
            "jobs": 4,
            "quality": POOL_QUALITY,
            "wall_seconds": round(pool_wall, 3),
            "speedup": round(pool_speedup, 3) if pool_speedup else None,
            "target": POOL_TARGET,
            "target_ok": (
                pool_speedup >= POOL_TARGET
                if pool_speedup is not None else None
            ),
            "footer": pool_footer,
        },
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    benchmark.extra_info.update(artifact)

    if engine_ratio < ENGINE_TARGET:
        warnings.warn(
            "engine_events_per_sec {:.0f} is {:.2f}x baseline, below the "
            "{:.1f}x target".format(
                engine_events_per_sec, engine_ratio, ENGINE_TARGET
            ),
            stacklevel=1,
        )
    if pool_speedup is not None and pool_speedup < POOL_TARGET:
        warnings.warn(
            "pool speedup {:.2f}x below target {:.2f}x — {}".format(
                pool_speedup, POOL_TARGET, pool_footer
            ),
            stacklevel=1,
        )

    assert kernel_speedup > 1.0  # compiling must never be a pessimization
    assert pool_footer.startswith("[runner:")
