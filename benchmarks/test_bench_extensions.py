"""Benchmarks: the extension experiments (JBSQ depth, SRPT, safety)."""

from conftest import run_once


def test_ext_jbsq(benchmark, quality):
    results = run_once(benchmark, "ext-jbsq", quality)
    summary = results[0].summary
    # k=2 removes nearly all handoff idle time vs k=1 (section 3.2).
    assert summary["idle_reduction_k1_to_k2_pct"] > 2
    # Deeper queues only hurt the tail.
    assert summary["tail_penalty_k6_vs_k2"] > -1


def test_ext_policies(benchmark, quality):
    results = run_once(benchmark, "ext-policies", quality)
    summary = results[0].summary
    # SRPT serves the short class at least as well as FCFS+PS.
    assert summary["short_p999_srpt"] <= 1.1 * summary["short_p999_fcfs"]


def test_ext_safety(benchmark, quality):
    results = run_once(benchmark, "ext-safety", quality)
    summary = results[0].summary
    # API-window preemption disabling cripples Shinjuku on the 100us-GET
    # microbenchmark; Concord's lock counter keeps preemption timely.
    assert (
        summary["knee_krps[Concord]"] > 2 * summary["knee_krps[Shinjuku]"]
    )


def test_ext_scaling(benchmark, quality):
    results = run_once(benchmark, "ext-scaling", quality)
    fixed, dispersion = results
    # Both section-6 designs push past the single dispatcher's ceiling.
    single = fixed.summary["single_dispatcher_sustained_mrps"]
    assert fixed.summary["replicated_sustained_mrps"] > single
    assert fixed.summary["logical_queue_sustained_mrps"] > single
    # But global visibility still balances heavy tails better.
    assert dispersion.summary["logical_p999"] > 0
    assert dispersion.summary["physical_p999"] > 0
