"""Benchmark: fault-injection overhead on the fault-free hot path.

The fault layer promises **zero overhead when disabled**: the balancer,
dispatcher, and workers hold ``injector`` / ``faults`` attributes that
stay ``None`` on a plan-free rack, and every hook is one falsy check
(``tests/test_faults.py`` proves the stronger property — bit-identical
results).  This benchmark pins the *throughput* side of that promise:

* the raw engine drain loop, compared against the baseline recorded in
  ``BENCH_obs.json`` (same microbenchmark shape) — the disabled path
  must stay within a few percent of it;
* a plan-free rack run vs the same rack under a crash plan with
  detector+retry resilience — recorded, not asserted (chaos legitimately
  costs events; it just must not perturb fault-free runs).

Timings land in ``BENCH_faults.json`` at the repo root (the CI artifact).
``REPRO_BENCH_QUALITY=standard`` grows the run sizes.
"""

import json
import os
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_faults.json"
BASELINE = REPO_ROOT / "BENCH_obs.json"
QUALITY = os.environ.get("REPRO_BENCH_QUALITY", "smoke")
NUM_EVENTS = 100_000
NUM_REQUESTS = 3_000 if QUALITY == "smoke" else 15_000

#: Loose ceiling on (baseline engine events/sec) / (events/sec now): the
#: target is <2% added cost, but shared runners are noisy, so the gate
#: only trips on a gross regression and the exact ratio is recorded.
MAX_SLOWDOWN_VS_BASELINE = 1.10


def _engine_events_per_sec(num_events=NUM_EVENTS, repeats=3):
    """Best-of-N drain-loop throughput (same shape as the obs bench)."""
    from repro.sim.engine import Simulator

    best = 0.0
    for _ in range(repeats):
        sim = Simulator()
        remaining = [num_events]

        def step():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.after(10, step)

        sim.at(0, step)
        started = time.perf_counter()
        sim.run()
        elapsed = max(time.perf_counter() - started, 1e-9)
        best = max(best, num_events / elapsed)
    return best


def _rack_run_seconds(fault_plan=None, resilience=None):
    """Wall time of one fixed 3-server rack run, optionally under chaos."""
    from repro.cluster import Cluster
    from repro.core.presets import concord
    from repro.hardware import c6420
    from repro.workloads import PoissonProcess
    from repro.workloads.named import bimodal_50_1_50_100

    workload = bimodal_50_1_50_100()
    machine = c6420(4)
    num_servers = 3
    load = 0.7 * num_servers * machine.num_workers * 1e6 / workload.mean_us()

    cluster = Cluster(
        machine, concord(5.0), num_servers, policy="jsq", seed=1,
        fault_plan=fault_plan, resilience=resilience,
    )
    started = time.perf_counter()
    result = cluster.run(workload, PoissonProcess(load), NUM_REQUESTS)
    seconds = time.perf_counter() - started
    assert result.drained
    return seconds


def test_disabled_injector_does_not_slow_the_hot_path(benchmark):
    from repro.faults import ResilienceConfig, crash_plan

    events_per_sec = benchmark.pedantic(
        _engine_events_per_sec, rounds=1, iterations=1
    )

    baseline_events_per_sec = None
    ratio_vs_baseline = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        baseline_events_per_sec = baseline.get("engine_events_per_sec")
        if baseline_events_per_sec:
            ratio_vs_baseline = baseline_events_per_sec / events_per_sec

    plan_free_seconds = min(_rack_run_seconds() for _ in range(3))
    span_us = NUM_REQUESTS / (0.7 * 3 * 4 * 1e6 / 27.0) * 1e6  # ~mean 27us
    chaos_seconds = _rack_run_seconds(
        fault_plan=crash_plan(
            at_us=0.25 * span_us, down_us=0.3 * span_us, server=1
        ),
        resilience=ResilienceConfig(),
    )

    artifact = {
        "schema": 1,
        "quality": QUALITY,
        "num_requests": NUM_REQUESTS,
        "engine_events_per_sec": round(events_per_sec),
        "baseline_engine_events_per_sec": baseline_events_per_sec,
        "slowdown_vs_baseline": (
            round(ratio_vs_baseline, 4) if ratio_vs_baseline else None
        ),
        "rack_run_seconds_plan_free": round(plan_free_seconds, 4),
        "rack_run_seconds_crash_retry": round(chaos_seconds, 4),
        "chaos_overhead": round(
            chaos_seconds / max(plan_free_seconds, 1e-9), 3
        ),
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    benchmark.extra_info.update(artifact)

    if ratio_vs_baseline is not None:
        assert ratio_vs_baseline < MAX_SLOWDOWN_VS_BASELINE, (
            "plan-free engine throughput regressed {:.1%} vs "
            "BENCH_obs.json".format(ratio_vs_baseline - 1.0)
        )
    # Absolute sanity floor, mirroring test_bench_engine.py.
    assert events_per_sec > 50_000
