"""Benchmark: regenerate Fig. 10 (LevelDB under Meta's ZippyDB mix)."""

from conftest import run_once


def test_fig10(benchmark, quality):
    results = run_once(benchmark, "fig10", quality)
    result = results[0]
    concord = result.summary["knee_krps[Concord]"]
    shinjuku = result.summary["knee_krps[Shinjuku]"]
    # Concord sustains more load than Shinjuku (paper: ~19% more).
    assert concord >= shinjuku
