"""Benchmark: regenerate Fig. 11 (cumulative mechanism ablation)."""

from conftest import run_once


def test_fig11(benchmark, quality):
    results = run_once(benchmark, "fig11", quality)
    summary = results[0].summary
    shinjuku = summary["knee_krps[Shinjuku: IPIs+SQ]"]
    coop_sq = summary["knee_krps[Co-op+SQ]"]
    coop_jbsq = summary["knee_krps[Co-op+JBSQ(2)]"]
    full = summary["knee_krps[Concord: Co-op+JBSQ(2)+dispatcher work]"]
    # Each mechanism adds throughput (monotone chain, small tolerance for
    # sweep-grid noise at smoke sizes).
    assert coop_sq >= 0.97 * shinjuku
    assert coop_jbsq >= coop_sq
    assert full >= 0.97 * coop_jbsq
    assert full > 1.1 * shinjuku
