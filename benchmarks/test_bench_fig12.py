"""Benchmark: regenerate Fig. 12 (preemption overhead reduction vs quantum)."""

from conftest import run_once


def test_fig12(benchmark, quality):
    results = run_once(benchmark, "fig12", quality)
    result = results[0]
    # Cumulative mechanisms cut overhead at every microsecond-scale quantum.
    for row in result.rows:
        quantum, shinjuku, coop_sq, concord = row
        if quantum <= 10:
            assert coop_sq < shinjuku
            assert concord <= coop_sq
    ratio = result.summary["shinjuku_vs_concord_overhead_ratio_at_1us"]
    assert ratio > 2
