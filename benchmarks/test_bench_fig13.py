"""Benchmark: regenerate Fig. 13 (work-conserving dispatcher on a 4-core VM)."""

from conftest import run_once


def test_fig13(benchmark, quality):
    results = run_once(benchmark, "fig13", quality)
    summary = results[0].summary
    gain = summary["Concord_vs_Concord w/o dispatcher work_improvement_pct"]
    # Paper: ~33% more throughput from running app logic on the dispatcher.
    assert gain > 10
