"""Benchmark: regenerate Fig. 14 (low-load slowdown cost of work stealing)."""

from conftest import run_once


def test_fig14(benchmark, quality):
    results = run_once(benchmark, "fig14", quality)
    result = results[0]
    # Bursty low load makes the dispatcher steal occasionally...
    assert result.summary["total_steals"] > 0
    # ...and the stealing penalty — Concord vs the same system with
    # stealing disabled — is small and bounded (paper: ~+3 slowdown).
    penalty = result.summary["mean_steal_penalty_p999"]
    assert -3 < penalty < 10
