"""Benchmark: regenerate Fig. 15 (Concord vs Intel user-space IPIs)."""

from conftest import run_once


def test_fig15(benchmark, quality):
    results = run_once(benchmark, "fig15", quality)
    result = results[0]
    ratio = result.summary["uipi_vs_concord_mean_ratio_small_quanta"]
    # Paper: cooperation imposes ~2x lower overhead than UIPIs.
    assert ratio > 1.5
    # Concord's absolute overhead is slightly higher here than on the
    # c6420 (1.5x pricier coherence misses) but still small.
    concord_column = [row[3] for row in result.rows]
    assert all(value < 12 for value in concord_column)
