"""Benchmark: regenerate Fig. 2 (preemption-mechanism overhead vs quantum)."""

from conftest import assert_summary, run_once


def test_fig2(benchmark, quality):
    results = run_once(benchmark, "fig2", quality)
    # Shape: IPIs ~30% at 2us, ~6% at 10us; Concord >10x cheaper at 2us.
    _, ipi_2us = assert_summary(results, "ipi_overhead_pct_at_2us")
    assert 25 < ipi_2us < 40
    _, ipi_10us = assert_summary(results, "ipi_overhead_pct_at_10us")
    assert 4 < ipi_10us < 9
    _, ratio = assert_summary(results, "ipi_vs_concord_ratio_at_2us")
    assert ratio > 8
