"""Benchmark: regenerate Fig. 3 (worker idle time, SQ vs JBSQ(2))."""

from conftest import assert_summary, run_once


def test_fig3(benchmark, quality):
    results = run_once(benchmark, "fig3", quality)
    result = results[0]
    # Idle overhead decreases with service time for the SQ systems...
    sq_column = [row[1] for row in result.rows]
    assert sq_column[0] > sq_column[2] > sq_column[-1]
    # ...and JBSQ(2) idles far less than the single queue at every
    # microsecond-scale service time.
    for row in result.rows:
        _service, shinjuku_sq, _persephone_sq, concord_jbsq = row
        assert concord_jbsq < shinjuku_sq
    _, ratio = assert_summary(results, "sq_vs_jbsq_idle_ratio_at_1us")
    assert ratio > 2
