"""Benchmark: regenerate Fig. 5 (impact of non-instantaneous preemption)."""

from conftest import assert_summary, run_once


def test_fig5(benchmark, quality):
    results = run_once(benchmark, "fig5", quality)
    _, precise = assert_summary(results, "precise_knee_fraction")
    _, noisy = assert_summary(results, "noisy_n52_knee_fraction")
    _, blocked = assert_summary(results, "no_preemption_knee_fraction")
    # Noisy preemption hugs precise preemption...
    assert noisy > 0.85 * precise
    # ...while no preemption crosses the SLO far earlier.
    assert blocked < 0.9 * precise
