"""Benchmark: regenerate Fig. 6 (Bimodal(50:1,50:100) slowdown vs load)."""

from conftest import run_once


def test_fig6(benchmark, quality):
    results = run_once(benchmark, "fig6", quality)
    # Concord beats Shinjuku at both quanta; the gap widens at 2us.
    gains = []
    for result in results:
        key = "Concord_vs_Shinjuku_improvement_pct"
        assert key in result.summary, result.summary
        gains.append(result.summary[key])
    q5_gain, q2_gain = gains
    assert q5_gain > 5
    assert q2_gain > q5_gain
    # Persephone-FCFS crosses the SLO far earlier than Concord.
    for result in results:
        persephone = result.summary["knee_krps[Persephone-FCFS]"]
        concord = result.summary["knee_krps[Concord]"]
        assert persephone < concord
