"""Benchmark: regenerate Fig. 7 (Bimodal(99.5:0.5,0.5:500) slowdown vs load)."""

from conftest import run_once


def test_fig7(benchmark, quality):
    results = run_once(benchmark, "fig7", quality)
    gains = []
    for result in results:
        shinjuku = result.summary["knee_krps[Shinjuku]"]
        concord = result.summary["knee_krps[Concord]"]
        # Concord beats Shinjuku at both quanta on this heavy tail.
        assert concord > shinjuku
        gains.append(concord / shinjuku - 1.0)
    q5_gain, q2_gain = gains
    # The advantage grows as the quantum shrinks (paper: 20% -> 52%).
    assert q2_gain > q5_gain
