"""Benchmark: regenerate Fig. 8 (Fixed(1us) and TPCC)."""

from conftest import run_once


def test_fig8(benchmark, quality):
    results = run_once(benchmark, "fig8", quality)
    fixed, tpcc = results

    # Fixed(1us): all three systems are dispatcher-bound together — knees
    # within ~15% of each other, Concord at a small deficit to Shinjuku.
    knees = {
        name.split("[")[1].rstrip("]"): value
        for name, value in fixed.summary.items()
        if name.startswith("knee_krps")
    }
    assert max(knees.values()) < 1.2 * min(knees.values())
    assert knees["Concord"] <= 1.05 * knees["Shinjuku"]

    # TPCC: low dispersion -> preemption buys little; run-to-completion is
    # competitive (the paper has it winning outright; our Concord's cheap
    # preemption closes the gap) and Concord stays ahead of Shinjuku.
    assert (
        tpcc.summary["knee_krps[Persephone-FCFS]"]
        >= 0.85 * tpcc.summary["knee_krps[Concord]"]
    )
    assert (
        tpcc.summary["knee_krps[Concord]"]
        >= 0.95 * tpcc.summary["knee_krps[Shinjuku]"]
    )
