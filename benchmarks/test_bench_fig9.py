"""Benchmark: regenerate Fig. 9 (LevelDB 50% GET / 50% SCAN)."""

from conftest import run_once


def test_fig9(benchmark, quality):
    results = run_once(benchmark, "fig9", quality)
    gains = [
        result.summary["Concord_vs_Shinjuku_improvement_pct"]
        for result in results
    ]
    q5_gain, q2_gain = gains
    # The paper's headline workload: large gains at 5us, larger at 2us.
    assert q5_gain > 15
    assert q2_gain > q5_gain
