"""Benchmark: observability overhead on the uninstrumented hot path.

The probe bus promises **zero overhead when disabled**: components hold a
``probes`` attribute that stays ``None`` and every probe site is guarded
by one falsy check, while the engine drain loop is not touched at all
(the bus rides the pre-existing hoisted ``_trace`` slot).  This benchmark
pins that promise and records the actual cost of turning tracing on:

* the raw engine drain loop, compared against the baseline recorded in
  ``BENCH_parallel.json`` (same microbenchmark shape) — the disabled
  path must stay within a few percent of it;
* an untraced server run vs the same run under ``TraceConfig.full()``
  and ``TraceConfig.flight_only()`` — recorded, not asserted (full
  tracing legitimately costs memory and time; it just must not change
  results, which ``tests/test_obs.py`` enforces differentially).

Timings land in ``BENCH_obs.json`` at the repo root (the CI artifact).
``REPRO_BENCH_QUALITY=standard`` grows the run sizes.
"""

import json
import os
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_obs.json"
BASELINE = REPO_ROOT / "BENCH_parallel.json"
QUALITY = os.environ.get("REPRO_BENCH_QUALITY", "smoke")
NUM_EVENTS = 100_000
NUM_REQUESTS = 4_000 if QUALITY == "smoke" else 20_000

#: Loose ceiling on (baseline engine events/sec) / (events/sec now): the
#: target is <2% added cost, but shared runners are noisy, so the gate
#: only trips on a gross regression and the exact ratio is recorded.
MAX_SLOWDOWN_VS_BASELINE = 1.10


def _engine_events_per_sec(num_events=NUM_EVENTS, repeats=3):
    """Best-of-N drain-loop throughput (same shape as the parallel bench)."""
    from repro.sim.engine import Simulator

    best = 0.0
    for _ in range(repeats):
        sim = Simulator()
        remaining = [num_events]

        def step():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.after(10, step)

        sim.at(0, step)
        started = time.perf_counter()
        sim.run()
        elapsed = max(time.perf_counter() - started, 1e-9)
        best = max(best, num_events / elapsed)
    return best


def _server_run_seconds(trace_config=None):
    """Wall time of one fixed server run, optionally under a session."""
    from repro.core.presets import concord
    from repro.core.server import Server
    from repro.hardware import c6420
    from repro.obs import tracing
    from repro.workloads import PoissonProcess
    from repro.workloads.named import bimodal_50_1_50_100

    workload = bimodal_50_1_50_100()
    machine = c6420(8)
    load = 0.7 * machine.num_workers * 1e6 / workload.mean_us()

    def go():
        server = Server(machine, concord(5.0), seed=1)
        started = time.perf_counter()
        result = server.run(workload, PoissonProcess(load), NUM_REQUESTS)
        seconds = time.perf_counter() - started
        return result, seconds

    if trace_config is None:
        result, seconds = go()
    else:
        with tracing(trace_config):
            result, seconds = go()
    assert len(result.records) == NUM_REQUESTS
    return seconds


def test_disabled_probes_do_not_slow_the_hot_path(benchmark):
    from repro.obs import TraceConfig

    events_per_sec = benchmark.pedantic(
        _engine_events_per_sec, rounds=1, iterations=1
    )

    baseline_events_per_sec = None
    ratio_vs_baseline = None
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        baseline_events_per_sec = baseline.get("engine_events_per_sec")
        if baseline_events_per_sec:
            ratio_vs_baseline = baseline_events_per_sec / events_per_sec

    untraced_seconds = min(_server_run_seconds() for _ in range(3))
    flight_seconds = _server_run_seconds(TraceConfig.flight_only())
    traced_seconds = _server_run_seconds(TraceConfig.full())

    artifact = {
        "schema": 1,
        "quality": QUALITY,
        "num_requests": NUM_REQUESTS,
        "engine_events_per_sec": round(events_per_sec),
        "baseline_engine_events_per_sec": baseline_events_per_sec,
        "slowdown_vs_baseline": (
            round(ratio_vs_baseline, 4) if ratio_vs_baseline else None
        ),
        "server_run_seconds_untraced": round(untraced_seconds, 4),
        "server_run_seconds_flight_only": round(flight_seconds, 4),
        "server_run_seconds_full_trace": round(traced_seconds, 4),
        "flight_only_overhead": round(
            flight_seconds / max(untraced_seconds, 1e-9), 3
        ),
        "full_trace_overhead": round(
            traced_seconds / max(untraced_seconds, 1e-9), 3
        ),
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    benchmark.extra_info.update(artifact)

    if ratio_vs_baseline is not None:
        assert ratio_vs_baseline < MAX_SLOWDOWN_VS_BASELINE, (
            "disabled-probe engine throughput regressed {:.1%} vs "
            "BENCH_parallel.json".format(ratio_vs_baseline - 1.0)
        )
    # Absolute sanity floor, mirroring test_bench_engine.py.
    assert events_per_sec > 50_000
