"""Benchmark: the parallel sweep executor and the result cache.

Runs the Fig. 6-shaped sweep (Persephone-FCFS / Shinjuku / Concord on
Bimodal(50:1,50:100)) three ways — serial, all-cores parallel, and a warm
cache rerun — asserts all three are bit-identical, and writes the timings
to ``BENCH_parallel.json`` at the repo root (the CI perf artifact).

``REPRO_BENCH_QUALITY`` picks the sweep size (default ``smoke`` so the
benchmark suite stays interactive; ``standard`` reproduces the numbers in
docs/performance.md).  Speedup is *recorded*, not asserted: a 1-core runner
legitimately measures ~1.0x and the determinism assertions are the part
that must never regress.
"""

import json
import os
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_parallel.json"
QUALITY = os.environ.get("REPRO_BENCH_QUALITY", "smoke")
#: Tracked (non-fatal) floor: the pool must not make the sweep slower.
#: Measured against the pool's own estimate (in-worker compute seconds vs
#: pool wall), which is meaningful even on a 1-core runner where the
#: end-to-end wall-clock ratio legitimately sits near 1.0.
SPEEDUP_TARGET = 0.95


def _fig6_sweep(runner, scale):
    from repro.core.presets import concord, persephone_fcfs, shinjuku
    from repro.experiments.common import load_grid, sweep_systems
    from repro.hardware import c6420
    from repro.workloads.named import bimodal_50_1_50_100

    machine = c6420()
    workload = bimodal_50_1_50_100()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    loads = load_grid(max_load, scale.load_points)
    configs = [persephone_fcfs(), shinjuku(5.0), concord(5.0)]
    sweeps = sweep_systems(
        machine, configs, workload, loads, scale.num_requests, seed=1,
        runner=runner,
    )
    return {name: list(sweep.points) for name, sweep in sweeps.items()}


def _engine_events_per_sec(num_events=100_000):
    from repro.sim.engine import Simulator

    sim = Simulator()
    remaining = [num_events]

    def step():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.after(10, step)

    sim.at(0, step)
    started = time.perf_counter()
    sim.run()
    return num_events / max(time.perf_counter() - started, 1e-9)


def test_parallel_sweep_and_cache(benchmark, tmp_path):
    from repro.experiments.common import scale_for
    from repro.parallel import ParallelRunner, ResultCache, resolve_jobs

    scale = scale_for(QUALITY)
    jobs = resolve_jobs(0)  # one worker per available core

    started = time.perf_counter()
    serial = _fig6_sweep(ParallelRunner(jobs=1), scale)
    serial_seconds = time.perf_counter() - started

    cache_dir = tmp_path / "cache"
    pool_runner = ParallelRunner(jobs=jobs, cache=ResultCache(cache_dir))
    started = time.perf_counter()
    parallel = benchmark.pedantic(
        _fig6_sweep,
        args=(pool_runner, scale),
        rounds=1,
        iterations=1,
    )
    parallel_seconds = time.perf_counter() - started
    pool_speedup = pool_runner.parallel_speedup()
    runner_footer = pool_runner.summary_line()
    pool_runner.close()

    warm_runner = ParallelRunner(jobs=1, cache=ResultCache(cache_dir))
    started = time.perf_counter()
    warm = _fig6_sweep(warm_runner, scale)
    warm_seconds = time.perf_counter() - started

    # The non-negotiable part: parallel and cached results are bit-identical.
    assert serial == parallel
    assert serial == warm
    assert warm_runner.stats["jobs_run"] == 0  # every point came from cache

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    warm_over_cold = warm_seconds / max(parallel_seconds, 1e-9)
    events_per_sec = _engine_events_per_sec()
    artifact = {
        "schema": 1,
        "quality": QUALITY,
        "jobs": jobs,
        "sweep": {
            "workload": "bimodal-50-1-50-100",
            "configs": sorted(serial),
            "load_points": scale.load_points,
            "num_requests": scale.num_requests,
        },
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "warm_cache_seconds": round(warm_seconds, 3),
        "warm_over_cold": round(warm_over_cold, 4),
        "engine_events_per_sec": round(events_per_sec),
        "points_identical": True,
        "pool_speedup": round(pool_speedup, 3) if pool_speedup else None,
        "pool_speedup_target": SPEEDUP_TARGET,
        "pool_speedup_ok": (
            pool_speedup >= SPEEDUP_TARGET if pool_speedup is not None else None
        ),
        "runner_footer": runner_footer,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    benchmark.extra_info.update(artifact)

    # Tracked, non-fatal: the persistent pool should beat its estimated
    # serial cost.  A shared/1-core CI runner can dip below the target, so
    # a miss warns loudly (and lands in the artifact) instead of failing.
    if pool_speedup is not None and pool_speedup < SPEEDUP_TARGET:
        warnings.warn(
            "pool speedup {:.2f}x below target {:.2f}x — {}".format(
                pool_speedup, SPEEDUP_TARGET, runner_footer
            ),
            stacklevel=1,
        )

    # Sanity floors only — the speedup itself is environment-dependent and
    # recorded rather than asserted (see module docstring).
    assert speedup > 0.4
    assert warm_runner.cache.hits == sum(len(v) for v in warm.values())
    assert warm_seconds < parallel_seconds
