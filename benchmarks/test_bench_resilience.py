"""Benchmark: the sweep-supervision layer's overhead.

Resilience must be close to free: journaling every completed job to the
checkpoint (and the watchdog's singleton-task dispatch) sit on the sweep
hot path, so this benchmark measures a Fig. 6-shaped sweep three ways —
bare pool (the PR-9 baseline), checkpointed, and a checkpoint resume
where every job is served from the journal — asserts all three are
bit-identical, and writes the timings to ``BENCH_resilience.json`` at
the repo root (the CI perf artifact, diffed by ``concord-repro
bench-diff``).

``REPRO_BENCH_QUALITY`` picks the sweep size (default ``smoke``).  The
overhead ratio is *recorded*, not asserted against a tight bound: on a
busy CI runner the same sweep's wall time jitters more than the journal
costs.  The determinism assertions are the part that must never regress.
"""

import json
import os
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_resilience.json"
BASELINE = REPO_ROOT / "BENCH_parallel.json"
QUALITY = os.environ.get("REPRO_BENCH_QUALITY", "smoke")
#: Tracked (non-fatal) ceiling: journaling every result should cost only
#: a few percent of sweep wall time.
OVERHEAD_CEILING = 1.15


def _fig6_sweep(runner, scale):
    from repro.core.presets import concord, persephone_fcfs, shinjuku
    from repro.experiments.common import load_grid, sweep_systems
    from repro.hardware import c6420
    from repro.workloads.named import bimodal_50_1_50_100

    machine = c6420()
    workload = bimodal_50_1_50_100()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    loads = load_grid(max_load, scale.load_points)
    configs = [persephone_fcfs(), shinjuku(5.0), concord(5.0)]
    sweeps = sweep_systems(
        machine, configs, workload, loads, scale.num_requests, seed=1,
        runner=runner,
    )
    return {name: list(sweep.points) for name, sweep in sweeps.items()}


def test_checkpoint_overhead_and_resume(benchmark, tmp_path):
    from repro.experiments.common import scale_for
    from repro.parallel import ParallelRunner, SweepCheckpoint, resolve_jobs

    scale = scale_for(QUALITY)
    jobs = resolve_jobs(0)  # one worker per available core
    journal = tmp_path / "sweep.ckpt"

    started = time.perf_counter()
    bare = _fig6_sweep(ParallelRunner(jobs=jobs), scale)
    bare_seconds = time.perf_counter() - started

    ckpt = SweepCheckpoint(journal)
    ckpt_runner = ParallelRunner(jobs=jobs, checkpoint=ckpt)
    started = time.perf_counter()
    checkpointed = benchmark.pedantic(
        _fig6_sweep,
        args=(ckpt_runner, scale),
        rounds=1,
        iterations=1,
    )
    checkpointed_seconds = time.perf_counter() - started
    runner_footer = ckpt_runner.summary_line()
    appends = ckpt.appends
    ckpt_runner.close()
    ckpt.close()

    resume_ckpt = SweepCheckpoint(journal)
    resume_runner = ParallelRunner(jobs=1, checkpoint=resume_ckpt)
    started = time.perf_counter()
    resumed = _fig6_sweep(resume_runner, scale)
    resume_seconds = time.perf_counter() - started

    # The non-negotiable part: supervision never changes results.
    assert bare == checkpointed
    assert bare == resumed
    assert resume_runner.stats["jobs_run"] == 0  # all from the journal
    assert resume_runner.stats["checkpoint_hits"] == sum(
        len(v) for v in resumed.values()
    )
    resume_runner.close()
    resume_ckpt.close()

    overhead = checkpointed_seconds / max(bare_seconds, 1e-9)
    journal_bytes = journal.stat().st_size
    baseline = None
    if BASELINE.exists():
        try:
            baseline = json.loads(BASELINE.read_text()).get(
                "parallel_seconds"
            )
        except (ValueError, OSError):
            baseline = None
    artifact = {
        "schema": 1,
        "quality": QUALITY,
        "jobs": jobs,
        "sweep": {
            "workload": "bimodal-50-1-50-100",
            "configs": sorted(bare),
            "load_points": scale.load_points,
            "num_requests": scale.num_requests,
        },
        "bare_pool_seconds": round(bare_seconds, 3),
        "checkpointed_seconds": round(checkpointed_seconds, 3),
        "checkpoint_overhead": round(overhead, 4),
        "checkpoint_overhead_ceiling": OVERHEAD_CEILING,
        "checkpoint_overhead_ok": overhead <= OVERHEAD_CEILING,
        "resume_seconds": round(resume_seconds, 3),
        "resume_speedup_vs_bare": round(
            bare_seconds / max(resume_seconds, 1e-9), 3
        ),
        "journal_appends": appends,
        "journal_bytes": journal_bytes,
        "bench_parallel_pool_seconds": baseline,
        "points_identical": True,
        "runner_footer": runner_footer,
    }
    ARTIFACT.write_text(json.dumps(artifact, indent=2) + "\n")
    benchmark.extra_info.update(artifact)

    # Tracked, non-fatal: wall-time jitter on shared runners exceeds the
    # journal's true cost, so a miss warns (and lands in the artifact)
    # instead of failing the suite.
    if overhead > OVERHEAD_CEILING:
        warnings.warn(
            "checkpoint overhead {:.2f}x above the {:.2f}x ceiling — "
            "{}".format(overhead, OVERHEAD_CEILING, runner_footer),
            stacklevel=1,
        )

    # Sanity floors: resume must be dramatically cheaper than simulating,
    # and the journal must actually contain the sweep.
    assert resume_seconds < bare_seconds
    assert appends > 0
    assert journal_bytes > len(b"REPROCKPT")
