"""Benchmark: regenerate Table 1 (instrumentation overhead & timeliness)."""

from conftest import run_once


def test_table1(benchmark, quality):
    results = run_once(benchmark, "table1", quality)
    summary = results[0].summary
    # Aggregate claims of Table 1: Concord's mean overhead is ~1% and far
    # below Compiler Interrupts'; some entries are negative (unrolling);
    # preemption-timeliness sigma < 2us for every benchmark.
    assert -1.0 < summary["concord_mean_overhead_pct"] < 3.0
    assert summary["ci_mean_overhead_pct"] > 5 * max(
        0.1, summary["concord_mean_overhead_pct"]
    )
    assert summary["kernels_with_negative_concord_overhead"] >= 1
    assert summary["max_std_us"] < 2.0
    assert summary["concord_max_overhead_pct"] < 10.0
