"""Print the perf trajectory across the repo's BENCH_*.json artifacts.

Each benchmark PR leaves one artifact at the repo root (parallel -> obs ->
faults -> engine).  This helper lines their shared metrics up side by side
so drift across PRs is visible at a glance:

    PYTHONPATH=src python benchmarks/trend.py [REPO_ROOT]

For a focused two-artifact diff use the CLI instead:

    concord-repro bench-diff BENCH_parallel.json BENCH_engine.json
"""

import sys
from pathlib import Path

from repro.experiments.benchdiff import TRAJECTORY, load_metrics


def trajectory_paths(root):
    """The canonical artifacts that actually exist under ``root``."""
    root = Path(root)
    return [root / name for name in TRAJECTORY if (root / name).exists()]


def render_trend(root):
    """One aligned table: artifacts as columns, metrics as rows."""
    paths = trajectory_paths(root)
    if not paths:
        return "no BENCH_*.json artifacts under {}".format(root)
    columns = [(p.name.replace("BENCH_", "").replace(".json", ""),
                load_metrics(p)) for p in paths]
    keys = sorted({key for _name, metrics in columns for key in metrics})

    def fmt(value):
        if value is None:
            return "-"
        if value == int(value) and abs(value) >= 1000:
            return "{:,}".format(int(value))
        return "{:g}".format(round(value, 4))

    rows = [["metric"] + [name for name, _m in columns]]
    for key in keys:
        rows.append([key] + [fmt(m.get(key)) for _n, m in columns])
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for n, row in enumerate(rows):
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        ).rstrip())
        if n == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    root = argv[0] if argv else Path(__file__).resolve().parent.parent
    print(render_trend(root))
    return 0


if __name__ == "__main__":
    sys.exit(main())
