#!/usr/bin/env python3
"""The Concord compiler pipeline on a user-written kernel (section 4.3).

Builds a small program in the instrumentation IR, runs the two probe
passes (cache-line cooperation and rdtsc/Compiler-Interrupts style), and
reports what the paper's Table 1 reports: instrumentation overhead and
preemption timeliness.  Then plugs the resulting profile into the
scheduler simulation so notice latency comes from *this* program's probe
gaps.

Run:  python examples/compiler_instrumentation.py
"""

from repro.core import Server, concord
from repro.hardware import c6420
from repro.instrument import (
    CACHELINE_STYLE,
    RDTSC_STYLE,
    FunctionBuilder,
    Interpreter,
    profile_kernel,
)
from repro.instrument.ir import Module
from repro.metrics import summarize_slowdowns
from repro.workloads import PoissonProcess, bimodal_50_1_50_100


def build_matmul_kernel(scale=1.0):
    """A naive matrix-multiply-like kernel: triple nested loop with an
    8-op inner body — exactly the tight-loop shape that needs unrolling."""
    module = Module("user-matmul")
    b = FunctionBuilder("main")
    b.li("acc", 0.0)
    n = int(40 * scale)

    def row(i):
        def col(j):
            def inner(k):
                a_val = b.fresh("a")
                b.emit("fmul", a_val, i, k)
                b_val = b.fresh("b")
                b.emit("fmul", b_val, k, j)
                prod = b.fresh("p")
                b.emit("fmul", prod, a_val, b_val)
                b.emit("fadd", "acc", "acc", prod)

            b.counted_loop("k{}".format(id(j)), n, inner)

        b.counted_loop("j{}".format(id(i)), n, col)

    b.counted_loop("i", n, row)
    b.ret("acc")
    module.add(b.function)
    return module


def main():
    baseline = Interpreter(build_matmul_kernel()).run()
    print("baseline: {} instructions, {} cycles ({:.0f} us)".format(
        baseline.instructions, baseline.cycles, baseline.cycles / 2600))

    for style, label in ((CACHELINE_STYLE, "Concord cache-line"),
                         (RDTSC_STYLE, "Compiler-Interrupts rdtsc")):
        profile = profile_kernel(build_matmul_kernel, style)
        print("\n{} instrumentation:".format(label))
        print("  overhead: {:+.2f}%".format(100 * profile.overhead_fraction))
        print("  probes fired: {}, mean gap {:.0f} cycles "
              "({:.0f} ns)".format(profile.probes_fired,
                                   profile.mean_gap_cycles,
                                   profile.mean_gap_cycles / 2.6))
        print("  preemption timeliness sigma at 5us quantum: "
              "{:.3f} us".format(profile.timeliness_std_us(5.0)))

    # Use the Concord profile to drive notice latency in the scheduler.
    profile = profile_kernel(build_matmul_kernel, CACHELINE_STYLE)
    machine = c6420()
    workload = bimodal_50_1_50_100()
    load = 0.7 * machine.num_workers * 1e6 / workload.mean_us()
    server = Server(machine, concord(5.0), seed=1, profile=profile)
    result = server.run(workload, PoissonProcess(load), 15_000)
    summary = summarize_slowdowns(result.slowdowns())
    print("\nscheduler simulation with this program's probe gaps:")
    print("  p99.9 slowdown at {:.0f} kRps: {:.2f} (50x SLO: {})".format(
        load / 1e3, summary.p999, "met" if summary.meets_slo() else "MISSED"))


if __name__ == "__main__":
    main()
