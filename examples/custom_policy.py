#!/usr/bin/env python3
"""Custom scheduling policies on Concord's dispatcher.

Section 3.1: because Concord's dispatcher has global visibility of every
request, it "can easily be extended to support algorithms such as Shortest
Remaining Processing Time".  This example runs the same high-dispersion
workload under FCFS(+PS requeue) and SRPT and shows the classic trade:
SRPT protects the short requests' tail at the expense of the long class.

Run:  python examples/custom_policy.py
"""

from repro.core import Server, concord
from repro.hardware import c6420
from repro.metrics import format_table, summarize_slowdowns
from repro.workloads import PoissonProcess, bimodal_50_1_50_100


def main():
    machine = c6420()
    workload = bimodal_50_1_50_100()
    load_rps = 0.78 * machine.num_workers * 1e6 / workload.mean_us()
    print("workload {}  at {:.0f} kRps\n".format(workload.name,
                                                 load_rps / 1e3))
    rows = []
    for policy in ("fcfs", "srpt"):
        config = concord(quantum_us=5.0, policy=policy)
        server = Server(machine, config, seed=3)
        result = server.run(workload, PoissonProcess(load_rps), 25_000)
        records = result.measured_records()
        for kind in ("short", "long"):
            slowdowns = [r.slowdown() for r in records if r.kind == kind]
            summary = summarize_slowdowns(slowdowns)
            rows.append([
                policy.upper(), kind, summary.p50, summary.p99, summary.p999,
            ])
    print(format_table(
        ["policy", "class", "p50", "p99", "p99.9"], rows,
        title="Slowdown by request class",
    ))
    print("\nSRPT keeps 1us requests ahead of 100us ones at every decision "
          "point;\nFCFS+PS only rescues them once per quantum.")


if __name__ == "__main__":
    main()
