#!/usr/bin/env python3
"""LevelDB server example (section 5.3).

Combines the two halves of this reproduction:

1. *Functional*: builds a real LevelDB-like store through the Concord API
   (setup / setup_worker / handle_request), populates it with 15,000 keys,
   and executes actual GET/PUT/SCAN requests against it.
2. *Timing*: serves the paper's ZippyDB production mix (78% GET, 13% PUT,
   6% DELETE, 3% SCAN) on the simulated Concord and Shinjuku runtimes with
   their respective safety-first preemption models, and reports the tail.

Run:  python examples/leveldb_server.py
"""

import random

from repro.core import Server, concord, shinjuku
from repro.hardware import c6420
from repro.kvstore import (
    LevelDBApp,
    concord_lock_counter_safety,
    shinjuku_api_window_safety,
)
from repro.metrics import summarize_slowdowns
from repro.workloads import PoissonProcess, leveldb_zippydb


def functional_demo():
    print("== functional: real store through the Concord API ==")
    app = LevelDBApp(num_keys=15_000)
    app.setup()
    for core in range(4):
        app.setup_worker(core)

    rng = random.Random(7)
    sample_key = app.key_for(rng.randrange(app.num_keys))
    get = app.handle_request({"op": "GET", "key": sample_key})
    print("GET {!r} -> {!r}".format(sample_key, get["value"]))

    app.handle_request({"op": "PUT", "key": b"hot-key", "value": b"v2"})
    scan = app.handle_request(
        {"op": "SCAN", "start": b"key00000000", "end": b"key00000005"}
    )
    print("SCAN first 5 keys -> {} rows".format(len(scan["rows"])))
    app.handle_request({"op": "DELETE", "key": b"hot-key"})
    print("store stats: {}".format(app.db.stats()))
    print("requests handled functionally: {}\n".format(app.requests_handled))


def timing_demo():
    print("== timing: ZippyDB mix on the simulated runtimes ==")
    machine = c6420()
    workload = leveldb_zippydb()
    load_rps = 0.7 * machine.num_workers * 1e6 / workload.mean_us()
    print("offered load: {:.0f} kRps ({} mean {:.3g} us)\n".format(
        load_rps / 1e3, workload.name, workload.mean_us()))
    configs = [
        shinjuku(5.0, safety=shinjuku_api_window_safety()),
        concord(5.0, safety=concord_lock_counter_safety()),
    ]
    for config in configs:
        server = Server(machine, config, seed=11)
        result = server.run(workload, PoissonProcess(load_rps), 25_000)
        summary = summarize_slowdowns(result.slowdowns())
        by_kind = {}
        for record in result.measured_records():
            by_kind.setdefault(record.kind, []).append(record.slowdown())
        print("{:10s}  overall p99.9 slowdown {:7.2f}".format(
            config.name, summary.p999))
        for kind in sorted(by_kind):
            kind_summary = summarize_slowdowns(by_kind[kind])
            print("            {:7s} p99.9 {:8.2f}  (n={})".format(
                kind, kind_summary.p999, kind_summary.count))
    print("\nPreemption keeps 600ns GETs from stalling behind 500us SCANs;"
          "\nConcord does it with an ~8x cheaper notification (section 3.1).")


if __name__ == "__main__":
    functional_demo()
    timing_demo()
