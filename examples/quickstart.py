#!/usr/bin/env python3
"""Quickstart: simulate Concord vs Shinjuku on a heavy-tailed workload.

Builds the paper's primary testbed (14 workers), runs both runtimes against
Bimodal(99.5:0.5, 0.5:500) — Meta's USR-like mix of 0.5 µs and 500 µs
requests — at the same offered load with common random numbers, and prints
the tail-slowdown comparison.

Run:  python examples/quickstart.py
"""

from repro.core import Server, concord, shinjuku
from repro.hardware import c6420
from repro.metrics import summarize_slowdowns
from repro.workloads import PoissonProcess, bimodal_995_05_500


def main():
    machine = c6420()
    workload = bimodal_995_05_500()
    # 55% of nominal capacity — right around Shinjuku's SLO knee
    # (Fig. 7 left), where the runtimes differ most visibly.
    load_rps = 0.55 * machine.num_workers * 1e6 / workload.mean_us()
    print("machine: {} ({} workers @ {:.1f} GHz)".format(
        machine.name, machine.num_workers, machine.clock.freq_hz / 1e9))
    print("workload: {} (mean {:.3g} us)".format(
        workload.name, workload.mean_us()))
    print("offered load: {:.0f} kRps\n".format(load_rps / 1e3))

    for config in (shinjuku(quantum_us=5.0), concord(quantum_us=5.0)):
        server = Server(machine, config, seed=42)
        result = server.run(workload, PoissonProcess(load_rps), 20_000)
        summary = summarize_slowdowns(result.slowdowns())
        print("{:10s}  p50 {:6.2f}   p99 {:7.2f}   p99.9 {:8.2f}   "
              "meets 50x SLO: {}".format(
                  config.name, summary.p50, summary.p99, summary.p999,
                  "yes" if summary.meets_slo() else "NO"))
        print("            dispatcher util {:.0%}, preemptions {}, "
              "requests stolen by dispatcher {}".format(
                  result.dispatcher_utilization(),
                  sum(w["preemptions"] for w in result.worker_stats),
                  result.dispatcher_stats["steal_completions"]))
    print("\nConcord's cheaper preemption + JBSQ(2) + work-conserving "
          "dispatcher buy a lower tail at the same load (section 5.2).")


if __name__ == "__main__":
    main()
