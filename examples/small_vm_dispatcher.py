#!/usr/bin/env python3
"""The work-conserving dispatcher on a small cloud VM (Fig. 13).

On a 16-core server, dedicating one core to dispatching costs ~6% of the
machine; on a 4-vCPU VM it costs 25% (section 2.2.3).  This example runs
the LevelDB 50/50 workload on the 4-core configuration with and without
dispatcher work stealing and sweeps load until each variant violates the
50x slowdown SLO.

Run:  python examples/small_vm_dispatcher.py
"""

from repro.core import concord, concord_no_steal
from repro.hardware import cloud_vm_4core
from repro.kvstore import concord_lock_counter_safety
from repro.metrics import format_table, knee_load
from repro.metrics.sweep import LoadSweep
from repro.workloads import leveldb_50get_50scan


def main():
    machine = cloud_vm_4core()
    workload = leveldb_50get_50scan()
    safety = concord_lock_counter_safety()
    max_load = 1.4 * machine.num_workers * 1e6 / workload.mean_us()
    loads = [max_load * f for f in (0.25, 0.5, 0.7, 0.85, 1.0)]

    configs = [
        concord_no_steal(5.0, safety=safety),
        concord(5.0, safety=safety),
    ]
    sweeps = {}
    for config in configs:
        sweep = LoadSweep(machine, config, workload, num_requests=6_000,
                          seed=5)
        sweep.run(loads)
        sweeps[config.name] = sweep

    rows = []
    for i, load in enumerate(loads):
        rows.append(
            [load / 1e3]
            + [sweeps[c.name].points[i].p999 for c in configs]
            + [sweeps["Concord"].points[i].steals]
        )
    print(format_table(
        ["load_krps"] + [c.name for c in configs] + ["steals"],
        rows,
        title="p99.9 slowdown on the 4-core VM (2 workers)",
    ))
    for config in configs:
        knee = knee_load(sweeps[config.name].points)
        print("  {}: sustains {:.1f} kRps within the 50x SLO".format(
            config.name, knee / 1e3))
    base = knee_load(sweeps[configs[0].name].points)
    boosted = knee_load(sweeps[configs[1].name].points)
    if base > 0:
        print("  work conservation buys {:+.0f}% (paper: ~33%)".format(
            100 * (boosted / base - 1)))


if __name__ == "__main__":
    main()
