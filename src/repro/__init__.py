"""Reproduction of "Achieving Microsecond-Scale Tail Latency Efficiently
with Approximate Optimal Scheduling" (Concord, SOSP 2023).

The package rebuilds the paper's entire system as a cycle-granular
discrete-event simulation plus functional substrates:

* :mod:`repro.core` — the Concord runtime, its baselines (Shinjuku,
  Persephone-FCFS), and the section-6 scalability designs;
* :mod:`repro.instrument` — the compiler-instrumentation pipeline
  (IR, probe passes, interpreter, profiles, Table-1 kernels);
* :mod:`repro.kvstore` — a LevelDB-like store with the paper's service
  time model and safety-first preemption variants;
* :mod:`repro.workloads`, :mod:`repro.hardware`, :mod:`repro.sim`,
  :mod:`repro.models`, :mod:`repro.metrics` — substrates and tooling;
* :mod:`repro.experiments` — one generator per paper table/figure
  (CLI: ``concord-repro``).

Quickstart::

    from repro.core import Server, concord
    from repro.hardware import c6420
    from repro.workloads import PoissonProcess, bimodal_995_05_500

    server = Server(c6420(), concord(quantum_us=5.0), seed=1)
    result = server.run(bimodal_995_05_500(), PoissonProcess(2e6), 20_000)

See README.md, DESIGN.md, and docs/ for the full story.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
