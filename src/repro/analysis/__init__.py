"""repro.analysis — whole-codebase determinism & purity sanitizer.

PR 4's guarantees (bit-identical parallel sweeps, a content-addressed
result cache) assume every parallel job ``run()`` is a pure function of
its fields.  This package *checks* that assumption statically, over the
repository's own Python source:

* a rule-based lint engine (:mod:`repro.analysis.rules`) with the
  determinism/parallel-safety catalogue of
  :mod:`repro.analysis.determinism` (DET001–DET005, PAR001–PAR002) and
  ``# repro-san: ignore[...]`` suppressions;
* an interprocedural effect analysis (:mod:`repro.analysis.effects`)
  that builds a call graph across ``repro.*``, infers per-function
  effect sets over the {clock, global-rng, io, env, unordered-iter}
  lattice, and emits a purity certificate for the ``SimJob`` /
  ``ServerJob`` / ``RackJob`` entry points;
* text/JSON reporters and the ``repro-san`` CLI
  (:mod:`repro.analysis.cli`), wired into CI as a gate.

See ``docs/determinism.md`` for the full story.
"""

from repro.analysis.effects import (
    ALL_EFFECTS,
    DEFAULT_ENTRY_POINTS,
    FORBIDDEN_EFFECTS,
    EffectAnalysis,
    EffectScanner,
    ModuleContext,
    PurityCertificate,
)
from repro.analysis.report import render_json, render_text, report_dict
from repro.analysis.rules import (
    ERROR,
    WARNING,
    Finding,
    Rule,
    all_rules,
    run_rules,
)
from repro.analysis.source import SourceFile, discover_sources

__all__ = [
    "ALL_EFFECTS",
    "DEFAULT_ENTRY_POINTS",
    "FORBIDDEN_EFFECTS",
    "EffectAnalysis",
    "EffectScanner",
    "ModuleContext",
    "PurityCertificate",
    "render_json",
    "render_text",
    "report_dict",
    "ERROR",
    "WARNING",
    "Finding",
    "Rule",
    "all_rules",
    "run_rules",
    "SourceFile",
    "discover_sources",
]
