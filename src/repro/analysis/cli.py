"""``repro-san``: the determinism & purity sanitizer CLI.

Examples::

    repro-san src/repro                    # lint + certify, text report
    repro-san --format json --output repro-san.json src/repro
    repro-san --rules DET001,DET003 src/repro/cluster
    repro-san --list-rules
    repro-san --no-certify tests           # rules only, any tree

Exit status is non-zero on any unsuppressed ERROR finding, or — when
certification runs — on a failed purity certificate for the parallel
job entry points (``--entry`` overrides which).
"""

import argparse
import sys
from pathlib import Path

from repro.analysis.effects import (
    DEFAULT_ENTRY_POINTS,
    EffectAnalysis,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ERROR, all_rules, rules_by_code, run_rules
from repro.analysis.source import discover_sources

__all__ = ["main", "sanitize"]


def _default_target():
    """The installed ``repro`` package itself."""
    import repro

    return str(Path(repro.__file__).parent)


def sanitize(paths, rules=None, certify=True, entries=None):
    """Run the sanitizer over ``paths``.

    Returns ``(sources, findings, certificate)`` where ``certificate``
    is None when certification is disabled or no entry point lives in
    the analysed tree.
    """
    sources = []
    for path in paths:
        sources.extend(discover_sources(path))
    findings = run_rules(sources, rules=rules)
    certificate = None
    if certify:
        entries = tuple(entries) if entries else DEFAULT_ENTRY_POINTS
        analysis = EffectAnalysis(sources)
        present = [e for e in entries if e in analysis.functions]
        if present or entries != DEFAULT_ENTRY_POINTS:
            certificate = analysis.certify(entries=entries)
    return sources, findings, certificate


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-san",
        description="Whole-codebase determinism & purity sanitizer: lint "
                    "rules plus an interprocedural effect analysis that "
                    "certifies the parallel job entry points sim-pure.",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="package directories or files to analyse "
             "(default: the installed repro package)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the report to FILE",
    )
    parser.add_argument(
        "--rules", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--entry", action="append", metavar="MODULE:QUALNAME",
        help="purity-certificate entry point (repeatable; default: the "
             "three parallel job run() methods)",
    )
    parser.add_argument(
        "--no-certify", action="store_true",
        help="skip the interprocedural purity certificate",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print("{}  {:7}  {}".format(
                rule.code, rule.severity, rule.title
            ))
        return 0

    rules = None
    if args.rules:
        try:
            rules = rules_by_code(
                [code.strip() for code in args.rules.split(",")]
            )
        except KeyError as exc:
            parser.error(str(exc.args[0]))

    paths = args.paths or [_default_target()]
    try:
        sources, findings, certificate = sanitize(
            paths,
            rules=rules,
            certify=not args.no_certify,
            entries=args.entry,
        )
    except (FileNotFoundError, SyntaxError) as exc:
        print("repro-san: error: {}".format(exc), file=sys.stderr)
        return 2

    if args.format == "json":
        text = render_json(findings, sources, certificate)
    else:
        text = render_text(
            findings, sources, certificate,
            show_suppressed=args.show_suppressed,
        )
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")

    errors = [
        f for f in findings
        if f.severity == ERROR and not f.suppressed
    ]
    if errors:
        print(
            "repro-san: {} unsuppressed error finding(s)".format(
                len(errors)
            ),
            file=sys.stderr,
        )
        return 1
    if certificate is not None and not certificate.ok:
        print("repro-san: purity certificate FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
