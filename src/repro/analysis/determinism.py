"""The determinism and parallel-safety rule catalogue.

=======  ===================================================================
code     flags
=======  ===================================================================
DET001   wall-clock reads (``time.time``, ``datetime.now``, ...)
DET002   process-global randomness (module-level ``random``/
         ``numpy.random`` calls, ``os.urandom``, unseeded constructors)
DET003   iteration over an unordered container (set, ``globals()``/
         ``vars()``) in an order-sensitive position
DET004   ``id()`` used for ordering or as a mapping key
DET005   environment / filesystem reads inside simulation packages
PAR001   lambdas or local closures in parallel job specs
PAR002   mutable class-level state on frozen job dataclasses
=======  ===================================================================

DET001–003 apply everywhere (the analysis pipeline itself must be
deterministic to make reports diffable); DET005 is scoped to the
packages whose code runs *inside* a simulation, where ambient reads
would leak into cached results.  Suppress a deliberate finding with
``# repro-san: ignore[CODE] -- reason`` (see ``docs/determinism.md``).
"""

import ast

from repro.analysis.effects import (
    CLOCK,
    ENV,
    GLOBAL_RNG,
    IO,
    UNORDERED_ITER,
    EffectScanner,
    dotted_name,
)
from repro.analysis.rules import ERROR, Rule, register

__all__ = [
    "SIM_PACKAGES",
    "WallClockRule",
    "GlobalRngRule",
    "UnorderedIterationRule",
    "IdentityOrderRule",
    "AmbientReadRule",
    "JobClosureRule",
    "MutableJobStateRule",
]

#: Packages whose code executes inside a simulation: ambient reads here
#: change results the cache believes are content-addressed.
SIM_PACKAGES = (
    "repro.sim",
    "repro.core",
    "repro.cluster",
    "repro.workloads",
    "repro.kvstore",
    "repro.metrics",
    "repro.hardware",
    "repro.models",
    # Observability runtime: probes ride inside simulations, so the same
    # ambient-read discipline applies.  The export half (repro.obs.export)
    # does io strictly after runs and stays out of the sim path.
    "repro.obs.events",
    "repro.obs.bus",
    "repro.obs.recorder",
    "repro.obs.registry",
    "repro.obs.session",
    "repro.obs.spans",
    # Only the job specs: the rest of repro.parallel (runner supervision,
    # result cache, checkpoint journal) is orchestration that decides
    # *whether* a job runs, never *what* it computes — its wall-clock
    # reads and io happen strictly outside job execution, and the
    # kill/resume differentials in tests/test_resilience.py enforce that
    # supervised results stay bit-identical.
    "repro.parallel.jobs",
    # The compiled IR fast-path: exec-generated closures run inside
    # simulations (profile_kernel), so the generator itself must be
    # certified sim-pure — the closures can only read what it emits.
    "repro.instrument.compile",
    # Fault injection and resilience mutate live simulation state; their
    # determinism (seeded injector stream, fixed thresholds) is exactly
    # what the certificate must cover.
    "repro.faults",
)

#: The picklable job dataclasses the parallel runner ships to workers.
_JOB_CLASSES = ("SimJob", "ServerJob", "RackJob", "FaultJob")


def in_sim_path(module):
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in SIM_PACKAGES
    )


class _EffectBackedRule(Rule):
    """Base for rules that report one effect kind from the scanner."""

    effect = None

    def applies_to(self, src):
        return True

    def findings(self, src, ctx):
        if not self.applies_to(src):
            return []
        scanner = EffectScanner(ctx)
        scanner.scan_function(src.tree)
        return [
            self.finding(src, source, self.message(source))
            for source in scanner.sources
            if source.effect == self.effect
        ]

    def message(self, source):
        return source.detail


@register
class WallClockRule(_EffectBackedRule):
    code = "DET001"
    severity = ERROR
    title = "wall-clock read"
    effect = CLOCK

    def message(self, source):
        return (
            "{}; results must depend only on the simulated clock and "
            "the seed".format(source.detail)
        )


@register
class GlobalRngRule(_EffectBackedRule):
    code = "DET002"
    severity = ERROR
    title = "process-global or unseeded RNG"
    effect = GLOBAL_RNG

    def message(self, source):
        return (
            "{}; use a seeded random.Random (e.g. via "
            "repro.sim.rng.RngStreams) instead".format(source.detail)
        )


@register
class UnorderedIterationRule(_EffectBackedRule):
    code = "DET003"
    severity = ERROR
    title = "order-sensitive iteration over an unordered container"
    effect = UNORDERED_ITER


@register
class AmbientReadRule(_EffectBackedRule):
    code = "DET005"
    severity = ERROR
    title = "environment/filesystem read in a simulation path"

    def applies_to(self, src):
        return in_sim_path(src.module)

    def findings(self, src, ctx):
        if not self.applies_to(src):
            return []
        scanner = EffectScanner(ctx)
        scanner.scan_function(src.tree)
        return [
            self.finding(
                src, source,
                "{}; simulation code may consume only its explicit "
                "arguments and seed".format(source.detail),
            )
            for source in scanner.sources
            if source.effect in (ENV, IO)
        ]


@register
class IdentityOrderRule(Rule):
    code = "DET004"
    severity = ERROR
    title = "id() used for ordering or keying"

    def findings(self, src, ctx):
        findings = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                self._check_sort_key(src, ctx, node, findings)
            elif isinstance(node, ast.Compare):
                self._check_compare(src, node, findings)
            elif isinstance(node, ast.Assign):
                self._check_subscript_key(src, node, findings)
        return findings

    def _check_sort_key(self, src, ctx, node, findings):
        func = node.func
        is_sorter = (
            isinstance(func, ast.Name)
            and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_sorter:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            if self._keys_on_identity(kw.value):
                findings.append(self.finding(
                    src, node,
                    "sort key uses id()/hash(); addresses and hash "
                    "seeds vary between processes",
                ))

    @staticmethod
    def _keys_on_identity(value):
        if isinstance(value, ast.Name) and value.id in ("id", "hash"):
            return True
        if isinstance(value, ast.Lambda):
            return any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in ("id", "hash")
                for sub in ast.walk(value.body)
            )
        return False

    @staticmethod
    def _is_id_call(node):
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def _check_compare(self, src, node, findings):
        operands = [node.left] + list(node.comparators)
        ordering = any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
            for op in node.ops
        )
        if ordering and any(self._is_id_call(op) for op in operands):
            findings.append(self.finding(
                src, node,
                "comparing id() values orders by memory address",
            ))

    def _check_subscript_key(self, src, node, findings):
        for target in node.targets:
            if not isinstance(target, ast.Subscript):
                continue
            if any(
                self._is_id_call(sub) for sub in ast.walk(target.slice)
            ):
                findings.append(self.finding(
                    src, node,
                    "id() as a mapping key ties state to memory "
                    "addresses; key by a stable field instead",
                ))


@register
class JobClosureRule(Rule):
    code = "PAR001"
    severity = ERROR
    title = "lambda/closure in a parallel job spec"

    def findings(self, src, ctx):
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func, ctx.imports)
            if dotted is None:
                continue
            if dotted.rsplit(".", 1)[-1] not in _JOB_CLASSES:
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                if isinstance(value, ast.Lambda):
                    findings.append(self.finding(
                        src, value,
                        "lambda passed into a {} spec: lambdas do not "
                        "pickle and have no stable cache "
                        "identity".format(dotted.rsplit(".", 1)[-1]),
                    ))
        return findings


@register
class MutableJobStateRule(Rule):
    code = "PAR002"
    severity = ERROR
    title = "mutable class-level state on a frozen dataclass"

    _MUTABLE_CALLS = ("list", "dict", "set", "bytearray")

    def findings(self, src, ctx):
        findings = []
        for scan in ctx.classes.values():
            if not scan.frozen_dataclass:
                continue
            for stmt in scan.node.body:
                value = None
                if isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                elif isinstance(stmt, ast.Assign):
                    value = stmt.value
                if value is None or not self._is_mutable(value, ctx):
                    continue
                findings.append(self.finding(
                    src, stmt,
                    "mutable class-level default on frozen dataclass "
                    "{}: shared across every instance and silently "
                    "diverges between worker processes; use "
                    "field(default_factory=...)".format(scan.name),
                ))
        return findings

    def _is_mutable(self, value, ctx):
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func, ctx.imports)
            if dotted in self._MUTABLE_CALLS:
                return True
        return False
