"""Effect matchers, call graph, and interprocedural effect analysis.

The sanitizer's semantic core.  Determinism hazards are modelled as a
small powerset lattice of *effects*:

========  ==========================================================
effect    introduced by
========  ==========================================================
clock     wall-clock reads (``time.time``, ``datetime.now``, ...)
rng       process-global randomness (module-level ``random`` /
          ``numpy.random`` functions, ``os.urandom``, unseeded
          ``random.Random()``)
io        filesystem reads (``open``, ``Path.read_text``,
          ``os.listdir``, ...)
env       ambient environment (``os.environ``, ``os.getenv``)
uiter     iteration over an unordered container in an
          order-sensitive position
========  ==========================================================

:class:`EffectAnalysis` builds a call graph across every analysed
module, seeds each function with the effects its own body introduces
(:class:`EffectScanner`), and joins effect sets over call edges to a
fixed point — so a ``time.time()`` buried four calls deep still shows
up in the effect set of the entry point above it.  :meth:`certify`
turns that into a :class:`PurityCertificate` for the ``run()`` entry
points the parallel executor and the result cache trust (see
``docs/determinism.md``).

Call-edge resolution is deliberately pragmatic (this is a sanitizer,
not a verifier): constructor-typed locals and ``self.attr`` receivers
resolve precisely; untyped attribute calls fall back to matching every
known method of that name *unless* the name collides with a builtin
container method; calls that resolve to nothing in the analysed tree
are recorded as assumed-pure externals on the certificate.
"""

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "CLOCK",
    "GLOBAL_RNG",
    "IO",
    "ENV",
    "UNORDERED_ITER",
    "ALL_EFFECTS",
    "FORBIDDEN_EFFECTS",
    "DEFAULT_ENTRY_POINTS",
    "EffectSource",
    "EffectScanner",
    "ModuleContext",
    "EffectAnalysis",
    "EntryReport",
    "PurityCertificate",
]

CLOCK = "clock"
GLOBAL_RNG = "global-rng"
IO = "io"
ENV = "env"
UNORDERED_ITER = "unordered-iter"

ALL_EFFECTS = (CLOCK, GLOBAL_RNG, IO, ENV, UNORDERED_ITER)

#: A *sim-pure* function may exhibit none of these.
FORBIDDEN_EFFECTS = frozenset(ALL_EFFECTS)

#: The entry points the parallel runner and ResultCache assume pure.
DEFAULT_ENTRY_POINTS = (
    "repro.parallel.jobs:SimJob.run",
    "repro.parallel.jobs:ServerJob.run",
    "repro.parallel.jobs:RackJob.run",
    "repro.parallel.jobs:FaultJob.run",
)

MODULE_BODY = "<module>"

# -- what introduces each effect --------------------------------------------

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime", "time.clock_gettime_ns",
    "time.localtime", "time.gmtime", "time.asctime", "time.ctime",
    "time.strftime", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Module-level functions of :mod:`random` that draw from the process
#: global RNG (``random.Random(seed)`` instances are the sanctioned way).
_RANDOM_MODULE_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed", "setstate", "binomialvariate",
})

_RNG_EXACT = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: numpy.random names that are fine *when seeded* (flagged only when
#: called with no arguments).
_SEEDABLE_CTORS = frozenset({
    "random.Random", "numpy.random.RandomState", "numpy.random.default_rng",
})

_NUMPY_SAFE = frozenset({"SeedSequence", "Generator", "BitGenerator",
                         "PCG64", "Philox", "MT19937", "SFC64"})

_IO_CALLS = frozenset({
    "open", "io.open", "input", "os.listdir", "os.scandir", "os.walk",
    "os.stat", "os.lstat", "os.read", "os.path.exists", "os.path.isfile",
    "os.path.isdir", "os.path.getsize", "os.path.getmtime", "glob.glob",
    "glob.iglob",
})

#: Distinctively pathlib read methods — flagged on any receiver.
_IO_METHOD_NAMES = frozenset({"read_text", "read_bytes", "iterdir", "rglob"})

_ENV_ATTRS = frozenset({"os.environ", "os.environb"})
_ENV_CALLS = frozenset({"os.getenv"})

#: Builtins that consume an iterable without depending on its order.
_ORDER_NEUTRAL_CONSUMERS = frozenset({
    "sorted", "len", "min", "max", "any", "all", "set", "frozenset",
})

#: Builtins whose result depends on iteration order.
_ORDER_SENSITIVE_CONSUMERS = frozenset({
    "list", "tuple", "enumerate", "iter", "next", "sum",
})

#: Attribute-call names that (on an unknown receiver) are assumed to hit a
#: builtin container, never a repro method — precise resolution through a
#: typed receiver is required to create a call edge for these.
_CONTAINER_METHODS = frozenset({
    "get", "put", "pop", "popitem", "popleft", "push", "append",
    "appendleft", "add", "remove", "discard", "clear", "copy", "update",
    "extend", "insert", "sort", "reverse", "keys", "values", "items",
    "setdefault", "count", "index", "join", "split", "rsplit", "strip",
    "lstrip", "rstrip", "format", "startswith", "endswith", "replace",
    "encode", "decode", "lower", "upper", "title", "ljust", "rjust",
    "zfill", "union", "intersection", "difference", "issubset",
    "issuperset",
})

#: Stdlib modules whose functions are value-pure for our purposes (writes
#: to the terminal/log do not change simulation results).
_ASSUMED_PURE_MODULES = frozenset({
    "math", "cmath", "heapq", "bisect", "itertools", "functools",
    "collections", "operator", "statistics", "json", "re", "abc",
    "dataclasses", "typing", "enum", "copy", "numbers", "fractions",
    "decimal", "array", "struct", "hashlib", "binascii", "string",
    "warnings", "logging", "textwrap", "pprint", "reprlib", "weakref",
    "contextlib", "types", "keyword", "unicodedata",
})

_SAFE_BUILTINS = frozenset({
    "len", "range", "int", "float", "str", "bool", "bytes", "bytearray",
    "isinstance", "issubclass", "max", "min", "sum", "sorted", "reversed",
    "abs", "round", "enumerate", "zip", "map", "filter", "list", "dict",
    "set", "frozenset", "tuple", "getattr", "setattr", "hasattr",
    "delattr", "repr", "format", "print", "iter", "next", "callable",
    "divmod", "pow", "ord", "chr", "hex", "oct", "bin", "id", "hash",
    "type", "super", "vars", "object", "slice", "staticmethod",
    "classmethod", "property", "complex", "memoryview", "all", "any",
    "exec", "eval", "globals", "locals", "compile", "__import__",
})


@dataclass(frozen=True)
class EffectSource:
    """One concrete effect-introducing expression."""

    effect: str
    module: str
    line: int
    col: int
    detail: str

    # Alias so an EffectSource can anchor a Finding like an AST node.
    @property
    def lineno(self):
        return self.line

    @property
    def col_offset(self):
        return self.col

    def __str__(self):
        return "{} ({} at {}:{})".format(
            self.detail, self.effect, self.module, self.line
        )


# -- dotted-name resolution --------------------------------------------------


class ImportMap:
    """name -> dotted-path bindings from every import in a module.

    Function-level imports are merged in (a name bound anywhere in the
    file resolves file-wide); that over-approximates visibility, which is
    the conservative direction for effect attribution.
    """

    def __init__(self, tree):
        self.bindings = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else name
                    self.bindings[name] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: not resolvable here
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.bindings[name] = "{}.{}".format(
                        node.module, alias.name
                    )

    def resolve_name(self, name):
        return self.bindings.get(name, name)


def dotted_name(node, imports):
    """The dotted path of a Name/Attribute chain with its base resolved
    through ``imports`` — ``np.random.normal`` -> ``numpy.random.normal``.
    Returns None for anything that is not a plain chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(imports.resolve_name(node.id))
    return ".".join(reversed(parts))


# -- per-module context ------------------------------------------------------


@dataclass
class ClassScan:
    """Shallow per-class facts the resolver and the rules share."""

    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: attribute name -> dotted type ("builtins.set" or a class path)
    attr_types: Dict[str, str] = field(default_factory=dict)
    frozen_dataclass: bool = False


class ModuleContext:
    """Imports, classes, and cheap type facts for one source file."""

    def __init__(self, src):
        self.src = src
        self.imports = ImportMap(src.tree)
        self.classes = {}
        for node in src.tree.body:
            if isinstance(node, ast.ClassDef):
                self.classes[node.name] = self._scan_class(node)

    def _scan_class(self, node):
        scan = ClassScan(name=node.name, node=node)
        scan.bases = [
            dotted for dotted in
            (dotted_name(base, self.imports) for base in node.bases)
            if dotted
        ]
        scan.frozen_dataclass = _is_frozen_dataclass(node, self.imports)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan.methods[stmt.name] = stmt
        for method in scan.methods.values():
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        inferred = self._infer_type(sub.value)
                        if inferred:
                            scan.attr_types.setdefault(
                                target.attr, inferred
                            )
        return scan

    def _infer_type(self, value):
        """A dotted type for simple constructor-shaped expressions.

        Looks through ``x or Default()`` / ``x if c else Default()``
        shapes: when one branch is a constructor call, the constructor
        names the type (the other branch is a caller-supplied instance
        of, at worst, a compatible duck type).
        """
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "builtins.set"
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func, self.imports)
            if dotted in ("set", "frozenset"):
                return "builtins.set"
            if dotted and _looks_like_class(dotted):
                return dotted
            return None
        if isinstance(value, ast.IfExp):
            return self._infer_type(value.body) or self._infer_type(
                value.orelse
            )
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                inferred = self._infer_type(operand)
                if inferred:
                    return inferred
        return None


def _looks_like_class(dotted):
    last = dotted.rsplit(".", 1)[-1]
    return last[:1].isupper()


def _is_frozen_dataclass(node, imports):
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = dotted_name(target, imports)
        if dotted not in ("dataclass", "dataclasses.dataclass"):
            continue
        if not isinstance(deco, ast.Call):
            return False
        for kw in deco.keywords:
            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
    return False


def local_set_names(func_node, ctx):
    """Names assigned a set-typed value anywhere in ``func_node``."""
    names = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            inferred = ctx._infer_type(node.value)
            if inferred == "builtins.set":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


# -- the direct-effect scanner -----------------------------------------------


class EffectScanner(ast.NodeVisitor):
    """Collects every effect-introducing expression in a subtree.

    Used both by the lint rules (module-at-a-time) and by the
    interprocedural analysis (function-at-a-time).  Nested function and
    lambda bodies are attributed to the enclosing scope: a closure that
    reads the clock makes its definer clock-dependent, which is the
    conservative call the certificate needs.
    """

    def __init__(self, ctx, class_name=None, skip_nested_defs=False):
        self.ctx = ctx
        self.class_name = class_name
        self.skip_nested_defs = skip_nested_defs
        self.sources = []
        self._set_locals = set()

    # -- entry points --------------------------------------------------------

    def scan_function(self, node):
        """Effects of one function body (descending into nested defs)."""
        self._set_locals = local_set_names(node, self.ctx)
        for stmt in node.body:
            self.visit(stmt)
        return self.sources

    def scan_module_body(self, tree):
        """Effects of import-time module-level code: everything except the
        bodies of function definitions (those run only when called)."""
        self.skip_nested_defs = True
        self._set_locals = local_set_names(tree, self.ctx)
        for stmt in tree.body:
            self.visit(stmt)
        return self.sources

    # -- helpers -------------------------------------------------------------

    def _emit(self, effect, node, detail):
        self.sources.append(EffectSource(
            effect=effect,
            module=self.ctx.src.module,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            detail=detail,
        ))

    def _dotted(self, node):
        return dotted_name(node, self.ctx.imports)

    def is_set_expr(self, node):
        """Is ``node`` statically recognisable as a set/frozenset?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self._dotted(node.func) in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in self._set_locals
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.class_name in self.ctx.classes
        ):
            scan = self.ctx.classes[self.class_name]
            return scan.attr_types.get(node.attr) == "builtins.set"
        return False

    def _is_unordered_mapping(self, node):
        """globals()/locals()/vars(x) — and their .keys/.values/.items."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "globals", "locals", "vars"
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("keys", "values", "items")
            ):
                return self._is_unordered_mapping(func.value)
        return False

    def _check_iterand(self, node, where):
        if self.is_set_expr(node):
            self._emit(
                UNORDERED_ITER, node,
                "iteration over a set in {} (wrap in sorted())".format(
                    where
                ),
            )
        elif self._is_unordered_mapping(node):
            self._emit(
                UNORDERED_ITER, node,
                "iteration over {} in {} (interpreter-dependent "
                "order)".format(ast.unparse(node), where),
            )

    # -- visitors ------------------------------------------------------------

    def visit_FunctionDef(self, node):
        if not self.skip_nested_defs:
            outer = self._set_locals
            self._set_locals = outer | local_set_names(node, self.ctx)
            for stmt in node.body:
                self.visit(stmt)
            self._set_locals = outer

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node):
        # Class bodies execute at definition time; method bodies do not.
        outer_class = self.class_name
        self.class_name = node.name
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not self.skip_nested_defs:
                    self.visit(stmt)
            else:
                self.visit(stmt)
        self.class_name = outer_class

    def visit_Lambda(self, node):
        self.visit(node.body)

    def visit_For(self, node):
        self._check_iterand(node.iter, "a for loop")
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension_generators(self, node):
        for gen in node.generators:
            self._check_iterand(gen.iter, "a comprehension")
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_generators
    visit_DictComp = visit_comprehension_generators
    visit_GeneratorExp = visit_comprehension_generators

    def visit_SetComp(self, node):
        # Building a set from a set stays unordered — no order imposed.
        self.generic_visit(node)

    def visit_Starred(self, node):
        if self.is_set_expr(node.value):
            self._emit(
                UNORDERED_ITER, node,
                "unpacking a set preserves arbitrary order "
                "(wrap in sorted())",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node):
        dotted = self._dotted(node)
        if dotted in _ENV_ATTRS:
            self._emit(ENV, node, "{} read".format(dotted))
        self.generic_visit(node)

    def visit_Call(self, node):
        dotted = dotted_name(node.func, self.ctx.imports)
        if dotted:
            self._match_call(node, dotted)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _IO_METHOD_NAMES
        ):
            self._emit(
                IO, node, ".{}() filesystem read".format(node.func.attr)
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and self.is_set_expr(node.args[0])
        ):
            self._emit(
                UNORDERED_ITER, node,
                "str.join over a set (wrap in sorted())",
            )
        self.generic_visit(node)

    def _match_call(self, node, dotted):
        if dotted in _CLOCK_CALLS:
            self._emit(CLOCK, node, "{}() wall-clock read".format(dotted))
            return
        if self._is_global_rng(node, dotted):
            return
        if dotted in _IO_CALLS:
            self._emit(IO, node, "{}() filesystem read".format(dotted))
            return
        if dotted in _ENV_CALLS:
            self._emit(ENV, node, "{}() environment read".format(dotted))
            return
        head = dotted.split(".", 1)[0]
        if (
            head in _ORDER_SENSITIVE_CONSUMERS
            and dotted == head
            and node.args
            and self.is_set_expr(node.args[0])
        ):
            self._emit(
                UNORDERED_ITER, node,
                "{}() over a set imposes arbitrary order "
                "(wrap in sorted())".format(dotted),
            )

    def _is_global_rng(self, node, dotted):
        parts = dotted.split(".")
        if dotted.startswith("random.") and parts[-1] in (
            _RANDOM_MODULE_FUNCS
        ) and len(parts) == 2:
            self._emit(
                GLOBAL_RNG, node,
                "{}() draws from the process-global RNG".format(dotted),
            )
            return True
        if dotted.startswith("numpy.random."):
            tail = parts[-1]
            if dotted in _SEEDABLE_CTORS:
                if not node.args:
                    self._emit(
                        GLOBAL_RNG, node,
                        "{}() without a seed is "
                        "entropy-seeded".format(dotted),
                    )
                    return True
                return False
            if tail not in _NUMPY_SAFE and tail[:1].islower():
                self._emit(
                    GLOBAL_RNG, node,
                    "{}() draws from numpy's global RNG".format(dotted),
                )
                return True
            return False
        if dotted in _SEEDABLE_CTORS and not node.args:
            self._emit(
                GLOBAL_RNG, node,
                "{}() without a seed is entropy-seeded".format(dotted),
            )
            return True
        if dotted in _RNG_EXACT or dotted.startswith("secrets."):
            self._emit(
                GLOBAL_RNG, node,
                "{}() is entropy-backed".format(dotted),
            )
            return True
        return False


# -- function index and call graph -------------------------------------------


@dataclass
class FunctionInfo:
    fid: str
    module: str
    qualname: str
    node: object
    class_name: Optional[str] = None
    direct: List[EffectSource] = field(default_factory=list)
    callees: Set[str] = field(default_factory=set)
    externals: Set[str] = field(default_factory=set)


def make_fid(module, qualname):
    return "{}:{}".format(module, qualname)


class _CallCollector(ast.NodeVisitor):
    """Collects call references from one function body (descending into
    nested defs/lambdas, mirroring :class:`EffectScanner`)."""

    def __init__(self, ctx, class_name=None, skip_nested_defs=False):
        self.ctx = ctx
        self.class_name = class_name
        self.skip_nested_defs = skip_nested_defs
        #: (kind, payload) — kind in {dotted, method, name-ref}
        self.refs = []
        self.local_types = {}

    def collect_function(self, node):
        self._infer_locals(node)
        for stmt in node.body:
            self.visit(stmt)
        return self.refs

    def collect_module_body(self, tree):
        self.skip_nested_defs = True
        self._infer_locals(tree)
        for stmt in tree.body:
            self.visit(stmt)
        return self.refs

    def _infer_locals(self, node):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(
                sub.value, ast.Call
            ):
                dotted = dotted_name(sub.value.func, self.ctx.imports)
                if dotted and _looks_like_class(dotted):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            self.local_types.setdefault(target.id, dotted)

    def visit_FunctionDef(self, node):
        if not self.skip_nested_defs:
            for stmt in node.body:
                self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node):
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not self.skip_nested_defs:
                    self.visit(stmt)
            else:
                self.visit(stmt)

    def visit_Lambda(self, node):
        self.visit(node.body)

    def visit_Call(self, node):
        self._record(node)
        self.generic_visit(node)

    def visit_Name(self, node):
        # A bare reference to a known callable (e.g. a class passed as a
        # factory) may be invoked later by the callee: keep the edge.
        if isinstance(node.ctx, ast.Load):
            dotted = self.ctx.imports.resolve_name(node.id)
            if dotted != node.id or node.id in self.ctx.classes:
                self.refs.append(("name-ref", dotted, node))

    def visit_Attribute(self, node):
        # ``self.handler`` passed as a value (event-loop callback
        # registration): the method runs later, so keep the edge.
        if (
            isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            self.refs.append(("self-ref", node.attr, node))
        self.generic_visit(node)

    def _record(self, node):
        func = node.func
        if isinstance(func, ast.Name):
            self.refs.append(
                ("dotted", self.ctx.imports.resolve_name(func.id), node)
            )
            return
        if not isinstance(func, ast.Attribute):
            return  # call on a call result etc.; nothing to resolve
        # super().method(): dispatches into the base classes.
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
        ):
            self.refs.append(("method", ("super", None, func.attr), node))
            return
        # self.method() / self.attr.method()
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            self.refs.append(("method", ("self", None, func.attr), node))
            return
        if (
            isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self.refs.append(
                ("method", ("self-attr", func.value.attr, func.attr), node)
            )
            return
        if isinstance(func.value, ast.Name):
            receiver = func.value.id
            if receiver in self.local_types:
                self.refs.append((
                    "method",
                    ("typed", self.local_types[receiver], func.attr),
                    node,
                ))
                return
            if receiver in self.ctx.classes:
                # ClassName.method(instance, ...) static-style call.
                self.refs.append(
                    ("method", ("typed", receiver, func.attr), node)
                )
                return
            if receiver in self.ctx.imports.bindings:
                # Module alias (or re-exported name): a real dotted path.
                self.refs.append(
                    ("dotted", dotted_name(func, self.ctx.imports), node)
                )
                return
            # Untyped local/parameter receiver: name-based fallback.
            self.refs.append(("method", ("unknown", None, func.attr), node))
            return
        root = func.value
        while isinstance(root, ast.Attribute):
            root = root.value
        if (
            isinstance(root, ast.Name)
            and root.id in self.ctx.imports.bindings
        ):
            dotted = dotted_name(func, self.ctx.imports)
            if dotted is not None:
                self.refs.append(("dotted", dotted, node))
                return
        self.refs.append(("method", ("unknown", None, func.attr), node))


class EffectAnalysis:
    """Interprocedural effect inference over a set of sources."""

    def __init__(self, sources):
        self.sources = [src for src in sources if not src.skip]
        self.contexts = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassScan] = {}  # dotted -> scan
        self.class_modules: Dict[str, str] = {}  # dotted -> module
        self.methods_by_name: Dict[str, List[str]] = {}
        self.modules = set()
        self._effects: Optional[Dict[str, Set[str]]] = None
        self._origins: Dict[Tuple[str, str], object] = {}
        self._build_index()
        self._build_edges()

    # -- index ---------------------------------------------------------------

    def _build_index(self):
        for src in self.sources:
            ctx = ModuleContext(src)
            self.contexts[src.module] = ctx
            self.modules.add(src.module)
            self._register(src.module, MODULE_BODY, src.tree, None)
            for node in src.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._register(src.module, node.name, node, None)
            for name, scan in ctx.classes.items():
                dotted = "{}.{}".format(src.module, name)
                self.classes[dotted] = scan
                self.class_modules[dotted] = src.module
                for mname, mnode in scan.methods.items():
                    fid = self._register(
                        src.module,
                        "{}.{}".format(name, mname),
                        mnode,
                        name,
                    )
                    self.methods_by_name.setdefault(mname, []).append(fid)

    def _register(self, module, qualname, node, class_name):
        fid = make_fid(module, qualname)
        self.functions[fid] = FunctionInfo(
            fid=fid, module=module, qualname=qualname, node=node,
            class_name=class_name,
        )
        return fid

    # -- edges ---------------------------------------------------------------

    def _build_edges(self):
        for fid, info in self.functions.items():
            ctx = self.contexts[info.module]
            scanner = EffectScanner(ctx, class_name=info.class_name)
            collector = _CallCollector(ctx, class_name=info.class_name)
            if info.qualname == MODULE_BODY:
                info.direct = scanner.scan_module_body(info.node)
                refs = collector.collect_module_body(info.node)
                self._module_import_edges(info, ctx)
            else:
                info.direct = scanner.scan_function(info.node)
                refs = collector.collect_function(info.node)
                # Calling any function implies its module was imported.
                info.callees.add(make_fid(info.module, MODULE_BODY))
            for kind, payload, node in refs:
                self._resolve_ref(info, kind, payload)

    def _module_import_edges(self, info, ctx):
        """Importing a module executes every module it imports."""
        for target in ctx.imports.bindings.values():
            module = self._known_module_prefix(target)
            if module and module != info.module:
                info.callees.add(make_fid(module, MODULE_BODY))

    def _known_module_prefix(self, dotted):
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def _resolve_ref(self, info, kind, payload):
        if kind == "dotted" or kind == "name-ref":
            self._link_dotted(info, payload, call=(kind == "dotted"))
        elif kind == "method":
            mode, extra, mname = payload
            self._link_method(info, mode, extra, mname)
        elif kind == "self-ref":
            # ``self.x`` read as a value: link only if it names a method
            # (callback registration); data attributes are not calls.
            if info.class_name:
                own = "{}.{}".format(info.module, info.class_name)
                target = self._find_method(own, payload)
                if target:
                    info.callees.add(target)

    def _link_dotted(self, info, dotted, call=True):
        target = self._lookup_dotted(info.module, dotted)
        if target is None:
            if call:
                self._note_external(info, dotted)
            else:
                # A bare reference to an analysed module still pulls in
                # its import-time code; other unresolved refs are datum,
                # not calls.
                module = self._known_module_prefix(dotted)
                if module:
                    info.callees.add(make_fid(module, MODULE_BODY))
            return
        kind, value = target
        if kind == "function":
            info.callees.add(value)
        elif kind == "class":
            self._link_constructor(info, value)

    def _link_constructor(self, info, class_dotted):
        module = self.class_modules[class_dotted]
        info.callees.add(make_fid(module, MODULE_BODY))
        init = self._find_method(class_dotted, "__init__")
        if init:
            info.callees.add(init)

    def _link_method(self, info, mode, extra, mname):
        class_dotted = None
        if mode == "super":
            self._link_super(info, mname)
            return
        if mode == "self" and info.class_name:
            class_dotted = "{}.{}".format(info.module, info.class_name)
        elif mode == "self-attr" and info.class_name:
            scan = self.contexts[info.module].classes.get(info.class_name)
            if scan:
                attr_type = scan.attr_types.get(extra)
                if attr_type and attr_type != "builtins.set":
                    class_dotted = self._resolve_class(
                        info.module, attr_type
                    )
        elif mode == "typed":
            class_dotted = self._resolve_class(info.module, extra)
        if class_dotted:
            target = self._find_method(class_dotted, mname)
            if target:
                info.callees.add(target)
                return
        self._fallback_by_name(info, mname)

    def _link_super(self, info, mname):
        """``super().mname()``: resolve against every base of the caller's
        own class.  A miss (e.g. ``object.__init__``) is silently pure —
        the base is outside the analysed tree and dunders never fall back
        by name."""
        if not info.class_name:
            return
        scan = self.contexts[info.module].classes.get(info.class_name)
        if scan is None:
            return
        for base in scan.bases:
            base_dotted = self._resolve_class(info.module, base)
            if base_dotted:
                target = self._find_method(base_dotted, mname)
                if target:
                    info.callees.add(target)

    def _fallback_by_name(self, info, mname):
        """Untyped attribute call: name-match across every known method,
        unless the name collides with a builtin container method."""
        if mname in _CONTAINER_METHODS or mname.startswith("__"):
            return
        matches = self.methods_by_name.get(mname)
        if matches:
            info.callees.update(matches)
        else:
            self._note_external(info, ".{}()".format(mname))

    def _resolve_class(self, module, dotted):
        """Resolve a class reference (possibly re-exported) to its
        defining dotted path."""
        target = self._lookup_dotted(module, dotted)
        if target and target[0] == "class":
            return target[1]
        return None

    def _lookup_dotted(self, current_module, dotted, depth=0):
        if depth > 5 or not dotted:
            return None
        # Module-local definition?
        local = "{}.{}".format(current_module, dotted)
        if "." not in dotted:
            if local in self.classes:
                return ("class", local)
            fid = make_fid(current_module, dotted)
            if fid in self.functions:
                return ("function", fid)
            return None
        if dotted in self.classes:
            return ("class", dotted)
        head, _, tail = dotted.rpartition(".")
        if head in self.modules:
            fid = make_fid(head, tail)
            if fid in self.functions:
                return ("function", fid)
        if head in self.classes:
            # pkg.mod.Class.method
            target = self._find_method(head, tail)
            if target:
                return ("function", target)
        # Re-export chain: resolve through a package __init__'s imports.
        prefix = self._known_module_prefix(dotted)
        if prefix and prefix != dotted:
            rest = dotted[len(prefix) + 1:].split(".")
            ctx = self.contexts[prefix]
            rebased = ctx.imports.resolve_name(rest[0])
            if rebased != rest[0] or rebased in ctx.classes:
                new = ".".join([rebased] + rest[1:])
                if new != dotted:
                    resolved = self._lookup_dotted(prefix, new, depth + 1)
                    if resolved:
                        return resolved
            # Name defined in the package module itself
            if len(rest) == 1:
                fid = make_fid(prefix, rest[0])
                if fid in self.functions:
                    return ("function", fid)
                local_class = "{}.{}".format(prefix, rest[0])
                if local_class in self.classes:
                    return ("class", local_class)
        return None

    def _find_method(self, class_dotted, mname, depth=0):
        if depth > 8:
            return None
        scan = self.classes.get(class_dotted)
        if scan is None:
            return None
        if mname in scan.methods:
            module = self.class_modules[class_dotted]
            return make_fid(
                module, "{}.{}".format(scan.name, mname)
            )
        for base in scan.bases:
            base_dotted = self._resolve_class(
                self.class_modules[class_dotted], base
            )
            if base_dotted:
                found = self._find_method(base_dotted, mname, depth + 1)
                if found:
                    return found
        return None

    def _note_external(self, info, name):
        head = name.split(".", 1)[0]
        if head in _ASSUMED_PURE_MODULES or name in _SAFE_BUILTINS:
            return
        if head[:1].isupper() or name[:1].isupper():
            return  # exception/class constructors from builtins
        if head in ("time", "random", "os", "glob", "uuid", "secrets",
                    "numpy", "datetime"):
            return  # effectful stdlib is matched syntactically instead
        info.externals.add(name)

    # -- fixed point ---------------------------------------------------------

    def _solve(self):
        if self._effects is not None:
            return self._effects
        effects = {}
        for fid, info in self.functions.items():
            effects[fid] = {src.effect for src in info.direct}
            for src in info.direct:
                self._origins.setdefault((fid, src.effect), src)
        changed = True
        while changed:
            changed = False
            for fid, info in self.functions.items():
                mine = effects[fid]
                for callee in info.callees:
                    if callee not in effects:
                        continue
                    for effect in effects[callee]:
                        if effect not in mine:
                            mine.add(effect)
                            self._origins.setdefault(
                                (fid, effect), callee
                            )
                            changed = True
        self._effects = effects
        return effects

    # -- public API ----------------------------------------------------------

    def effects_of(self, fid):
        """The inferred effect set of ``fid`` (``'module:qualname'``)."""
        effects = self._solve()
        if fid not in effects:
            raise KeyError("unknown function {!r}".format(fid))
        return frozenset(effects[fid])

    def witness(self, fid, effect):
        """A call chain from ``fid`` down to a concrete source of
        ``effect`` — the certificate's counterexample trace."""
        self._solve()
        steps = [fid]
        seen = {fid}
        current = fid
        while True:
            origin = self._origins.get((current, effect))
            if origin is None:
                return steps + ["<origin not tracked>"]
            if isinstance(origin, EffectSource):
                steps.append(str(origin))
                return steps
            if origin in seen:
                return steps + ["<cycle>"]
            seen.add(origin)
            steps.append(origin)
            current = origin

    def reachable_from(self, fid):
        """Every function reachable over call edges from ``fid``."""
        stack, seen = [fid], set()
        while stack:
            current = stack.pop()
            if current in seen or current not in self.functions:
                continue
            seen.add(current)
            stack.extend(self.functions[current].callees)
        return seen

    def certify(self, entries=DEFAULT_ENTRY_POINTS,
                forbidden=FORBIDDEN_EFFECTS):
        """A :class:`PurityCertificate` over ``entries``."""
        reports = []
        for entry in entries:
            if entry not in self.functions:
                reports.append(EntryReport(
                    entry=entry, found=False, effects=frozenset(),
                    violations=frozenset(), witnesses={},
                    reachable=0, externals=(),
                ))
                continue
            effects = self.effects_of(entry)
            violations = effects & forbidden
            reachable = self.reachable_from(entry)
            externals = sorted({
                name
                for f in reachable
                for name in self.functions[f].externals
            })
            witnesses = {
                effect: self.witness(entry, effect)
                for effect in sorted(violations)
            }
            reports.append(EntryReport(
                entry=entry, found=True, effects=effects,
                violations=frozenset(violations), witnesses=witnesses,
                reachable=len(reachable), externals=tuple(externals),
            ))
        return PurityCertificate(
            entries=tuple(reports),
            forbidden=frozenset(forbidden),
            analyzed_modules=len(self.modules),
            analyzed_functions=len(self.functions),
        )


@dataclass(frozen=True)
class EntryReport:
    """Certificate slice for one entry point."""

    entry: str
    found: bool
    effects: frozenset
    violations: frozenset
    witnesses: Dict[str, List[str]]
    reachable: int
    externals: Tuple[str, ...]

    @property
    def pure(self):
        return self.found and not self.violations


@dataclass(frozen=True)
class PurityCertificate:
    """The analysis' verdict over every entry point it was asked about.

    ``ok`` means every entry was found and carries none of the forbidden
    effects — the property the parallel runner's bit-identical guarantee
    and the result cache's key validity both rest on.
    """

    entries: Tuple[EntryReport, ...]
    forbidden: frozenset
    analyzed_modules: int
    analyzed_functions: int

    @property
    def ok(self):
        return all(entry.pure for entry in self.entries)
