"""Text and JSON reporters for sanitizer findings and certificates.

The text form is for humans and CI logs; the JSON form (schema below) is
the machine artifact CI uploads and the regression tests diff against::

    {
      "schema": 1,
      "findings": [{rule, severity, path, module, line, col, message,
                    suppressed, suppress_reason}, ...],
      "summary": {"errors": N, "warnings": N, "suppressed": N,
                  "files": N},
      "certificate": {"ok": bool, "forbidden": [...],
                      "analyzed_modules": N, "analyzed_functions": N,
                      "entries": [{entry, found, pure, effects,
                                   violations, reachable, externals,
                                   witnesses}, ...]}
    }
"""

import json

from repro.analysis.rules import ERROR

__all__ = ["REPORT_SCHEMA", "render_text", "render_json", "report_dict"]

REPORT_SCHEMA = 1


def _summary(findings, sources):
    active = [f for f in findings if not f.suppressed]
    return {
        "errors": sum(1 for f in active if f.severity == ERROR),
        "warnings": sum(1 for f in active if f.severity != ERROR),
        "suppressed": sum(1 for f in findings if f.suppressed),
        "files": len(sources),
    }


def report_dict(findings, sources, certificate=None):
    """The full report as a JSON-ready dict."""
    payload = {
        "schema": REPORT_SCHEMA,
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "module": f.module,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
                "suppress_reason": f.suppress_reason,
            }
            for f in findings
        ],
        "summary": _summary(findings, sources),
    }
    if certificate is not None:
        payload["certificate"] = {
            "ok": certificate.ok,
            "forbidden": sorted(certificate.forbidden),
            "analyzed_modules": certificate.analyzed_modules,
            "analyzed_functions": certificate.analyzed_functions,
            "entries": [
                {
                    "entry": entry.entry,
                    "found": entry.found,
                    "pure": entry.pure,
                    "effects": sorted(entry.effects),
                    "violations": sorted(entry.violations),
                    "reachable": entry.reachable,
                    "externals": list(entry.externals),
                    "witnesses": {
                        effect: list(steps)
                        for effect, steps in entry.witnesses.items()
                    },
                }
                for entry in certificate.entries
            ],
        }
    return payload


def render_json(findings, sources, certificate=None, stream=None):
    text = json.dumps(
        report_dict(findings, sources, certificate), indent=2,
        sort_keys=True,
    )
    if stream is not None:
        print(text, file=stream)
    return text


def render_text(findings, sources, certificate=None, stream=None,
                show_suppressed=False):
    lines = []
    for finding in findings:
        if finding.suppressed and not show_suppressed:
            continue
        lines.append(str(finding))
    summary = _summary(findings, sources)
    lines.append(
        "repro-san: {} file(s), {} error(s), {} warning(s), "
        "{} suppressed".format(
            summary["files"], summary["errors"], summary["warnings"],
            summary["suppressed"],
        )
    )
    if certificate is not None:
        lines.extend(_certificate_lines(certificate))
    text = "\n".join(lines)
    if stream is not None:
        print(text, file=stream)
    return text


def _certificate_lines(certificate):
    lines = [
        "purity certificate ({} modules, {} functions analysed):".format(
            certificate.analyzed_modules, certificate.analyzed_functions
        )
    ]
    for entry in certificate.entries:
        if not entry.found:
            lines.append(
                "  {}: NOT FOUND in the analysed tree".format(entry.entry)
            )
            continue
        if entry.pure:
            lines.append(
                "  {}: sim-pure ({} reachable functions, "
                "{} external calls assumed pure)".format(
                    entry.entry, entry.reachable, len(entry.externals)
                )
            )
        else:
            lines.append(
                "  {}: IMPURE — {}".format(
                    entry.entry, ", ".join(sorted(entry.violations))
                )
            )
            for effect, steps in entry.witnesses.items():
                lines.append("    {} via:".format(effect))
                for step in steps:
                    lines.append("      {}".format(step))
    lines.append(
        "certificate: {}".format("OK" if certificate.ok else "FAILED")
    )
    return lines
