"""Rule framework for the determinism sanitizer.

A :class:`Rule` inspects one :class:`~repro.analysis.source.SourceFile`
and yields :class:`Finding` objects.  Rules self-register via
:func:`register`; :func:`run_rules` drives every (file, rule) pair,
applies the file's ``# repro-san: ignore[...]`` pragmas, and returns
findings sorted by location.  Severity is two-tier like the IR linter's
(:mod:`repro.instrument.analysis.lint`): *errors* are determinism or
parallel-safety violations the result cache and the process pool cannot
survive; *warnings* are hazards worth a human look.
"""

from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "Rule",
    "register",
    "all_rules",
    "rules_by_code",
    "run_rules",
]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One sanitizer diagnostic, attributable to a source line."""

    rule: str
    severity: str
    path: str
    module: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppress_reason: Optional[str] = None

    def __str__(self):
        tag = " (suppressed)" if self.suppressed else ""
        return "{}:{}:{}: {}[{}] {}{}".format(
            self.path, self.line, self.col, self.severity.upper(),
            self.rule, self.message, tag,
        )


class Rule:
    """Base class: subclasses set ``code``/``severity``/``title`` and
    implement :meth:`findings`."""

    code = "RULE000"
    severity = ERROR
    title = ""

    def findings(self, src, ctx):
        """Yield :class:`Finding` objects for ``src``.

        ``ctx`` is the shared :class:`~repro.analysis.effects.ModuleContext`
        (import map, class table, local type hints) so each rule does not
        re-derive it.
        """
        raise NotImplementedError

    def finding(self, src, node, message):
        """A :class:`Finding` for this rule anchored at ``node``."""
        return Finding(
            rule=self.code,
            severity=self.severity,
            path=src.path,
            module=src.module,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY = {}


def register(rule_class):
    """Class decorator: add ``rule_class`` to the global rule registry."""
    code = rule_class.code
    if code in _REGISTRY and _REGISTRY[code] is not rule_class:
        raise ValueError("duplicate rule code {!r}".format(code))
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules():
    """One instance of every registered rule, ordered by code."""
    _load_builtin_rules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rules_by_code(codes):
    """Instances for ``codes``; raises KeyError on an unknown code."""
    _load_builtin_rules()
    rules = []
    for code in codes:
        if code not in _REGISTRY:
            raise KeyError(
                "unknown rule {!r}; known: {}".format(
                    code, ", ".join(sorted(_REGISTRY))
                )
            )
        rules.append(_REGISTRY[code]())
    return rules


def _load_builtin_rules():
    # Imported lazily to avoid a cycle (determinism.py imports this module
    # for the Rule base class and the registry decorator).
    from repro.analysis import determinism  # noqa: F401


def run_rules(sources, rules=None):
    """Run ``rules`` (default: all) over ``sources``; returns findings
    sorted by (path, line, col, rule), with suppression pragmas applied.

    Suppressed findings are *kept* (flagged ``suppressed=True``) so
    reporters can show them and tests can assert every pragma carries a
    reason; callers filter on ``finding.suppressed`` for gating.
    """
    from repro.analysis.effects import ModuleContext

    rules = all_rules() if rules is None else list(rules)
    findings = []
    for src in sources:
        if src.skip:
            continue
        ctx = ModuleContext(src)
        for rule in rules:
            for finding in rule.findings(src, ctx):
                pragma = src.suppression_at(finding.line, finding.rule)
                if pragma is not None:
                    finding = replace(
                        finding,
                        suppressed=True,
                        suppress_reason=pragma.reason,
                    )
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
