"""Source loading for the determinism sanitizer.

The sanitizer analyses the repository's *own Python source* (never
imported, never executed): each file becomes a :class:`SourceFile`
carrying its parse tree, its dotted module name, and its suppression
table.  Suppressions use the same line-comment convention as the rest of
the lint ecosystem::

    started = time.time()  # repro-san: ignore[DET001] -- progress only

silences rule ``DET001`` on that line (multiple codes separate with
commas; the ``--`` reason string is mandatory by project policy and
checked by ``tests/test_sanitizer_repo.py``).  A whole file opts out
with ``# repro-san: skip-file -- reason`` on one of its first lines.
"""

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = [
    "SourceFile",
    "Suppression",
    "discover_sources",
    "module_name_for",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-san:\s*ignore\[([A-Za-z0-9_*,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)
_SKIP_FILE_RE = re.compile(
    r"#\s*repro-san:\s*skip-file(?:\s*--\s*(?P<reason>.*\S))?"
)
#: How deep into a file a ``skip-file`` pragma may appear.
_SKIP_FILE_WINDOW = 5


@dataclass(frozen=True)
class Suppression:
    """One ``ignore[...]`` pragma: the codes it silences and why."""

    codes: Tuple[str, ...]  # ("*",) silences every rule on the line
    reason: Optional[str]

    def covers(self, code):
        return "*" in self.codes or code in self.codes


@dataclass
class SourceFile:
    """One parsed Python file under analysis."""

    path: str
    module: str
    text: str
    tree: ast.AST
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    skip: bool = False
    skip_reason: Optional[str] = None

    @classmethod
    def from_text(cls, text, path="<memory>", module="<module>"):
        tree = ast.parse(text, filename=str(path))
        src = cls(path=str(path), module=module, text=text, tree=tree)
        src._scan_pragmas()
        return src

    @classmethod
    def load(cls, path, module):
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_text(text, path=path, module=module)

    def _scan_pragmas(self):
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            if "repro-san" not in line:
                continue
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = tuple(
                    code.strip()
                    for code in match.group(1).split(",")
                    if code.strip()
                )
                self.suppressions[lineno] = Suppression(
                    codes, match.group("reason")
                )
                continue
            match = _SKIP_FILE_RE.search(line)
            if match and lineno <= _SKIP_FILE_WINDOW:
                self.skip = True
                self.skip_reason = match.group("reason")

    def suppression_at(self, line, code):
        """The :class:`Suppression` silencing ``code`` on ``line``, if any."""
        pragma = self.suppressions.get(line)
        if pragma is not None and pragma.covers(code):
            return pragma
        return None


def module_name_for(path, package_root):
    """Dotted module name of ``path`` relative to the directory that
    *contains* the top-level package.

    >>> module_name_for("src/repro/sim/engine.py", "src")
    'repro.sim.engine'
    """
    rel = Path(path).resolve().relative_to(Path(package_root).resolve())
    parts = list(rel.parts)
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts)


def _package_root(path):
    """The directory containing the outermost package ``path`` is in.

    Walks upward while ``__init__.py`` exists, so handing the tool
    ``src/repro`` (or any subpackage, or a single module file) yields
    module names rooted at ``repro``.
    """
    path = Path(path).resolve()
    package = path if path.is_dir() else path.parent
    while (package.parent / "__init__.py").exists():
        package = package.parent
    return package.parent


def discover_sources(path):
    """Load every ``*.py`` under ``path`` (a package directory or a single
    file) as :class:`SourceFile` objects, sorted by module name."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError("no such path: {}".format(path))
    root = _package_root(path)
    files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
    sources = []
    for file in files:
        module = module_name_for(file, root)
        sources.append(SourceFile.load(file, module))
    sources.sort(key=lambda src: src.module)
    return sources
