"""Rack-scale inter-server scheduling over Concord servers.

The paper schedules within one server; rack-wide, microsecond tails only
survive when an inter-server layer balances load across servers *and* each
server schedules approximately optimally inside (RackSched's two-layer
argument).  This package composes N existing single-dispatcher
:class:`~repro.core.server.Server` instances under one shared simulator:

* :class:`~repro.cluster.rack.Cluster` — build and run a rack;
* :class:`~repro.cluster.balancer.LoadBalancer` — the routing agent;
* :mod:`repro.cluster.policies` — random, round-robin, JSQ,
  power-of-d-choices, and RackSched-style shortest-expected-delay;
* :class:`~repro.cluster.network.NetworkFabric` — hop latency and the
  telemetry-staleness model that makes stale-queue-signal effects emerge;
* :class:`~repro.cluster.rack.ClusterResult` — rack-wide merged metrics.
"""

from repro.cluster.network import NetworkFabric, TelemetryBoard
from repro.cluster.policies import (
    CLUSTER_POLICIES,
    InterServerPolicy,
    JSQPolicy,
    Po2Policy,
    RandomPolicy,
    RoundRobinPolicy,
    ShortestExpectedDelayPolicy,
    make_cluster_policy,
)
from repro.cluster.balancer import LoadBalancer
from repro.cluster.rack import Cluster, ClusterResult, ClusterServer

__all__ = [
    "NetworkFabric",
    "TelemetryBoard",
    "InterServerPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "JSQPolicy",
    "Po2Policy",
    "ShortestExpectedDelayPolicy",
    "make_cluster_policy",
    "CLUSTER_POLICIES",
    "LoadBalancer",
    "Cluster",
    "ClusterServer",
    "ClusterResult",
]
