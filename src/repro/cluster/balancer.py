"""The rack's load-balancer agent.

One balancer fronts N servers: it generates the rack's open-loop arrival
stream (so the *same* arrival randomness hits every policy under test —
common random numbers at rack scale), consults its inter-server policy for
each request, and ships the request across the fabric to the chosen
server's :meth:`~repro.core.server.Server.deliver` seam.  Completions
travel back across one hop; in counter-telemetry mode their landing is what
decrements the balancer's queue view.
"""

from repro.core.request import Request
from repro.cluster.network import TelemetryBoard

__all__ = ["LoadBalancer"]


class LoadBalancer:
    """Routes an open-loop arrival stream across the rack's servers."""

    def __init__(self, sim, clock, servers, policy, fabric, streams):
        if not servers:
            raise ValueError("balancer needs at least one server")
        self.sim = sim
        self.clock = clock
        self.servers = list(servers)
        self.policy = policy
        policy.prepare(self.servers)
        self.fabric = fabric
        self.board = TelemetryBoard(
            len(self.servers), counter_mode=fabric.counter_telemetry
        )
        self.rng_arrival = streams.stream("lb-arrivals")
        self.rng_service = streams.stream("lb-service")
        self.rng_route = streams.stream("lb-route")
        self.rng_net = streams.stream("lb-net")
        #: Requests routed to each server.
        self.routed = [0] * len(self.servers)
        self.offered = 0
        #: Replies that have landed back at the balancer.
        self.replies = 0
        self.num_requests = 0
        self._workload = None
        self._arrival = None
        self._t_us = 0.0
        #: Probe bus for rack-level routing/reply events (observability
        #: layer); None = the zero-overhead default.  The rack installs one
        #: when a trace session is active.
        self.probes = None
        for index, server in enumerate(self.servers):
            server.on_complete = self._completion_hook(index)

    # -- arrival generation ------------------------------------------------------

    def start(self, workload, arrival, num_requests):
        """Begin generating ``num_requests`` arrivals; the rack owns the
        event loop and runs it after this returns."""
        if num_requests < 1:
            raise ValueError("need at least one request")
        self.num_requests = num_requests
        self._workload = workload
        self._arrival = arrival
        self._schedule_next()
        self._start_telemetry()

    def _schedule_next(self):
        self._t_us += self._arrival.next_gap_us(self.rng_arrival)
        cycle = self.clock.us_to_cycles(self._t_us)
        self.sim.at(max(cycle, self.sim.now), self._fire, "lb-arrival")

    def _fire(self):
        kind, service_us = self._workload.sample_class(self.rng_service)
        service_cycles = max(1, self.clock.us_to_cycles(service_us))
        index = self.policy.choose(
            self.board, len(self.servers), self.rng_route
        )
        request = Request(
            rid=self.offered,
            kind=kind,
            arrival_cycle=None,
            service_cycles=service_cycles,
            service_us=service_us,
            payload={"server": index, "routed_cycle": self.sim.now},
        )
        self.offered += 1
        self.routed[index] += 1
        self.board.on_route(index)
        probes = self.probes
        if probes is not None:
            probes.request_routed(self.sim.now, request, index)
        server = self.servers[index]
        delay = self.fabric.hop_cycles(self.clock, self.rng_net)
        self.sim.after(
            delay, lambda: server.deliver(request), "net-deliver"
        )
        if self.offered < self.num_requests:
            self._schedule_next()

    # -- replies ----------------------------------------------------------------

    def _completion_hook(self, index):
        def on_complete(request):
            delay = self.fabric.hop_cycles(self.clock, self.rng_net)
            rid = request.rid
            self.sim.after(
                delay, lambda: self._reply_landed(index, rid), "net-reply"
            )

        return on_complete

    def _reply_landed(self, index, rid=None):
        self.replies += 1
        self.board.on_reply(index)
        probes = self.probes
        if probes is not None:
            probes.reply_received(self.sim.now, rid, index)

    # -- telemetry --------------------------------------------------------------

    def _start_telemetry(self):
        if self.board.counter_mode:
            return
        self._telemetry_tick()

    def _telemetry_tick(self):
        """Sample every server's true queue length and ship the reports to
        the board after the fabric's report-path delay."""
        for index, server in enumerate(self.servers):
            value = server.inflight
            delay = self.fabric.telemetry_delay_cycles(
                self.clock, self.rng_net
            )
            self.sim.after(
                delay,
                lambda i=index, v=value: self.board.record_report(i, v),
                "telemetry",
            )
        if self.replies >= self.num_requests:
            return  # the rack has drained; stop pumping so the heap empties
        self.sim.after(
            self.clock.us_to_cycles(self.fabric.telemetry_interval_us),
            self._telemetry_tick,
            "telemetry-tick",
        )

    # -- introspection ----------------------------------------------------------

    def imbalance(self):
        """Max/mean ratio of per-server routed counts (1.0 = perfectly
        even)."""
        mean = sum(self.routed) / len(self.routed)
        if mean <= 0:
            return 1.0
        return max(self.routed) / mean

    def __repr__(self):
        return "LoadBalancer(policy={}, offered={}, replies={})".format(
            self.policy.name, self.offered, self.replies
        )
