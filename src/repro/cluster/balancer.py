"""The rack's load-balancer agent.

One balancer fronts N servers: it generates the rack's open-loop arrival
stream (so the *same* arrival randomness hits every policy under test —
common random numbers at rack scale), consults its inter-server policy for
each request, and ships the request across the fabric to the chosen
server's :meth:`~repro.core.server.Server.deliver` seam.  Completions
travel back across one hop; in counter-telemetry mode their landing is what
decrements the balancer's queue view.
"""

from repro.core.request import Request
from repro.cluster.network import TelemetryBoard

__all__ = ["LoadBalancer"]


class _BoardView:
    """A telemetry board restricted to a subset of servers, presented to a
    policy as a dense 0..k-1 index space.  Health-aware routing uses this
    to hide suspected/crashed servers without teaching every policy about
    exclusion sets."""

    __slots__ = ("_board", "_allowed")

    def __init__(self, board, allowed):
        self._board = board
        self._allowed = allowed

    def queue_len(self, index):
        return self._board.queue_len(self._allowed[index])

    def snapshot(self):
        return [self._board.queue_len(i) for i in self._allowed]


class LoadBalancer:
    """Routes an open-loop arrival stream across the rack's servers."""

    def __init__(self, sim, clock, servers, policy, fabric, streams):
        if not servers:
            raise ValueError("balancer needs at least one server")
        self.sim = sim
        self.clock = clock
        self.servers = list(servers)
        self.policy = policy
        policy.prepare(self.servers)
        self.fabric = fabric
        self.board = TelemetryBoard(
            len(self.servers), counter_mode=fabric.counter_telemetry
        )
        self.rng_arrival = streams.stream("lb-arrivals")
        self.rng_service = streams.stream("lb-service")
        self.rng_route = streams.stream("lb-route")
        self.rng_net = streams.stream("lb-net")
        #: Requests routed to each server.
        self.routed = [0] * len(self.servers)
        self.offered = 0
        #: Replies that have landed back at the balancer.
        self.replies = 0
        self.num_requests = 0
        self._workload = None
        self._arrival = None
        self._t_us = 0.0
        #: Probe bus for rack-level routing/reply events (observability
        #: layer); None = the zero-overhead default.  The rack installs one
        #: when a trace session is active.
        self.probes = None
        #: Fault injector (:mod:`repro.faults`); None = the zero-overhead
        #: default.  Installed by the cluster when a FaultPlan is given.
        self.injector = None
        #: Resilience manager (timeouts/retries/hedging/shedding); None =
        #: the pass-through arrival path, bit-identical to the pre-fault
        #: layer.  Installed when a ResilienceConfig is given.
        self.resilience = None
        for index, server in enumerate(self.servers):
            server.on_complete = self._completion_hook(index)

    # -- arrival generation ------------------------------------------------------

    def start(self, workload, arrival, num_requests):
        """Begin generating ``num_requests`` arrivals; the rack owns the
        event loop and runs it after this returns."""
        if num_requests < 1:
            raise ValueError("need at least one request")
        self.num_requests = num_requests
        self._workload = workload
        self._arrival = arrival
        self._schedule_next()
        self._start_telemetry()
        if self.resilience is not None:
            self.resilience.start()

    def _schedule_next(self):
        self._t_us += self._arrival.next_gap_us(self.rng_arrival)
        cycle = self.clock.us_to_cycles(self._t_us)
        self.sim.post_at(max(cycle, self.sim.now), self._fire, "lb-arrival")

    def _fire(self):
        kind, service_us = self._workload.sample_class(self.rng_service)
        service_cycles = max(1, self.clock.us_to_cycles(service_us))
        request = Request(
            rid=self.offered,
            kind=kind,
            arrival_cycle=None,
            service_cycles=service_cycles,
            service_us=service_us,
            payload={},
        )
        self.offered += 1
        manager = self.resilience
        if manager is None:
            self._route_and_send(request)
        else:
            manager.on_arrival(request)
        if self.offered < self.num_requests:
            self._schedule_next()

    def _choose(self, exclude=None):
        """Pick a server via the policy; ``exclude`` (suspected/crashed
        indices) narrows the candidate set through a masked board view.
        When exclusion would leave nothing, fall back to the full rack —
        routing somewhere beats dropping on the floor."""
        num = len(self.servers)
        if not exclude:
            return self.policy.choose(self.board, num, self.rng_route)
        allowed = [i for i in range(num) if i not in exclude]
        if not allowed:
            return self.policy.choose(self.board, num, self.rng_route)
        view = _BoardView(self.board, allowed)
        pick = self.policy.choose(view, len(allowed), self.rng_route)
        return allowed[pick]

    def _hop_delay(self):
        delay = self.fabric.hop_cycles(self.clock, self.rng_net)
        injector = self.injector
        if injector is not None:
            delay = injector.scale_hop(self.sim.now, delay)
        return delay

    def _route_and_send(self, request, exclude=None):
        """Route ``request`` (one attempt) and ship it across the fabric.

        Shared by the plain arrival path, the resilience manager's
        retry/hedge launches, and crash-requeue — RNG draw order on the
        plain path is identical to the pre-fault implementation, which is
        what keeps no-plan racks bit-identical.
        """
        index = self._choose(exclude)
        now = self.sim.now
        payload = request.payload
        payload["server"] = index
        if "routed_cycle" not in payload:
            payload["routed_cycle"] = now
        self.routed[index] += 1
        injector = self.injector
        if injector is None or not injector.telemetry_frozen(now):
            self.board.on_route(index)
        probes = self.probes
        if probes is not None:
            probes.request_routed(now, request, index)
        server = self.servers[index]
        delay = self._hop_delay()
        self.sim.post(
            delay, lambda: server.deliver(request), "net-deliver"
        )
        return index

    def reroute(self, request, exclude=()):
        """Re-admit a request the fault injector swept out of a crashing
        server (``requeue_inflight``): execution restarts from scratch on a
        healthy server, but the original arrival instant is kept so its
        slowdown honestly includes the lost progress."""
        request.remaining_cycles = request.service_cycles
        request.started_by_dispatcher = False
        request.last_worker = None
        self._route_and_send(request, exclude=exclude)

    # -- replies ----------------------------------------------------------------

    def _completion_hook(self, index):
        def on_complete(request):
            delay = self.fabric.hop_cycles(self.clock, self.rng_net)
            rid = request.rid
            self.sim.post(
                delay, lambda: self._reply_landed(index, rid), "net-reply"
            )

        return on_complete

    def _reply_landed(self, index, rid=None):
        self.replies += 1
        injector = self.injector
        if injector is None:
            self.board.on_reply(index)
        else:
            if not injector.telemetry_frozen(self.sim.now):
                self.board.on_reply(index)
            injector.note_reply(index, self.sim.now)
        probes = self.probes
        if probes is not None:
            probes.reply_received(self.sim.now, rid, index)
        manager = self.resilience
        if manager is not None:
            manager.on_reply(rid, index)

    def accounted(self):
        """True once every offered request is resolved: replied, or (under
        fault injection) lost inside a crash, or (under resilience) shed /
        failed / completed.  This replaces the plain ``replies`` check as
        the periodic tickers' stop condition so faulted racks still
        drain."""
        manager = self.resilience
        if manager is not None:
            return (
                self.offered >= self.num_requests
                and manager.resolved >= self.num_requests
            )
        lost = self.injector.lost_total if self.injector is not None else 0
        return self.replies + lost >= self.num_requests

    # -- telemetry --------------------------------------------------------------

    def _start_telemetry(self):
        if self.board.counter_mode:
            return
        self._telemetry_tick()

    def _telemetry_tick(self):
        """Sample every server's true queue length and ship the reports to
        the board after the fabric's report-path delay."""
        injector = self.injector
        for index, server in enumerate(self.servers):
            value = server.inflight
            delay = self.fabric.telemetry_delay_cycles(
                self.clock, self.rng_net
            )
            if injector is not None:
                delay = injector.scale_hop(self.sim.now, delay)
            self.sim.post(
                delay,
                lambda i=index, v=value: self._apply_report(i, v),
                "telemetry",
            )
        if self.accounted():
            return  # the rack has drained; stop pumping so the heap empties
        self.sim.post(
            self.clock.us_to_cycles(self.fabric.telemetry_interval_us),
            self._telemetry_tick,
            "telemetry-tick",
        )

    def _apply_report(self, index, value):
        """Land one telemetry report — unless a blackout window is eating
        reports in transit."""
        injector = self.injector
        if injector is not None and injector.telemetry_frozen(self.sim.now):
            injector.reports_dropped += 1
            return
        self.board.record_report(index, value)

    # -- introspection ----------------------------------------------------------

    def imbalance(self):
        """Max/mean ratio of per-server routed counts (1.0 = perfectly
        even)."""
        mean = sum(self.routed) / len(self.routed)
        if mean <= 0:
            return 1.0
        return max(self.routed) / mean

    def __repr__(self):
        return "LoadBalancer(policy={}, offered={}, replies={})".format(
            self.policy.name, self.offered, self.replies
        )
