"""Rack fabric model: hop latency and queue-length telemetry staleness.

The inter-server layer lives or dies by the quality of the queue signal the
load balancer acts on (RackSched section 4; Rain makes the staleness model
the crux).  This module keeps both knobs explicit:

* every balancer->server delivery and server->balancer reply crosses one
  **hop** of the rack fabric (base latency + uniform jitter), so routing
  decisions always act on a state snapshot that is at least one hop old;
* the balancer's per-server queue lengths live on a :class:`TelemetryBoard`
  that is either maintained by the balancer's own request/reply accounting
  (``telemetry_interval_us <= 0`` — the idealized switch-counter model of
  RackSched) or refreshed by **periodic reports** sampled at the servers
  and delayed by a hop plus a configurable extra staleness — turning the
  staleness knob degrades every queue-reading policy naturally.
"""

from dataclasses import dataclass

from repro import constants

__all__ = ["NetworkFabric", "TelemetryBoard"]


@dataclass(frozen=True)
class NetworkFabric:
    """Latency model for the rack's top-of-rack fabric.

    Attributes
    ----------
    hop_latency_us:
        Base one-way latency of one balancer<->server traversal.
    hop_jitter_us:
        Uniform extra latency per hop in ``[0, hop_jitter_us]``.
    telemetry_interval_us:
        Period of queue-length reports.  ``<= 0`` switches the balancer to
        its own request/reply accounting (no reports, freshest possible
        signal); ``> 0`` samples every server's queue each period.
    telemetry_staleness_us:
        Extra report-path delay on top of the hop — the stale-signal knob.
    """

    hop_latency_us: float = constants.CLUSTER_HOP_LATENCY_NS / 1000.0
    hop_jitter_us: float = constants.CLUSTER_HOP_JITTER_NS / 1000.0
    telemetry_interval_us: float = constants.CLUSTER_TELEMETRY_INTERVAL_US
    telemetry_staleness_us: float = 0.0

    def __post_init__(self):
        if self.hop_latency_us < 0:
            raise ValueError(
                "hop latency must be >= 0, got {}".format(self.hop_latency_us)
            )
        if self.hop_jitter_us < 0:
            raise ValueError(
                "hop jitter must be >= 0, got {}".format(self.hop_jitter_us)
            )
        if self.telemetry_staleness_us < 0:
            raise ValueError(
                "telemetry staleness must be >= 0, got {}".format(
                    self.telemetry_staleness_us
                )
            )

    @property
    def counter_telemetry(self):
        """True when the balancer keeps its own outstanding-request
        counters instead of consuming periodic reports."""
        return self.telemetry_interval_us <= 0

    def hop_cycles(self, clock, rng):
        """Latency of one fabric traversal, in cycles."""
        latency_us = self.hop_latency_us
        if self.hop_jitter_us > 0:
            latency_us += rng.uniform(0.0, self.hop_jitter_us)
        return clock.us_to_cycles(latency_us)

    def telemetry_delay_cycles(self, clock, rng):
        """Delay between sampling a server's queue and the balancer seeing
        the report: one hop plus the configured extra staleness."""
        return self.hop_cycles(clock, rng) + clock.us_to_cycles(
            self.telemetry_staleness_us
        )

    def replace(self, **changes):
        """A copy of this fabric with ``changes`` applied."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


class TelemetryBoard:
    """The balancer's (possibly stale) view of per-server queue lengths.

    In **counter mode** the board mirrors RackSched's switch counters: it
    increments a server's entry when a request is routed there and
    decrements it when the reply lands back at the balancer, so the view
    lags reality by at most the in-flight reply window.  In **report mode**
    the board only changes when a periodic telemetry report arrives; between
    reports every policy reads frozen — possibly badly stale — values.
    """

    def __init__(self, num_servers, counter_mode):
        if num_servers < 1:
            raise ValueError("board needs at least one server")
        self.counter_mode = counter_mode
        self._lens = [0] * num_servers
        #: Telemetry reports applied (report mode only).
        self.updates = 0

    def queue_len(self, index):
        """The balancer-visible queue length of server ``index``."""
        return self._lens[index]

    def snapshot(self):
        """The full balancer-visible view, as a list."""
        return list(self._lens)

    # -- counter mode -----------------------------------------------------------

    def on_route(self, index):
        if self.counter_mode:
            self._lens[index] += 1

    def on_reply(self, index):
        if self.counter_mode:
            self._lens[index] = max(0, self._lens[index] - 1)

    # -- report mode ------------------------------------------------------------

    def record_report(self, index, queue_len):
        self._lens[index] = queue_len
        self.updates += 1

    # -- fault-injection resync -------------------------------------------------

    def resync(self, index, queue_len):
        """Overwrite one entry with ground truth.  Used by the fault
        injector after a crash recovery or a counter-mode telemetry
        blackout, where missed increments/decrements would otherwise skew
        the view forever.  Not counted as a telemetry update."""
        self._lens[index] = queue_len

    def __repr__(self):
        return "TelemetryBoard(mode={}, lens={})".format(
            "counter" if self.counter_mode else "report", self._lens
        )
