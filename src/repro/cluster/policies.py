"""Inter-server routing policies for the rack load balancer.

The catalogue follows RackSched's design space (section 4): oblivious
policies (random, round-robin), queue-aware policies (JSQ, power-of-d
choices), and the shortest-expected-delay policy RackSched deploys on the
ToR switch, which weights the queue signal by each server's service
capacity.  All queue-aware policies read the balancer's
:class:`~repro.cluster.network.TelemetryBoard`, so signal staleness affects
every one of them through the same mechanism.
"""

__all__ = [
    "InterServerPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "JSQPolicy",
    "Po2Policy",
    "ShortestExpectedDelayPolicy",
    "make_cluster_policy",
    "CLUSTER_POLICIES",
]


class InterServerPolicy:
    """Base class: picks the server index for each arriving request."""

    #: Short label used in tables and CLI flags.
    name = "?"

    def prepare(self, servers):
        """Called once with the rack's servers before routing starts; lets
        capacity-aware policies capture per-server worker counts."""

    def choose(self, board, num_servers, rng):
        """Return the target server index for the next request."""
        raise NotImplementedError

    def __repr__(self):
        return "{}()".format(type(self).__name__)


class RandomPolicy(InterServerPolicy):
    """Uniformly random spraying — the signal-free baseline."""

    name = "random"

    def choose(self, board, num_servers, rng):
        return rng.randrange(num_servers)


class RoundRobinPolicy(InterServerPolicy):
    """Cycle through servers in order (a NIC RSS indirection table)."""

    name = "rr"

    def __init__(self):
        self._cursor = 0

    def choose(self, board, num_servers, rng):
        index = self._cursor % num_servers
        self._cursor = index + 1
        return index


def _argmin(scores, rng):
    """Index of the minimum score, random tie-break (RackSched randomizes
    ties so equal queues do not herd onto the lowest index)."""
    best = []
    best_score = None
    for index, score in enumerate(scores):
        if best_score is None or score < best_score:
            best = [index]
            best_score = score
        elif score == best_score:
            best.append(index)
    if len(best) == 1:
        return best[0]
    return best[rng.randrange(len(best))]


class JSQPolicy(InterServerPolicy):
    """Join-the-shortest-queue over the balancer-visible queue lengths."""

    name = "jsq"

    def choose(self, board, num_servers, rng):
        return _argmin(
            [board.queue_len(i) for i in range(num_servers)], rng
        )


class Po2Policy(InterServerPolicy):
    """Power-of-d-choices: sample ``d`` servers, join the shorter queue.

    The classic cheap approximation to JSQ — with d=2 its tail is within a
    small constant factor of JSQ while touching only two counters.
    """

    name = "po2"

    def __init__(self, d=2):
        if d < 2:
            raise ValueError("power-of-d needs d >= 2, got {}".format(d))
        self.d = d
        if d != 2:
            self.name = "po{}".format(d)

    def choose(self, board, num_servers, rng):
        d = min(self.d, num_servers)
        candidates = rng.sample(range(num_servers), d)
        scores = [board.queue_len(i) for i in candidates]
        return candidates[_argmin(scores, rng)]


class ShortestExpectedDelayPolicy(InterServerPolicy):
    """RackSched's deployed policy: join the server with the smallest
    expected wait, ``(queue_len + 1) / capacity``.

    On a homogeneous rack this reduces to JSQ; when servers differ in
    worker count (or core frequency) the capacity weighting routes
    proportionally more load to bigger machines.
    """

    name = "sed"

    def __init__(self):
        self._capacity = None

    def prepare(self, servers):
        self._capacity = [
            server.machine.num_workers * server.clock.freq_hz
            for server in servers
        ]

    def choose(self, board, num_servers, rng):
        if self._capacity is None or len(self._capacity) != num_servers:
            # Un-prepared (or rack changed): fall back to unit capacities.
            capacity = [1.0] * num_servers
        else:
            capacity = self._capacity
        scores = [
            (board.queue_len(i) + 1) / capacity[i] for i in range(num_servers)
        ]
        return _argmin(scores, rng)


#: Factories for every named policy, keyed by CLI/experiment label.
CLUSTER_POLICIES = {
    "random": RandomPolicy,
    "rr": RoundRobinPolicy,
    "round-robin": RoundRobinPolicy,
    "jsq": JSQPolicy,
    "po2": Po2Policy,
    "sed": ShortestExpectedDelayPolicy,
}


def make_cluster_policy(spec):
    """Build a policy from a name ("random", "rr", "jsq", "po2", "po3",
    "sed"), or pass an :class:`InterServerPolicy` instance through."""
    if isinstance(spec, InterServerPolicy):
        return spec
    name = str(spec).lower()
    if name.startswith("po") and name not in CLUSTER_POLICIES:
        try:
            return Po2Policy(d=int(name[2:]))
        except ValueError:
            pass
    try:
        return CLUSTER_POLICIES[name]()
    except KeyError:
        raise KeyError(
            "unknown inter-server policy {!r}; known: {}".format(
                spec, ", ".join(sorted(CLUSTER_POLICIES))
            )
        ) from None
