"""The simulated rack: N single-dispatcher servers behind one balancer.

This is the first place multiple :class:`~repro.core.server.Server`
instances coexist in **one** simulation: every server is built on the
rack's shared :class:`~repro.sim.engine.Simulator` and fed through the
externally-injected arrival seam (:meth:`Server.deliver`), so intra-server
mechanisms (Concord's cooperation, JBSQ, work stealing) run unchanged while
the inter-server layer routes above them.  Per-server randomness comes from
:meth:`RngStreams.spawn_key`, so racks are reproducible and members are
independent.
"""

from repro import constants
from repro.core.server import RunLimitExceeded, Server
from repro.cluster.balancer import LoadBalancer
from repro.cluster.network import NetworkFabric
from repro.cluster.policies import make_cluster_policy
from repro.metrics.slowdown import check_warmup_frac, summarize_slowdowns
from repro.obs.session import active_session
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

__all__ = ["Cluster", "ClusterServer", "ClusterResult"]


class ClusterServer(Server):
    """One rack member: an ordinary single-dispatcher server wired into the
    shared rack simulator with reproducibly-derived child streams.

    The adapter adds nothing to the scheduling model — that is the point:
    balancer-routed arrivals enter through the same :meth:`deliver` seam
    the single-server paths use, so rack-scale results compose the exact
    intra-server behaviour the paper's figures measure.
    """

    def __init__(self, index, machine, config, sim, streams, profile=None,
                 app=None):
        super().__init__(
            machine, config,
            sim=sim,
            streams=streams.spawn_key("server", index),
            profile=profile,
            app=app,
        )
        self.index = index


class Cluster:
    """A rack of ``num_servers`` identical servers behind one balancer.

    Parameters
    ----------
    machine, config:
        Per-server machine spec and runtime configuration (the intra-server
        mechanism: Concord, Shinjuku, no-preemption, ...).
    num_servers:
        Rack width.
    policy:
        Inter-server policy name ("random", "rr", "jsq", "po2", "sed") or
        an :class:`~repro.cluster.policies.InterServerPolicy` instance.
    fabric:
        Optional :class:`~repro.cluster.network.NetworkFabric`; defaults to
        the constants-derived rack fabric.
    seed:
        Master seed; servers and balancer derive children via
        ``spawn_key``, so the same seed reproduces the whole rack.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`.  ``None`` (the default)
        builds a rack bit-identical to the pre-fault layer: no injector is
        installed and every hook stays behind an ``is None`` guard.
    resilience:
        Optional :class:`~repro.faults.ResilienceConfig` enabling the
        balancer-side failure detector, per-request timeouts with retry,
        hedging, and admission-control shedding.
    """

    def __init__(self, machine, config, num_servers, policy="jsq", seed=0,
                 fabric=None, profile=None, fault_plan=None, resilience=None):
        if num_servers < 1:
            raise ValueError(
                "rack needs at least one server, got {}".format(num_servers)
            )
        self.machine = machine
        self.config = config
        self.num_servers = num_servers
        self.sim = Simulator()
        self.streams = RngStreams(seed)
        self.fabric = fabric if fabric is not None else NetworkFabric()
        self.policy = make_cluster_policy(policy)
        self.servers = [
            ClusterServer(
                index, machine, config, self.sim, self.streams,
                profile=profile,
            )
            for index in range(num_servers)
        ]
        self.balancer = LoadBalancer(
            self.sim, machine.clock, self.servers, self.policy, self.fabric,
            self.streams.spawn_key("balancer"),
        )
        self.injector = None
        if fault_plan is not None and len(fault_plan):
            # Imported lazily: repro.faults depends on the cluster layer's
            # seams, not the other way round.
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(
                fault_plan, self.streams.spawn_key("faults")
            )
            self.injector.install(self)
        self.resilience = None
        if resilience is not None:
            from repro.faults.resilience import ResilienceManager

            self.resilience = ResilienceManager(self.balancer, resilience)
        #: Probe bus for the balancer lane; the member servers already
        #: picked up their own buses through ``Server.__init__`` when a
        #: trace session is ambient.
        self.probes = None
        session = active_session()
        if session is not None:
            bus = session.make_bus("balancer", clock=machine.clock)
            self.probes = bus
            self.balancer.probes = bus
            if bus.engine_events:
                # One shared simulator for the whole rack: attach the raw
                # engine feed once, on the balancer's bus.
                self.sim.attach_probes(bus)
        self._ran = False

    def run(self, workload, arrival, num_requests, until_us=None,
            max_events=120_000_000):
        """Offer ``num_requests`` open-loop arrivals to the rack and run the
        shared event loop to drain (or to ``until_us``)."""
        if self._ran:
            raise RuntimeError("Cluster instances are single-shot; build a new one")
        self._ran = True
        self.balancer.start(workload, arrival, num_requests)
        clock = self.machine.clock
        until = clock.us_to_cycles(until_us) if until_us is not None else None
        self.sim.run(until=until, max_events=max_events)
        completed = sum(len(server.completed) for server in self.servers)
        if self.injector is not None or self.resilience is not None:
            # Crashed-away losses / shed / failed requests never produce a
            # completion record, so "every request resolved" is the honest
            # drain criterion under fault injection.
            drained = self.balancer.accounted()
        else:
            drained = completed == num_requests
        if not drained and until is None and self.sim.pending:
            raise RunLimitExceeded(
                "rack[{}x{}]: {} events were not enough to drain {} requests "
                "({} completed)".format(
                    self.num_servers, self.config.name, max_events,
                    num_requests, completed,
                )
            )
        return ClusterResult(
            self,
            [server.collect_result() for server in self.servers],
            drained=drained,
        )


class ClusterResult:
    """Rack-wide merged view over per-server SimResults.

    Mirrors the read interface of :class:`~repro.core.server.SimResult`
    (records, slowdowns, throughput) so :mod:`repro.metrics` works
    unchanged, and adds rack-level introspection: per-server results,
    routing counts, imbalance, and telemetry statistics.
    """

    def __init__(self, cluster, server_results, drained):
        balancer = cluster.balancer
        self.config_name = "{} x{} [{}]".format(
            cluster.config.name, cluster.num_servers, cluster.policy.name
        )
        self.policy_name = cluster.policy.name
        self.num_servers = cluster.num_servers
        self.clock = cluster.machine.clock
        self.fabric = cluster.fabric
        self.server_results = server_results
        #: Completed requests rack-wide, in completion order.
        self.records = [
            record
            for result in server_results
            for record in result.records
        ]
        self.records.sort(key=lambda r: r.completion_cycle)
        #: Records dropped because a retry/hedge duplicate of the same
        #: logical request already completed earlier (first reply wins).
        self.duplicate_records = 0
        if balancer.resilience is not None:
            seen = set()
            unique = []
            for record in self.records:
                if record.rid in seen:
                    continue
                seen.add(record.rid)
                unique.append(record)
            self.duplicate_records = len(self.records) - len(unique)
            self.records = unique
        self.num_offered = balancer.offered
        self.drained = drained
        arrivals = [
            r.first_arrival_cycle for r in server_results if r.records
        ]
        self.first_arrival_cycle = min(arrivals) if arrivals else 0
        self.end_cycle = max(r.end_cycle for r in server_results)
        #: Requests the balancer routed to each server.
        self.routed = list(balancer.routed)
        self.replies = balancer.replies
        self.telemetry_updates = balancer.board.updates
        self.worker_stats = [
            stat for result in server_results for stat in result.worker_stats
        ]
        self.dispatcher_stats = {
            key: sum(r.dispatcher_stats[key] for r in server_results)
            for key in server_results[0].dispatcher_stats
        }
        # -- fault-injection / resilience accounting (None/zero when off) -----
        injector = balancer.injector
        manager = balancer.resilience
        #: Injector counter dict (crashes, lost, ...), or None.
        self.fault_stats = injector.stats() if injector is not None else None
        #: Resilience counter dict (retries, hedges, ...), or None.
        self.resilience_stats = manager.stats() if manager is not None else None
        self.lost = injector.lost_total if injector is not None else 0
        self.requeued = injector.requeued_total if injector is not None else 0
        self.crashes = injector.crashes if injector is not None else 0
        #: Crash-onset-to-first-post-recovery-reply, µs, one per crash.
        self.mttr_us = (
            injector.mttr_us_samples() if injector is not None else []
        )
        self.shed = manager.shed if manager is not None else 0
        self.failed = manager.failed if manager is not None else 0
        self.retries = manager.retries if manager is not None else 0
        self.hedges = manager.hedges if manager is not None else 0
        self.timeouts = manager.timeouts if manager is not None else 0
        #: ``[server, suspect_cycle, clear_cycle_or_None]`` detector rows.
        self.suspicion_intervals = (
            [list(row) for row in manager.detector.intervals]
            if manager is not None and manager.detector is not None
            else []
        )
        #: Admission-to-first-reply latency per completed logical request
        #: (µs, rid order) — the client-side recovery-timeline signal.
        self.e2e_latencies_us = (
            manager.e2e_latencies_us() if manager is not None else None
        )

    # -- the paper's metrics, rack-wide ------------------------------------------

    def measured_records(self, warmup_frac=0.1):
        """Pooled records ordered by arrival, with the rack-wide warmup
        prefix discarded (same convention as a single server)."""
        check_warmup_frac(warmup_frac)
        ordered = sorted(self.records, key=lambda r: r.arrival_cycle)
        skip = int(len(ordered) * warmup_frac)
        return ordered[skip:]

    def slowdowns(self, warmup_frac=0.1):
        """Per-request server-sojourn slowdowns pooled across the rack.

        Pooling per-request samples (rather than averaging per-server
        percentiles) is what makes the rack-wide p99/p99.9 equal the value
        a client-side observer of all replies would compute.
        """
        return [r.slowdown() for r in self.measured_records(warmup_frac)]

    def summary(self, warmup_frac=0.1):
        """Rack-wide :class:`~repro.metrics.SlowdownSummary`."""
        return summarize_slowdowns(self.slowdowns(warmup_frac))

    def client_latencies_us(self, warmup_frac=0.1):
        """End-to-end latency as a client outside the rack would measure:
        balancer routing -> fabric hop -> server sojourn -> fabric hop,
        using each request's actual routing instant."""
        hop_us = self.fabric.hop_latency_us + self.fabric.hop_jitter_us / 2.0
        out = []
        for record in self.measured_records(warmup_frac):
            routed = record.payload["routed_cycle"]
            in_rack = self.clock.cycles_to_us(
                record.completion_cycle - routed
            )
            out.append(in_rack + hop_us)
        return out

    def duration_cycles(self):
        return max(1, self.end_cycle - self.first_arrival_cycle)

    def throughput_rps(self):
        return len(self.records) * self.clock.freq_hz / self.duration_cycles()

    def goodput(self):
        """Fraction of offered logical requests that completed (uniquely):
        the headline degradation-curve metric.  1.0 on a fault-free drained
        run; crashes without retry, shedding, and failures pull it down."""
        return len(self.records) / max(1, self.num_offered)

    def slo_goodput(self, warmup_frac=0.1, slo=constants.SLOWDOWN_SLO):
        """Fraction of measured logical requests that completed *within*
        the slowdown SLO — requests that were lost, shed, failed, or
        completed unusably late all count against it, which is what makes
        telemetry blackouts (nothing lost, tail exploded) visible."""
        measured = self.measured_records(warmup_frac)
        offered_window = max(
            1, self.num_offered - (len(self.records) - len(measured))
        )
        good = sum(1 for r in measured if r.slowdown() <= slo)
        return good / offered_window

    def imbalance(self):
        """Max/mean ratio of per-server routed counts.  Robust to racks
        where some (or all) servers received zero requests — e.g. drained
        health-aware routing or shed-everything runs."""
        if not self.routed:
            return 1.0
        mean = sum(self.routed) / len(self.routed)
        if mean <= 0:
            return 1.0
        return max(self.routed) / mean

    def per_server_summaries(self, warmup_frac=0.1):
        """Per-server slowdown summaries (None for servers that completed
        nothing — idle, fully-drained-around, or crashed-and-swept)."""
        check_warmup_frac(warmup_frac)
        out = []
        for result in self.server_results:
            samples = result.slowdowns(warmup_frac)
            out.append(summarize_slowdowns(samples) if samples else None)
        return out

    def __repr__(self):
        return (
            "ClusterResult(config={!r}, offered={}, completed={}, "
            "drained={})".format(
                self.config_name, self.num_offered, len(self.records),
                self.drained,
            )
        )
