"""Hardware and runtime cost constants used throughout the simulation.

Every constant cites where in the Concord paper (SOSP '23) it comes from.
All cycle costs are for the paper's primary testbed: CloudLab c6420 nodes
with Intel Xeon Gold 6142 CPUs at 2.6 GHz (section 5.1), unless noted.

The simulation measures time in integer CPU *cycles*; use
:mod:`repro.hardware.cpu` helpers to convert to/from wall-clock time.
"""

# --- Clock -----------------------------------------------------------------

#: Default CPU frequency in Hz (c6420 testbed, section 5.1).
DEFAULT_FREQ_HZ = 2_600_000_000

#: Cycles per microsecond at the default frequency.
CYCLES_PER_US = DEFAULT_FREQ_HZ // 1_000_000

# --- Preemption notification costs (section 2.2.1, 3.1) ---------------------

#: Cycles for a worker to receive a posted IPI in Shinjuku (section 2.2.1:
#: "receiving an IPI in Shinjuku costs ~1200 cycles").
IPI_RECEIVE_CYCLES = 1200

#: Linux's deployable IPIs cost double Shinjuku's posted IPIs (section 2.2.1).
LINUX_IPI_RECEIVE_CYCLES = 2 * IPI_RECEIVE_CYCLES

#: Cycles for one rdtsc() bookkeeping probe (section 2.2.1: "~30 cycles").
RDTSC_PROBE_CYCLES = 30

#: Cycles for a Concord cache-line probe when the line is L1-resident
#: (section 3.1: "an L1 cache hit plus a compare, i.e., 2 cycles").
CACHELINE_PROBE_HIT_CYCLES = 2

#: Cycles for the final cache-line check after the dispatcher's write —
#: a Read-after-Write coherence miss (section 3.1: "only costs ~150 cycles,
#: leading to a cnotif that is 1/8th the cost of a Shinjuku IPI").
CACHELINE_MISS_CYCLES = 150

#: Fraction of the probe miss latency actually exposed as lost execution
#: time.  Unlike an interrupt, the probe's load is an ordinary instruction:
#: out-of-order execution overlaps much of the miss with useful work.  0.5
#: reconciles the raw 150-cycle miss with Fig. 2's near-flat ~1-1.5% Concord
#: line and the stated 12x gap vs IPIs at a 2us quantum.
CACHELINE_MISS_EXPOSED_FRACTION = 0.5

#: Extra worker-side disruption per IPI beyond the receive cost: pipeline
#: flush and instruction-stream re-entry.  Calibrated so the model matches
#: Fig. 2's measured points (~33% overhead at q=2us, ~6% at q=10us).
IPI_EXTRA_DISRUPTION_CYCLES = 400

#: Cycles for a worker to receive an Intel user-space interrupt (UIPI).
#: Section 5.6 reports Concord's cooperation imposes ~2x lower overhead than
#: UIPIs; UIPI delivery still traverses memory-mapped registers and the same
#: coherence fabric.  ~600 cycles reproduces the 2x gap of Fig. 15.
UIPI_RECEIVE_CYCLES = 600

#: Multiplier on coherence costs for the 192-core Sapphire Rapids machine of
#: section 5.6 ("cache coherence misses approximately 1.5x more expensive").
SAPPHIRE_RAPIDS_COHERENCE_FACTOR = 1.5

# --- Instrumentation density (sections 2.2.1, 4.3) --------------------------

#: Probes are placed roughly every 200 LLVM IR instructions (sections 2.2.1
#: and 4.3, citing Compiler Interrupts).
PROBE_INTERVAL_IR_INSTRUCTIONS = 200

#: Cycles of useful work between consecutive probes.  Calibrated so that a
#: 30-cycle rdtsc probe every interval yields the ~21% flat overhead the
#: paper measures for Compiler Interrupts in Fig. 2: 30 / 143 ~= 0.21.
PROBE_INTERVAL_CYCLES = 143

#: Loop bodies are unrolled until they contain at least this many IR
#: instructions (section 4.3).
LOOP_UNROLL_MIN_INSTRUCTIONS = 200

# --- Inter-thread communication (section 2.2.2) ------------------------------

#: Lower bound on the cycles a single-queue worker idles between finishing a
#: request and receiving the next: two coherence misses, ~400 cycles total
#: (section 2.2.2, citing David et al. SOSP '13).
SQ_HANDOFF_CYCLES = 400

#: One cache-line transfer between cores (half the two-miss handoff).
COHERENCE_MISS_CYCLES = 200

# --- Context switching (section 3.1) -----------------------------------------

#: Cooperative user-level context switch: "worker threads switch between
#: requests within ~100ns" (section 3.1).  ~260 cycles at 2.6 GHz.
COOP_CONTEXT_SWITCH_CYCLES = 260

#: Context-switch cost when entered from an interrupt handler (Shinjuku's
#: preemptive switch; trap frame + untrusted state save).  Roughly 2x the
#: cooperative cost.
PREEMPTIVE_CONTEXT_SWITCH_CYCLES = 520

# --- Dispatcher micro-operation costs ----------------------------------------

#: Dispatcher cycles to dequeue an incoming packet from the networker and
#: enqueue it on the central queue.  Together with DISPATCH_PUSH_CYCLES this
#: bounds dispatcher throughput at ~4.3 MRps as in Fig. 8 (left), where the
#: dispatcher is the common bottleneck for Fixed(1).
DISPATCH_RX_CYCLES = 300

#: Dispatcher cycles to hand one request to a worker (queue bookkeeping plus
#: the Write-after-Read coherence miss into the worker's queue).
DISPATCH_PUSH_CYCLES = 300

#: Dispatcher cycles to pull a preempted request back onto the central queue.
DISPATCH_REQUEUE_CYCLES = 50

#: Worker-side cycles to pick a freshly pushed request out of its queue in
#: single-queue mode (the second coherence miss of section 2.2.2's pair;
#: together with DISPATCH_PUSH_CYCLES this reproduces the >=400-cycle
#: handoff floor).
SQ_WORKER_RECEIVE_CYCLES = 100

#: Residual per-request cost of JBSQ's asynchronous dispatch: the worker,
#: not the dispatcher, must arm the scheduling-quantum timer (section 3.2:
#: "JBSQ(2) does not make cnext zero").  Sized to keep JBSQ's idle overhead
#: 9-13x below the single queue's (Fig. 3).
JBSQ_RESIDUAL_CYCLES = 36

#: Extra dispatcher cycles per dispatched request for JBSQ's shortest-queue
#: scan.  Produces Concord's ~2% lower peak for Fixed(1) (section 5.2).
JBSQ_SHORTEST_QUEUE_CYCLES = 12

#: Dispatcher cycles to write a preemption signal into a worker's dedicated
#: cache line (local write; the receiving miss is paid by the worker).
PREEMPT_SIGNAL_WRITE_CYCLES = 50

#: Dispatcher cycles to post an IPI (APIC write + protocol overhead).
IPI_SEND_CYCLES = 300

#: Dispatcher cycles spent on one idle poll iteration (scan worker flags,
#: check NIC rings, check timers).
DISPATCHER_POLL_CYCLES = 60

# --- Runtime bookkeeping ------------------------------------------------------

#: Fraction of request service time lost to generic runtime bookkeeping
#: (cproc floor in Eq. 2), excluding instrumentation probes.
RUNTIME_PROC_OVERHEAD_FRACTION = 0.003

#: Concord's instrumentation overhead fraction (Fig. 2: "near-constant at
#: around 1-1.5%").  Derived dynamically from the instrument package for
#: Table 1; this is the default used by the scheduler simulation.
CONCORD_INSTRUMENTATION_OVERHEAD = 0.012

#: rdtsc-based instrumentation overhead fraction (Fig. 2: "~21% across all
#: scheduling quanta").
RDTSC_INSTRUMENTATION_OVERHEAD = 0.21

# --- Networking (section 5.1) -------------------------------------------------

#: Average client<->server round-trip time in nanoseconds (section 5.1:
#: "The average network round trip time between the client and server is
#: 10us").
NETWORK_RTT_NS = 10_000

# --- Rack-scale cluster fabric (repro.cluster; RackSched/Rain-style) ----------

#: One-way latency of a single intra-rack hop (load balancer -> server or
#: back) in nanoseconds.  Half the client<->server round trip of section
#: 5.1: one ToR switch traversal each way.
CLUSTER_HOP_LATENCY_NS = NETWORK_RTT_NS // 2

#: Uniform jitter added on top of each hop's base latency (switch queueing,
#: serialization) in nanoseconds.
CLUSTER_HOP_JITTER_NS = 1_000

#: Period of per-server queue-length telemetry reports to the load
#: balancer, in microseconds.  RackSched's switch tracks queue lengths from
#: periodic/piggybacked reports; <= 0 means the balancer does its own
#: request/reply accounting instead (idealized switch-local counters).
CLUSTER_TELEMETRY_INTERVAL_US = 5.0

#: Default rack size for cluster experiments (servers behind one balancer).
CLUSTER_DEFAULT_NUM_SERVERS = 4

# --- Fault injection & resilience (repro.faults) -------------------------------

#: How long a worker waits before re-checking a preemption notification that
#: a fault window swallowed (probe dropout / stall re-arm), in microseconds.
#: Quantum-scale: a lost probe is noticed roughly one scheduling period later.
FAULT_REPROBE_US = 5.0

#: Default per-request timeout at the balancer before a retry is considered,
#: in microseconds.  Must comfortably exceed a healthy request's end-to-end
#: latency (hop + sojourn + hop) so timeouts fire only on real trouble.
FAULT_TIMEOUT_US = 1500.0

#: Default maximum retries per logical request (attempts = 1 + retries).
FAULT_MAX_RETRIES = 3

#: Deterministic multiplicative backoff applied to the timeout per attempt.
FAULT_RETRY_BACKOFF = 2.0

#: Failure detector: suspect a server when it has outstanding requests and
#: has not replied for this long (microseconds).
FAULT_SUSPICION_TIMEOUT_US = 500.0

#: Failure detector check period, in microseconds.
FAULT_DETECTOR_INTERVAL_US = 100.0

#: How long a suspected server stays blacklisted before a probationary
#: re-admission, in microseconds.
FAULT_PROBATION_US = 1500.0

# --- Evaluation defaults (section 5.1) -----------------------------------------

#: Number of worker threads in the paper's full-size experiments.
DEFAULT_NUM_WORKERS = 14

#: The paper's slowdown SLO: p99.9 slowdown of 50x the service time.
SLOWDOWN_SLO = 50.0

#: Percentile used for the tail throughout the evaluation.
TAIL_PERCENTILE = 99.9

#: Default JBSQ bound (section 3.2: "we found k = 2 to be sufficient").
DEFAULT_JBSQ_DEPTH = 2
