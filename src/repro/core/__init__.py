"""The paper's contribution: the Concord scheduling runtime and baselines.

The package builds an event-driven model of a single-server dataplane OS in
the style of Shinjuku/Persephone (one dispatcher thread + n worker threads,
section 2.1) and layers Concord's three mechanisms on top:

* compiler-enforced cooperation (section 3.1) — cache-line preemption
  signals with instrumentation-derived notice latency;
* JBSQ(k) bounded per-worker queues (section 3.2);
* the work-conserving dispatcher (section 3.3).

Configuration presets in :mod:`repro.core.presets` reconstruct Concord,
Shinjuku, Persephone-FCFS, and the ablation variants of Figs. 11/12.
"""

from repro.core.request import Request
from repro.core.policies import FCFSPolicy, SRPTPolicy, make_policy
from repro.core.preemption import (
    CacheLineCooperation,
    NoPreemption,
    PostedIPI,
    LinuxIPI,
    RdtscSelfPreemption,
    UserIPI,
)
from repro.core.config import RuntimeConfig, SafetyModel
from repro.core.presets import (
    concord,
    concord_no_steal,
    coop_jbsq,
    coop_single_queue,
    ideal_single_queue,
    persephone_fcfs,
    shinjuku,
)
from repro.core.server import Server, SimResult
from repro.core.logicalqueue import LogicalQueueServer, logical_queue_concord
from repro.core.replicated import ReplicatedServer
from repro.core.api import Application, SyntheticApp

__all__ = [
    "Request",
    "FCFSPolicy",
    "SRPTPolicy",
    "make_policy",
    "CacheLineCooperation",
    "NoPreemption",
    "PostedIPI",
    "LinuxIPI",
    "RdtscSelfPreemption",
    "UserIPI",
    "RuntimeConfig",
    "SafetyModel",
    "concord",
    "concord_no_steal",
    "coop_jbsq",
    "coop_single_queue",
    "ideal_single_queue",
    "persephone_fcfs",
    "shinjuku",
    "Server",
    "SimResult",
    "LogicalQueueServer",
    "logical_queue_concord",
    "ReplicatedServer",
    "Application",
    "SyntheticApp",
]
