"""Concord's application-facing API (section 4.1).

The paper's runtime exposes exactly three callbacks::

    setup()                         # global application state
    setup_worker(core_num)          # per-worker state
    handle_request(request) -> response

:class:`Application` mirrors that contract.  In this reproduction the
simulation derives *timing* from the workload model, while applications
still *execute* functionally — e.g. the LevelDB app in
:mod:`repro.kvstore.app` runs real GET/PUT/SCAN operations against a real
store.  An application may also refine timing via :meth:`service_time_us`.
"""

__all__ = ["Application", "SyntheticApp"]


class Application:
    """Base class for applications served by the simulated runtime."""

    def setup(self):
        """Initialize global application state (called once)."""

    def setup_worker(self, core_num):
        """Initialize per-worker state (called once per worker thread)."""

    def handle_request(self, request):
        """Process a single request and return the response payload.

        A request is only processed by a single thread at any point in
        time, though preemption may spread its execution across threads.
        """
        raise NotImplementedError

    def service_time_us(self, kind, sampled_us, rng):
        """Optionally refine the workload's sampled service time for a
        request of ``kind``.  The default trusts the workload model."""
        return sampled_us


class SyntheticApp(Application):
    """The paper's synthetic server: spins for the time each request asks
    for (section 5.1).  ``handle_request`` just echoes the payload, since
    spinning is what the simulator's timing model represents."""

    def __init__(self):
        self.requests_handled = 0
        self.workers_seen = set()

    def setup(self):
        self.requests_handled = 0

    def setup_worker(self, core_num):
        self.workers_seen.add(core_num)

    def handle_request(self, request):
        self.requests_handled += 1
        return {"rid": getattr(request, "rid", None), "status": "ok"}
