"""Runtime configuration: which queueing/preemption/safety combination a
simulated server runs.

Presets for the paper's systems live in :mod:`repro.core.presets`; this
module holds the configuration schema and the safety-first preemption models
of section 3.1.
"""

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import constants

__all__ = [
    "RuntimeConfig",
    "SafetyModel",
    "NoSafety",
    "ApiWindowSafety",
    "LockCounterSafety",
]


class SafetyModel:
    """How the runtime avoids preempting inside unsafe regions.

    ``defer_cycles(kind, clock, rng, elapsed_cycles)`` returns extra delay
    between the preemption signal landing and the worker actually yielding,
    caused by the worker sitting inside a no-preempt region.
    ``elapsed_cycles`` is how long the request has been executing on the
    worker when the signal lands.
    """

    def defer_cycles(self, kind, clock, rng, elapsed_cycles=0):
        raise NotImplementedError


class NoSafety(SafetyModel):
    """No unsafe regions (pure synthetic spin loops)."""

    def defer_cycles(self, kind, clock, rng, elapsed_cycles=0):
        return 0


class ApiWindowSafety(SafetyModel):
    """Shinjuku's approach for LevelDB: preemption disabled for the duration
    of *entire* API calls (section 3.1).

    A signal landing inside the request's *first* call is deferred until
    that call returns (``window - elapsed``); once past the first call the
    worker is somewhere inside a later call, so the deferral is uniform
    over the call length.  ``windows_us`` maps request kind -> API-call
    length in µs.
    """

    def __init__(self, windows_us, default_us=0.0):
        self.windows_us = dict(windows_us)
        self.default_us = float(default_us)

    def defer_cycles(self, kind, clock, rng, elapsed_cycles=0):
        window_us = self.windows_us.get(kind, self.default_us)
        if window_us <= 0:
            return 0
        window = clock.us_to_cycles(window_us)
        if elapsed_cycles < window:
            # Still inside the request's first API call: the paper's 100us
            # GET anecdote — no preemption until the call completes.
            return window - int(elapsed_cycles)
        return int(rng.uniform(0.0, window))


class LockCounterSafety(SafetyModel):
    """Concord's approach: a 4-line lock counter in the application defers
    preemption only while a lock is actually held (section 3.1).

    ``critical_us`` maps kind -> critical-section length; ``held_fraction``
    maps kind -> fraction of the request's lifetime spent holding the lock.
    A signal landing inside a critical section (probability
    ``held_fraction``) waits out the remainder of it.
    """

    def __init__(self, critical_us=None, held_fraction=None):
        self.critical_us = dict(critical_us or {})
        self.held_fraction = dict(held_fraction or {})

    def defer_cycles(self, kind, clock, rng, elapsed_cycles=0):
        fraction = self.held_fraction.get(kind, 0.0)
        if fraction <= 0 or rng.random() >= fraction:
            return 0
        crit_us = self.critical_us.get(kind, 0.0)
        if crit_us <= 0:
            return 0
        return int(rng.uniform(0.0, clock.us_to_cycles(crit_us)))


@dataclass
class RuntimeConfig:
    """Complete description of one simulated scheduling runtime.

    Attributes
    ----------
    name:
        Label used in reports ("Concord", "Shinjuku", ...).
    queue_mode:
        ``"sq"`` — pull-based single physical queue (section 2.2.2);
        ``"jbsq"`` — bounded per-worker queues (section 3.2).
    jbsq_depth:
        The k in JBSQ(k); outstanding requests per worker including the one
        in service.  k=1 is equivalent to the single queue.
    policy:
        Central-queue order: "fcfs" or "srpt".
    quantum_us:
        Scheduling quantum; None disables preemption entirely.
    preemption_factory:
        Callable ``machine -> PreemptionMechanism``.  Ignored when
        quantum_us is None.
    work_conserving_dispatcher:
        Concord's section 3.3 mechanism: the dispatcher runs application
        code (rdtsc-instrumented) when it would otherwise idle.
    safety:
        Safety-first preemption model (section 3.1).
    dispatch_cost_scale:
        Multiplier on dispatcher micro-op costs (Persephone's dispatch loop
        is slightly heavier than Shinjuku's).
    rx_cost_cycles:
        Override for the dispatcher's per-request receive cost.  None keeps
        the default (networker sharing the dispatcher's physical core);
        microbenchmarks that inject load in-process (Fig. 3) set a small
        value.
    ideal:
        When True, all mechanism/dispatcher costs are zero — the pure
        queueing-theory mode used by Fig. 5.
    """

    name: str
    queue_mode: str = "sq"
    jbsq_depth: int = constants.DEFAULT_JBSQ_DEPTH
    policy: str = "fcfs"
    quantum_us: Optional[float] = None
    preemption_factory: Optional[Callable] = None
    work_conserving_dispatcher: bool = False
    safety: SafetyModel = field(default_factory=NoSafety)
    dispatch_cost_scale: float = 1.0
    rx_cost_cycles: Optional[int] = None
    #: Section 3.1: with global visibility the dispatcher can "prioritize
    #: scheduling preempted requests back on to the core they were last
    #: processed by".  In JBSQ mode, a preempted request is pushed to its
    #: previous worker when that worker has a slot.
    locality_aware: bool = False
    ideal: bool = False

    def __post_init__(self):
        if self.queue_mode not in ("sq", "jbsq"):
            raise ValueError("queue_mode must be 'sq' or 'jbsq', got {!r}".format(
                self.queue_mode))
        if self.jbsq_depth < 1:
            raise ValueError("jbsq_depth must be >= 1, got {}".format(self.jbsq_depth))
        if self.quantum_us is not None and self.quantum_us <= 0:
            raise ValueError("quantum must be positive, got {}".format(self.quantum_us))
        if self.quantum_us is not None and self.preemption_factory is None:
            raise ValueError(
                "{}: a quantum was set but no preemption mechanism given".format(
                    self.name))

    @property
    def preemptive(self):
        return self.quantum_us is not None

    def replace(self, **changes):
        """A copy of this config with ``changes`` applied."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)
