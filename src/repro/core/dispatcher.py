"""The dispatcher thread.

One dedicated thread maintains the single physical queue (section 2.1).  It
is modelled as a serial resource executing micro-operations in priority
order: deliver due preemption signals, pull preempted contexts back onto the
central queue, receive new packets, dispatch to workers, and — for Concord —
steal application work when everything else is quiet and all per-worker
queues are full (section 3.3).

Because actions serialize, dispatcher saturation (the Fixed(1) bottleneck of
Fig. 8) and late preemption signals under load ("the dispatcher sends
preemption notifications late when busy", section 3) both emerge without
special-casing.
"""

import math
from collections import deque

from repro import constants

__all__ = ["Dispatcher"]


class Dispatcher:
    """The dispatcher agent; see module docstring."""

    def __init__(self, sim, server):
        self.sim = sim
        self.server = server
        self.rx = deque()
        self.preempts = deque()
        self.requeues = deque()
        # All workers start idle; in single-queue mode they are born ready.
        self.ready_workers = deque(
            server.workers if server.queue_mode == "sq" else ()
        )
        self._in_action = False
        #: Bumped by the fault injector when this server crashes; the
        #: pending action-finish event captures the epoch it was scheduled
        #: under and goes stale on mismatch (same trick as worker epochs).
        self.crash_epoch = 0
        #: The request riding the current micro-action (rx/requeue/push),
        #: so a crash sweep can account it as lost.
        self._action_request = None
        self.busy_cycles = 0
        self.actions_run = 0
        self.signals_sent = 0
        self.stale_signals_skipped = 0
        # Work-conserving state (section 3.3): at most one stolen request at
        # a time; its context lives in a dedicated buffer between slices and
        # can never migrate to a worker (different instrumentation).
        self.steal_buffer = None
        self._steal = None
        self._steal_stop_pending = False
        self.steals_started = 0
        self.steal_completions = 0
        self.steal_busy_cycles = 0

    # -- stimuli ------------------------------------------------------------------

    def on_arrival(self, request):
        """A packet reached the NIC ring."""
        self.rx.append(request)
        self._wake()

    def enqueue_preempt(self, worker, epoch):
        """A worker's scheduling quantum expired (timer event)."""
        self.preempts.append((worker, epoch))
        self._wake()

    def enqueue_requeue(self, request):
        """A worker yielded ``request``; pull it back to the central queue."""
        self.requeues.append(request)
        self._wake()

    def worker_became_idle(self, worker):
        if self.server.queue_mode == "sq":
            # The dispatcher only notices the worker's "done" flag on its
            # next poll round over all n workers (section 2.2.2: with short
            # requests "multiple workers finish while the dispatcher is
            # busy sending a request to another worker").
            delay = self.server.poll_discovery_delay()
            if delay > 0:
                self.sim.post(
                    delay, lambda: self._register_ready(worker), "flag-poll"
                )
                return
            self.ready_workers.append(worker)
        self._wake()

    def _register_ready(self, worker):
        self.ready_workers.append(worker)
        self._wake()

    def worker_slot_freed(self, worker):
        self._wake()

    # -- the action loop --------------------------------------------------------------

    def _wake(self):
        if self._in_action:
            return
        if self._steal is not None:
            self._interrupt_steal()
            return
        self._next()

    def _run_action(self, cost, on_done, name):
        self._in_action = True
        self.busy_cycles += cost
        self.actions_run += 1
        probes = self.server.probes
        if probes is not None:
            probes.dispatcher_action(self.sim.now, name, cost)

        epoch = self.crash_epoch

        def finish():
            if self.crash_epoch != epoch:
                return  # the server crashed mid-action; the sweep took over
            self._in_action = False
            self._action_request = None
            on_done()
            self._next()

        self.sim.post(cost, finish, name)

    def _next(self):
        if self._in_action or self._steal is not None:
            return
        faults = self.server.faults
        if faults is not None and faults.down:
            return  # crashed: the dispatcher core is dark until recovery
        costs = self.server.costs

        # 1. Preemption signals: skip stale entries (the worker already
        # finished or yielded; the dispatcher sees that in the shared state
        # before paying for a signal).
        while self.preempts:
            worker, epoch = self.preempts.popleft()
            if worker.epoch != epoch or worker.current is None:
                self.stale_signals_skipped += 1
                continue
            self.signals_sent += 1
            self._run_action(
                costs.signal,
                lambda w=worker, e=epoch: self._deliver_signal(w, e),
                "d-signal",
            )
            return

        # 2. Preempted contexts returning to the central queue.
        if self.requeues:
            request = self.requeues.popleft()
            self._action_request = request
            self._run_action(
                costs.requeue,
                lambda r=request: self._push_preempted(r),
                "d-requeue",
            )
            return

        # 3. New packets.
        if self.rx:
            request = self.rx.popleft()
            self._action_request = request
            self._run_action(
                costs.rx,
                lambda r=request: self._push_new(r),
                "d-rx",
            )
            return

        # 4. Dispatch to a worker.
        if len(self.server.policy):
            target = self._pick_worker(self.server.policy.peek())
            if target is not None:
                request = self.server.policy.pop()
                cost = costs.push + costs.jbsq_scan
                self._action_request = request
                self._run_action(
                    cost,
                    lambda r=request, w=target: self._complete_dispatch(r, w),
                    "d-push",
                )
                return

        # 5. Work conservation (Concord only).
        if self.server.config.work_conserving_dispatcher:
            self._begin_steal()

    # -- dispatch ---------------------------------------------------------------------

    def _pick_worker(self, request=None):
        if self.server.queue_mode == "sq":
            while self.ready_workers:
                worker = self.ready_workers.popleft()
                if worker.is_idle:
                    return worker
            return None
        depth = self.server.config.jbsq_depth
        # Locality-aware placement (section 3.1): send a preempted request
        # back to the core whose caches still hold its state, if it has a
        # free slot.
        if (
            self.server.config.locality_aware
            and request is not None
            and request.last_worker is not None
        ):
            previous = self.server.workers[request.last_worker]
            if previous.outstanding < depth:
                return previous
        best = None
        best_outstanding = depth
        for worker in self.server.workers:
            outstanding = worker.outstanding
            if outstanding < best_outstanding:
                best = worker
                best_outstanding = outstanding
        return best

    def _push_new(self, request):
        self.server.policy.push_new(request)
        probes = self.server.probes
        if probes is not None:
            probes.request_enqueued(self.sim.now, request)

    def _push_preempted(self, request):
        self.server.policy.push_preempted(request)
        probes = self.server.probes
        if probes is not None:
            probes.request_enqueued(self.sim.now, request, requeued=True)

    def _complete_dispatch(self, request, worker):
        probes = self.server.probes
        if probes is not None:
            probes.request_dispatched(self.sim.now, request, worker.wid)
        ready_at = self.sim.now + self.server.costs.sq_receive
        worker.enqueue(request, ready_at)

    def _deliver_signal(self, worker, epoch):
        """The cache-line write / IPI just completed; the worker reacts after
        the mechanism's notice latency plus any safety deferral."""
        mech = self.server.mechanism
        delay = mech.notice_delay_cycles(self.server.rng_notice)
        if worker.current is not None:
            elapsed = max(0, self.sim.now - (worker.run_start or self.sim.now))
            delay += self.server.defer_cycles(worker.current.kind, elapsed)
        self.sim.post(
            int(delay), lambda: worker.on_preempt_signal(epoch), "notice"
        )

    # -- work conservation (section 3.3) --------------------------------------------------

    def _begin_steal(self):
        request = self.steal_buffer
        if request is None:
            request = self.server.policy.steal_nonstarted()
            if request is None:
                return
            self.steals_started += 1
        self.steal_buffer = None
        request.started_by_dispatcher = True
        now = self.sim.now
        if request.first_dispatch_cycle is None:
            request.first_dispatch_cycle = now

        costs = self.server.costs
        rate = self.server.dispatcher_rate
        exec_start = now + costs.context_switch
        need = int(math.ceil(request.remaining_cycles * rate))
        quantum = self.server.quantum_cycles or need
        slice_len = min(need, quantum)
        completes = slice_len >= need
        end_event = self.sim.at(
            exec_start + slice_len,
            lambda: self._finish_slice(),
            "d-steal-end",
        )
        self._steal = {
            "request": request,
            "exec_start": exec_start,
            "end_event": end_event,
            "completes": completes,
        }
        probes = self.server.probes
        if probes is not None:
            probes.steal_started(now, request, exec_start, completes)

    def _account_steal(self, st, stop_time):
        """Charge the slice [entry switch + execution] to the dispatcher."""
        spent = stop_time - (st["exec_start"] - self.server.costs.context_switch)
        self.busy_cycles += spent
        self.steal_busy_cycles += spent

    def _finish_slice(self):
        st = self._steal
        if st is None:
            return  # the crash sweep already reclaimed the slice
        self._steal = None
        self._steal_stop_pending = False
        now = self.sim.now
        self._account_steal(st, now)
        request = st["request"]
        if st["completes"]:
            request.remaining_cycles = 0
            request.completion_cycle = now
            self.steal_completions += 1
            self.server.record_completion(request)
        else:
            executed = int((now - st["exec_start"]) // self.server.dispatcher_rate)
            executed = max(0, min(executed, request.remaining_cycles - 1))
            request.remaining_cycles -= executed
            self.steal_buffer = request
        self._next()

    def _interrupt_steal(self):
        """A new stimulus arrived mid-slice: the dispatcher's rdtsc probes
        notice it within a probe gap and it self-preempts (section 3.3)."""
        if self._steal_stop_pending:
            return
        st = self._steal
        gap = self.server.rng_notice.uniform(
            0.0, constants.PROBE_INTERVAL_CYCLES
        )
        stop_at = self.sim.now + int(gap) + self.server.costs.context_switch
        if st["end_event"].time <= stop_at:
            # The slice ends before we could stop it; let it finish.
            return
        self._steal_stop_pending = True
        st["end_event"].cancel()
        self.sim.post_at(stop_at, self._pause_steal, "d-steal-pause")

    def _pause_steal(self):
        st = self._steal
        if st is None:
            return  # the crash sweep already reclaimed the slice
        self._steal = None
        self._steal_stop_pending = False
        now = self.sim.now
        self._account_steal(st, now)
        request = st["request"]
        exec_time = now - self.server.costs.context_switch - st["exec_start"]
        executed = int(exec_time // self.server.dispatcher_rate)
        executed = max(0, min(executed, request.remaining_cycles - 1))
        request.remaining_cycles -= executed
        self.steal_buffer = request
        probes = self.server.probes
        if probes is not None:
            probes.steal_paused(now, request)
        self._next()

    # -- introspection ----------------------------------------------------------------------

    def utilization(self, elapsed):
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def __repr__(self):
        return "Dispatcher(rx={}, queue={}, stealing={})".format(
            len(self.rx), len(self.server.policy), self._steal is not None
        )
