"""A single-*logical*-queue runtime (section 6, "How Concord extends to
single-logical-queue systems").

Shenango/Caladan-style design: there is no dedicated dispatcher.  The NIC
sprays arrivals across per-worker queues (RSS); idle workers *steal* from
the longest peer queue; and a dedicated scheduler hyperthread — which some
systems already have — monitors elapsed quanta and delivers Concord's
cache-line preemption signals.  Because no thread owns a global queue, the
dispatcher bottleneck of the single-physical-queue design disappears, at
the price of imperfect load balancing.

The module reuses the same request/mechanism/metrics machinery as
:mod:`repro.core.server`, and returns the same :class:`SimResult` shape so
sweeps and experiments work unchanged.
"""

import math
from collections import deque

from repro import constants
from repro.core.preemption import NoPreemption
from repro.core.request import Request
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

__all__ = ["LogicalQueueServer", "logical_queue_concord"]

#: Cycles for one steal: probing a peer's queue and moving an entry across
#: cores — two coherence misses, like the single-queue handoff.
STEAL_CYCLES = constants.SQ_HANDOFF_CYCLES

#: Cycles for a failed steal probe (peer queue observed empty).
STEAL_PROBE_CYCLES = 120

#: Cycles for the scheduler hyperthread to process one quantum check.
SCHEDULER_CHECK_CYCLES = 40


def logical_queue_concord(quantum_us=5.0, safety=None, profile=None):
    """Concord's mechanisms on a single logical queue: cache-line
    cooperation driven by a scheduler hyperthread, work stealing for load
    balance, no dispatcher."""
    from repro.core.config import RuntimeConfig
    from repro.core.presets import CooperationFactory

    return RuntimeConfig(
        name="Concord-logical",
        queue_mode="jbsq",  # unused by this runtime; kept valid
        quantum_us=quantum_us,
        preemption_factory=CooperationFactory(profile=profile),
        safety=safety or _no_safety(),
    )


def _no_safety():
    from repro.core.config import NoSafety

    return NoSafety()


class _LqWorker:
    """A worker with its own queue that steals when idle."""

    __slots__ = (
        "server", "sim", "wid", "queue", "current", "epoch", "run_start",
        "idle_since", "idle_cycles", "busy_cycles", "work_cycles",
        "preemptions_taken", "steals", "failed_steal_rounds",
        "requests_completed", "wasted_signals", "_yielding",
    )

    def __init__(self, sim, wid, server):
        self.sim = sim
        self.wid = wid
        self.server = server
        self.queue = deque()
        self.current = None
        self.epoch = 0
        self.run_start = None
        self.idle_since = 0
        self.idle_cycles = 0
        self.busy_cycles = 0
        self.work_cycles = 0
        self.preemptions_taken = 0
        self.steals = 0
        self.failed_steal_rounds = 0
        self.requests_completed = 0
        self.wasted_signals = 0
        self._yielding = False

    @property
    def is_idle(self):
        return self.current is None and not self._yielding

    def enqueue(self, request):
        """NIC spraying or a peer's requeue lands work here."""
        self.queue.append(request)
        if self.current is None and not self._yielding:
            self._start_next(self.sim.now)

    def _take_work(self, now):
        """Local pop, else steal from the longest peer queue."""
        if self.queue:
            return self.queue.popleft(), 0
        victim = None
        longest = 0
        for peer in self.server.workers:
            if peer is self:
                continue
            if len(peer.queue) > longest:
                victim = peer
                longest = len(peer.queue)
        if victim is not None:
            self.steals += 1
            return victim.queue.popleft(), STEAL_CYCLES
        self.failed_steal_rounds += 1
        return None, STEAL_PROBE_CYCLES * (len(self.server.workers) - 1)

    def _start_next(self, at):
        request, extra = self._take_work(at)
        if request is None:
            # Nothing anywhere: stay idle (re-woken by the next enqueue);
            # the failed probe round is busy time, not idle.
            self.busy_cycles += extra
            return
        if self.idle_since is not None:
            self.idle_cycles += max(0, at - self.idle_since)
            self.idle_since = None
        costs = self.server
        switch = costs.context_switch
        self.busy_cycles += switch + extra
        run_start = at + switch + extra
        self.epoch += 1
        epoch = self.epoch
        self.current = request
        self.run_start = run_start
        if request.first_dispatch_cycle is None:
            request.first_dispatch_cycle = at
        request.last_worker = self.wid

        duration = int(math.ceil(request.remaining_cycles * costs.worker_rate))
        completion_at = run_start + duration
        self.sim.post_at(completion_at, lambda: self._on_complete(epoch), "lq-done")

        quantum = costs.quantum_cycles
        if quantum is not None and completion_at > run_start + quantum:
            self.sim.post_at(
                run_start + quantum,
                lambda: costs.scheduler.enqueue_check(self, epoch),
                "lq-quantum",
            )

    def _on_complete(self, epoch):
        if epoch != self.epoch or self.current is None:
            return
        request = self.current
        now = self.sim.now
        self.busy_cycles += now - self.run_start
        self.work_cycles += request.remaining_cycles
        request.remaining_cycles = 0
        request.completion_cycle = now
        self.requests_completed += 1
        self.current = None
        self.epoch += 1
        self.server.record_completion(request)
        self._after(now)

    def on_preempt_signal(self, epoch):
        if epoch != self.epoch or self.current is None:
            self.wasted_signals += 1
            return
        now = self.sim.now
        request = self.current
        executed = int((now - self.run_start) // self.server.worker_rate)
        executed = max(0, min(executed, request.remaining_cycles - 1))
        request.remaining_cycles -= executed
        self.work_cycles += executed
        request.preemptions += 1
        self.preemptions_taken += 1
        self.busy_cycles += (now - self.run_start) + self.server.disruption
        self.current = None
        self.epoch += 1
        self._yielding = True
        # Locality-preserving: the preempted request rejoins this worker's
        # own queue tail (section 3.1's locality discussion).
        self.queue.append(request)
        self.sim.post(
            self.server.disruption + self.server.context_switch,
            lambda: self._after(self.sim.now),
            "lq-yielded",
        )

    def _after(self, now):
        self._yielding = False
        if self.current is None:
            self._start_next(now)
            if self.current is None:
                self.idle_since = now


class _Scheduler:
    """The dedicated scheduler hyperthread: a serial resource that turns
    quantum expiries into cache-line writes (section 6)."""

    def __init__(self, sim, server):
        self.sim = sim
        self.server = server
        self.pending = deque()
        self._in_action = False
        self.busy_cycles = 0
        self.signals_sent = 0
        self.stale_skipped = 0

    def enqueue_check(self, worker, epoch):
        self.pending.append((worker, epoch))
        self._kick()

    def _kick(self):
        if self._in_action:
            return
        while self.pending:
            worker, epoch = self.pending.popleft()
            if worker.epoch != epoch or worker.current is None:
                self.stale_skipped += 1
                continue
            cost = SCHEDULER_CHECK_CYCLES + self.server.signal_cost
            self._in_action = True
            self.busy_cycles += cost
            self.signals_sent += 1

            def fire(w=worker, e=epoch):
                self._in_action = False
                delay = self.server.mechanism.notice_delay_cycles(
                    self.server.rng_notice
                )
                if w.current is not None:
                    elapsed = max(0, self.sim.now - (w.run_start or 0))
                    delay += self.server.defer_cycles(w.current.kind, elapsed)
                self.sim.post(
                    int(delay), lambda: w.on_preempt_signal(e), "lq-notice"
                )
                self._kick()

            self.sim.post(cost, fire, "lq-signal")
            return


class LogicalQueueServer:
    """Single-logical-queue server: spray + steal + scheduler hyperthread.

    API-compatible with :class:`repro.core.server.Server` for ``run`` and
    the result object.
    """

    def __init__(self, machine, config, seed=0, profile=None):
        self.machine = machine
        self.config = config
        self.clock = machine.clock
        self.sim = Simulator()
        streams = RngStreams(seed)
        self.rng_arrival = streams.stream("arrivals")
        self.rng_service = streams.stream("service")
        self.rng_notice = streams.stream("notice")
        self.rng_defer = streams.stream("defer")
        self.rng_spray = streams.stream("spray")

        if config.preemptive:
            self.mechanism = config.preemption_factory(machine)
        else:
            self.mechanism = NoPreemption()
        if profile is not None:
            self.mechanism.attach_profile(profile)

        self.worker_rate = (
            1.0
            + constants.RUNTIME_PROC_OVERHEAD_FRACTION
            + self.mechanism.proc_overhead
        )
        self.quantum_cycles = (
            self.clock.us_to_cycles(config.quantum_us)
            if config.preemptive else None
        )
        self.context_switch = self.mechanism.context_switch_cycles
        self.disruption = self.mechanism.worker_disruption_cycles
        self.signal_cost = self.mechanism.dispatcher_signal_cycles

        self.workers = [
            _LqWorker(self.sim, wid, self)
            for wid in range(machine.num_workers)
        ]
        self.scheduler = _Scheduler(self.sim, self)
        self.completed = []
        self._ran = False
        self._spray_next = 0

    # shared hooks (same names the figure code uses) -------------------------------

    def defer_cycles(self, kind, elapsed_cycles=0):
        return self.config.safety.defer_cycles(
            kind, self.clock, self.rng_defer, elapsed_cycles
        )

    def record_completion(self, request):
        self.completed.append(request)

    @property
    def dispatcher(self):
        raise AttributeError(
            "LogicalQueueServer has no dispatcher; that is the point"
        )

    def run(self, workload, arrival, num_requests, until_us=None,
            max_events=60_000_000):
        if self._ran:
            raise RuntimeError("single-shot server; build a new one")
        self._ran = True
        if num_requests < 1:
            raise ValueError("need at least one request")
        state = {"count": 0, "t_us": 0.0, "first": None, "last": None}

        def fire_arrival():
            cycle = self.sim.now
            if state["first"] is None:
                state["first"] = cycle
            state["last"] = cycle
            kind, service_us = workload.sample_class(self.rng_service)
            request = Request(
                rid=state["count"],
                kind=kind,
                arrival_cycle=cycle,
                service_cycles=max(1, self.clock.us_to_cycles(service_us)),
                service_us=service_us,
            )
            state["count"] += 1
            # RSS-style spraying: uniform choice over workers.
            target = self.workers[self.rng_spray.randrange(len(self.workers))]
            target.enqueue(request)
            if state["count"] < num_requests:
                schedule_next()

        def schedule_next():
            state["t_us"] += arrival.next_gap_us(self.rng_arrival)
            cycle = self.clock.us_to_cycles(state["t_us"])
            self.sim.post_at(max(cycle, self.sim.now), fire_arrival, "lq-arrival")

        schedule_next()
        until = self.clock.us_to_cycles(until_us) if until_us is not None else None
        self.sim.run(until=until, max_events=max_events)
        return _LqResult(self, state, until)


class _LqResult:
    """SimResult-shaped result for the logical-queue runtime."""

    def __init__(self, server, state, until):
        from repro.core.server import SimResult

        self.config_name = server.config.name
        self.clock = server.clock
        self.records = server.completed
        self.num_offered = state["count"]
        self.first_arrival_cycle = state["first"] or 0
        self.last_arrival_cycle = state["last"] or 0
        self.end_cycle = server.sim.now
        self.drained = len(self.records) == state["count"]
        self.worker_stats = [
            {
                "wid": w.wid,
                "idle_cycles": w.idle_cycles,
                "busy_cycles": w.busy_cycles,
                "work_cycles": w.work_cycles,
                "preemptions": w.preemptions_taken,
                "completed": w.requests_completed,
                "steals": w.steals,
            }
            for w in server.workers
        ]
        self.dispatcher_stats = {
            "busy_cycles": server.scheduler.busy_cycles,
            "actions": server.scheduler.signals_sent,
            "signals_sent": server.scheduler.signals_sent,
            "stale_signals_skipped": server.scheduler.stale_skipped,
            "steals_started": sum(w.steals for w in server.workers),
            "steal_completions": 0,
            "steal_busy_cycles": 0,
        }
        # Reuse SimResult's derived-metric implementations.
        self.slowdowns = SimResult.slowdowns.__get__(self)
        self.measured_records = SimResult.measured_records.__get__(self)
        self.duration_cycles = SimResult.duration_cycles.__get__(self)
        self.throughput_rps = SimResult.throughput_rps.__get__(self)
        self.worker_idle_fraction = SimResult.worker_idle_fraction.__get__(self)
        self.goodput_fraction = SimResult.goodput_fraction.__get__(self)

    def dispatcher_utilization(self):
        return min(
            1.0, self.dispatcher_stats["busy_cycles"] / self.duration_cycles()
        )

    def stolen_requests(self):
        return []
