"""Central-queue scheduling policies.

The dispatcher has global visibility of all requests (section 3.1), which is
what lets these policies exist at all; single-logical-queue systems cannot
easily implement SRPT because no thread sees every request.

* :class:`FCFSPolicy` — arrival order; preempted requests re-join the tail,
  which combined with a finite quantum approximates Processor Sharing (the
  behaviour of Shinjuku's and Concord's default schedulers).
* :class:`SRPTPolicy` — Shortest Remaining Processing Time, the non-blind
  extension section 3.1 says Concord "can easily be extended to support".
"""

import heapq
import itertools
from collections import deque

__all__ = ["FCFSPolicy", "SRPTPolicy", "make_policy"]


class FCFSPolicy:
    """FIFO central queue; preempted work goes to the back (PS-like)."""

    name = "fcfs"

    def __init__(self):
        self._queue = deque()

    def push_new(self, request):
        """Enqueue a request that just arrived."""
        self._queue.append(request)

    def push_preempted(self, request):
        """Re-enqueue a request the dispatcher pulled back after preemption
        (section 3.1: "The dispatcher re-places the preempted request on the
        main queue")."""
        self._queue.append(request)

    def pop(self):
        """Next request for a worker, or None."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def peek(self):
        """The request pop() would return, without removing it."""
        return self._queue[0] if self._queue else None

    def steal_nonstarted(self):
        """First *non-started* request, for the work-conserving dispatcher
        (section 3.3: "the dispatcher can only pick up non-started requests
        from the central queue")."""
        for i, request in enumerate(self._queue):
            if not request.started:
                del self._queue[i]
                return request
        return None

    def __len__(self):
        return len(self._queue)

    def __bool__(self):
        return bool(self._queue)


class SRPTPolicy:
    """Shortest Remaining Processing Time order."""

    name = "srpt"

    def __init__(self):
        self._heap = []
        self._counter = itertools.count()

    def _push(self, request):
        heapq.heappush(
            self._heap, (request.remaining_cycles, next(self._counter), request)
        )

    def push_new(self, request):
        self._push(request)

    def push_preempted(self, request):
        self._push(request)

    def pop(self):
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def peek(self):
        """The request pop() would return, without removing it."""
        return self._heap[0][2] if self._heap else None

    def steal_nonstarted(self):
        # Scan in priority order without disturbing the heap invariant more
        # than necessary: pop until a non-started request is found, then push
        # the started ones back.
        stash = []
        found = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry[2].started:
                found = entry[2]
                break
            stash.append(entry)
        for entry in stash:
            heapq.heappush(self._heap, entry)
        return found

    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)


_POLICIES = {"fcfs": FCFSPolicy, "srpt": SRPTPolicy}


def make_policy(name):
    """Instantiate a policy by name ('fcfs' or 'srpt')."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise KeyError(
            "unknown policy {!r}; known: {}".format(name, ", ".join(sorted(_POLICIES)))
        ) from None
    return cls()
