"""Preemption mechanisms (sections 2.2.1, 3.1, 5.6).

Each mechanism describes the five quantities the simulation needs:

* whether the *dispatcher* must act to trigger a preemption, and what that
  action costs it (``dispatcher_signal_cycles``);
* how long after the signal the worker actually begins yielding
  (``notice_delay_cycles`` — zero for interrupts, a probe-gap sample for
  compiler instrumentation);
* the cycles the worker burns just *receiving* the notification
  (``worker_disruption_cycles`` — cnotif in Eq. 3);
* the execution-rate tax the mechanism levies on all application code
  (``proc_overhead`` — the instrumentation share of cproc in Eq. 2);
* the context-switch cost once the worker does yield
  (``context_switch_cycles`` — cswitch in Eqs. 3-4).
"""

from repro import constants

__all__ = [
    "PreemptionMechanism",
    "NoPreemption",
    "PostedIPI",
    "LinuxIPI",
    "UserIPI",
    "CacheLineCooperation",
    "RdtscSelfPreemption",
    "HalfNormalNotice",
    "UniformProbeGapNotice",
]


# --- notice-latency models ----------------------------------------------------


class UniformProbeGapNotice:
    """Notice latency for probe-based mechanisms: the signal lands uniformly
    at random within the current inter-probe gap, so the delay until the next
    probe is U(0, gap) with ``gap`` drawn from the application's probe-gap
    distribution (an :class:`~repro.instrument.profile.InstrumentationProfile`
    or anything with ``sample_gap_cycles``)."""

    def __init__(self, profile=None, mean_gap_cycles=constants.PROBE_INTERVAL_CYCLES):
        self.profile = profile
        self.mean_gap_cycles = mean_gap_cycles

    def sample_cycles(self, rng):
        if self.profile is not None:
            gap = self.profile.sample_gap_cycles(rng)
        else:
            gap = self.mean_gap_cycles
        return rng.uniform(0.0, max(gap, 0.0))


class HalfNormalNotice:
    """One-sided Normal notice latency, the abstraction Fig. 5 studies:
    "a one-sided Normal random variable" because "Concord never preempts
    before the quantum" (section 3.1)."""

    def __init__(self, sigma_cycles):
        if sigma_cycles < 0:
            raise ValueError("sigma must be >= 0, got {}".format(sigma_cycles))
        self.sigma_cycles = sigma_cycles

    def sample_cycles(self, rng):
        if self.sigma_cycles == 0:
            return 0.0
        return abs(rng.gauss(0.0, self.sigma_cycles))


class _ZeroNotice:
    """Interrupts are delivered immediately."""

    def sample_cycles(self, rng):
        return 0.0


# --- mechanisms --------------------------------------------------------------


class PreemptionMechanism:
    """Base class; see module docstring for the field meanings."""

    name = "base"
    #: False for self-preempting mechanisms (rdtsc probes) and NoPreemption.
    needs_dispatcher_signal = True
    dispatcher_signal_cycles = 0
    worker_disruption_cycles = 0
    proc_overhead = 0.0
    context_switch_cycles = constants.COOP_CONTEXT_SWITCH_CYCLES

    def __init__(self, notice=None):
        self._notice = notice if notice is not None else _ZeroNotice()

    @property
    def preemptive(self):
        return True

    def notice_delay_cycles(self, rng):
        """Lag between the signal (or quantum expiry, for self-preemption)
        and the worker starting its yield."""
        return self._notice.sample_cycles(rng)

    def attach_profile(self, profile):
        """Point probe-gap-based notice latency at an application's
        instrumentation profile.  No-op for interrupt mechanisms."""
        if isinstance(self._notice, UniformProbeGapNotice):
            self._notice.profile = profile


class NoPreemption(PreemptionMechanism):
    """Run-to-completion: the Persephone-FCFS baseline (section 5.1)."""

    name = "none"
    needs_dispatcher_signal = False

    @property
    def preemptive(self):
        return False

    def notice_delay_cycles(self, rng):
        raise RuntimeError("NoPreemption never delivers a signal")


class PostedIPI(PreemptionMechanism):
    """Shinjuku's posted inter-processor interrupts (section 2.2.1).

    Delivery is precise but receiving one disrupts the worker for ~1200
    cycles, plus pipeline-flush and re-entry costs that Fig. 2's measured
    points (33% at 2 µs, 6% at 10 µs) imply on top.
    """

    name = "posted-ipi"
    dispatcher_signal_cycles = constants.IPI_SEND_CYCLES
    worker_disruption_cycles = (
        constants.IPI_RECEIVE_CYCLES + constants.IPI_EXTRA_DISRUPTION_CYCLES
    )
    context_switch_cycles = constants.PREEMPTIVE_CONTEXT_SWITCH_CYCLES


class LinuxIPI(PostedIPI):
    """Linux's deployable signal-based IPIs: double the receive cost of
    Shinjuku's virtualization-assisted posted IPIs (section 2.2.1)."""

    name = "linux-ipi"
    worker_disruption_cycles = (
        constants.LINUX_IPI_RECEIVE_CYCLES + constants.IPI_EXTRA_DISRUPTION_CYCLES
    )


class UserIPI(PreemptionMechanism):
    """Intel user-space interrupts on Sapphire Rapids (section 5.6).

    Kernel bypass shrinks the receive cost, but delivery still writes
    memory-mapped registers and crosses the same coherence fabric, so the
    cost scales with the machine's coherence model.
    """

    name = "uipi"
    dispatcher_signal_cycles = 150

    def __init__(self, coherence=None):
        super().__init__(notice=_ZeroNotice())
        if coherence is not None:
            self.worker_disruption_cycles = coherence.uipi_receive_cycles
        else:
            self.worker_disruption_cycles = constants.UIPI_RECEIVE_CYCLES
    context_switch_cycles = constants.COOP_CONTEXT_SWITCH_CYCLES


class CacheLineCooperation(PreemptionMechanism):
    """Concord's compiler-enforced cooperation (section 3.1).

    The dispatcher writes a per-worker dedicated cache line (cheap local
    write); the worker's instrumented code notices at its next probe — an L1
    hit for all but the final check, which pays one Read-after-Write miss.
    """

    name = "cacheline"
    dispatcher_signal_cycles = constants.PREEMPT_SIGNAL_WRITE_CYCLES
    context_switch_cycles = constants.COOP_CONTEXT_SWITCH_CYCLES

    def __init__(self, profile=None, coherence=None,
                 proc_overhead=constants.CONCORD_INSTRUMENTATION_OVERHEAD,
                 notice=None):
        if notice is None:
            notice = UniformProbeGapNotice(profile)
        super().__init__(notice=notice)
        self.proc_overhead = (
            profile.overhead_fraction if profile is not None else proc_overhead
        )
        if coherence is not None:
            raw_miss = coherence.probe_miss_cycles
        else:
            raw_miss = constants.CACHELINE_MISS_CYCLES
        #: Raw RaW miss latency — the "1/8th of a Shinjuku IPI" of section 3.1.
        self.raw_miss_cycles = raw_miss
        # The probe's load is an ordinary instruction, so out-of-order
        # execution hides part of the miss; only the exposed fraction is
        # lost execution time.
        self.worker_disruption_cycles = int(
            round(raw_miss * constants.CACHELINE_MISS_EXPOSED_FRACTION)
        )


class RdtscSelfPreemption(PreemptionMechanism):
    """Compiler Interrupts-style rdtsc() polling (section 2.2.1), also used
    by Concord's work-conserving dispatcher to self-preempt (section 3.3).

    No dispatcher involvement: the worker notices the elapsed quantum at its
    next probe.  Probes themselves are expensive (~30 cycles each), which
    shows up as a flat ~21% execution tax.
    """

    name = "rdtsc"
    needs_dispatcher_signal = False
    proc_overhead = constants.RDTSC_INSTRUMENTATION_OVERHEAD
    context_switch_cycles = constants.COOP_CONTEXT_SWITCH_CYCLES

    def __init__(self, profile=None):
        super().__init__(notice=UniformProbeGapNotice(profile))
