"""Configuration presets for the systems the paper evaluates.

* :func:`shinjuku` — single physical queue + posted-IPI preemption (the
  NSDI '19 system, the paper's primary baseline).
* :func:`persephone_fcfs` — single queue, run-to-completion C-FCFS (the
  low-dispersion baseline, section 5.1).
* :func:`concord` — all three mechanisms: compiler-enforced cooperation,
  JBSQ(2), work-conserving dispatcher.
* :func:`coop_single_queue`, :func:`coop_jbsq`, :func:`concord_no_steal` —
  the cumulative ablation variants of Figs. 11 and 12.
* :func:`ideal_single_queue` — the zero-overhead queueing model of Fig. 5.
"""

from dataclasses import dataclass
from typing import Any, Optional

from repro import constants
from repro.core.config import NoSafety, RuntimeConfig
from repro.core.preemption import (
    CacheLineCooperation,
    HalfNormalNotice,
    PostedIPI,
    RdtscSelfPreemption,
    UserIPI,
)

__all__ = [
    "shinjuku",
    "persephone_fcfs",
    "concord",
    "concord_no_steal",
    "coop_single_queue",
    "coop_jbsq",
    "rdtsc_single_queue",
    "uipi_single_queue",
    "ideal_single_queue",
    "PostedIPIFactory",
    "CooperationFactory",
    "RdtscFactory",
    "UserIPIFactory",
    "IdealCooperationFactory",
]


# Preemption factories are small picklable callables (rather than lambdas)
# so whole RuntimeConfigs can cross process boundaries: the parallel sweep
# executor ships (machine, config, workload) jobs to worker processes, and
# the result cache derives stable content hashes from the factory fields.


@dataclass(frozen=True)
class PostedIPIFactory:
    """machine -> PostedIPI (Shinjuku's notification path)."""

    def __call__(self, machine):
        return PostedIPI()


@dataclass(frozen=True)
class CooperationFactory:
    """machine -> CacheLineCooperation with an optional probe profile."""

    profile: Optional[Any] = None

    def __call__(self, machine):
        return CacheLineCooperation(
            profile=self.profile, coherence=machine.coherence
        )


@dataclass(frozen=True)
class RdtscFactory:
    """machine -> RdtscSelfPreemption (Compiler Interrupts style)."""

    def __call__(self, machine):
        return RdtscSelfPreemption()


@dataclass(frozen=True)
class UserIPIFactory:
    """machine -> UserIPI (Sapphire Rapids user-space IPIs)."""

    def __call__(self, machine):
        return UserIPI(coherence=machine.coherence)


@dataclass(frozen=True)
class IdealCooperationFactory:
    """machine -> zero-overhead cooperation lagged by a half-normal notice
    (the pure queueing model of Fig. 5)."""

    notice_sigma_us: float = 0.0

    def __call__(self, machine):
        sigma_cycles = machine.clock.us_to_cycles(self.notice_sigma_us)
        return CacheLineCooperation(
            notice=HalfNormalNotice(sigma_cycles), proc_overhead=0.0
        )


def shinjuku(quantum_us=5.0, safety=None, policy="fcfs"):
    """Shinjuku: dedicated dispatcher, pull-based single queue, preemption
    via posted IPIs (sections 2.2, 5.1)."""
    return RuntimeConfig(
        name="Shinjuku",
        queue_mode="sq",
        quantum_us=quantum_us,
        preemption_factory=PostedIPIFactory(),
        safety=safety or NoSafety(),
        policy=policy,
    )


def persephone_fcfs():
    """Persephone configured as C-FCFS: single queue, no preemption
    (section 5.1, "Persephone-FCFS").  Its dispatch loop is slightly
    heavier than Shinjuku's (it is built to classify requests)."""
    return RuntimeConfig(
        name="Persephone-FCFS",
        queue_mode="sq",
        quantum_us=None,
        dispatch_cost_scale=1.1,
    )


def concord(quantum_us=5.0, jbsq_depth=constants.DEFAULT_JBSQ_DEPTH,
            safety=None, policy="fcfs", profile=None, locality_aware=False):
    """Concord: compiler-enforced cooperation + JBSQ(k) + work-conserving
    dispatcher (section 3).  ``locality_aware`` additionally routes
    preempted requests back to their previous core (section 3.1)."""
    return RuntimeConfig(
        name="Concord",
        queue_mode="jbsq",
        jbsq_depth=jbsq_depth,
        quantum_us=quantum_us,
        preemption_factory=CooperationFactory(profile=profile),
        work_conserving_dispatcher=True,
        safety=safety or NoSafety(),
        policy=policy,
        locality_aware=locality_aware,
    )


def concord_no_steal(quantum_us=5.0, jbsq_depth=constants.DEFAULT_JBSQ_DEPTH,
                     safety=None, profile=None):
    """Concord with the dispatcher's work stealing disabled — the fallback
    section 5.5 offers users who cannot tolerate the low-load slowdown
    bump.  Identical to the Co-op+JBSQ(2) ablation point."""
    config = concord(quantum_us, jbsq_depth, safety=safety, profile=profile)
    return config.replace(
        name="Concord w/o dispatcher work", work_conserving_dispatcher=False
    )


def coop_single_queue(quantum_us=5.0, safety=None, profile=None):
    """Ablation step 1 (Figs. 11/12, "Co-op+SQ"): Shinjuku's single queue
    with IPIs swapped for compiler-enforced cooperation."""
    return RuntimeConfig(
        name="Co-op+SQ",
        queue_mode="sq",
        quantum_us=quantum_us,
        preemption_factory=CooperationFactory(profile=profile),
        safety=safety or NoSafety(),
    )


def coop_jbsq(quantum_us=5.0, jbsq_depth=constants.DEFAULT_JBSQ_DEPTH,
              safety=None, profile=None):
    """Ablation step 2 (Figs. 11/12, "Co-op+JBSQ(2)"): cooperation plus
    bounded per-worker queues, no dispatcher work."""
    config = concord_no_steal(quantum_us, jbsq_depth, safety=safety,
                              profile=profile)
    return config.replace(name="Co-op+JBSQ(2)")


def rdtsc_single_queue(quantum_us=5.0):
    """Compiler Interrupts-style rdtsc() self-preemption on a single queue
    (the 'rdtsc() instrumentation' line of Figs. 2 and 15)."""
    return RuntimeConfig(
        name="rdtsc-instrumentation",
        queue_mode="sq",
        quantum_us=quantum_us,
        preemption_factory=RdtscFactory(),
    )


def uipi_single_queue(quantum_us=5.0):
    """Intel user-space IPIs on a single queue (Fig. 15)."""
    return RuntimeConfig(
        name="User-space IPIs",
        queue_mode="sq",
        quantum_us=quantum_us,
        preemption_factory=UserIPIFactory(),
    )


def ideal_single_queue(quantum_us=None, notice_sigma_us=0.0, name=None):
    """The pure queueing model of Fig. 5: a zero-overhead single queue with
    either no preemption (``quantum_us=None``), precise preemption
    (``notice_sigma_us=0``), or preemption lagged by a one-sided Normal
    with the given standard deviation."""
    if quantum_us is None:
        return RuntimeConfig(
            name=name or "Single Queue (no preemption)",
            queue_mode="sq",
            ideal=True,
        )

    default = "Preemption N({:g},{:g})".format(quantum_us, notice_sigma_us)
    return RuntimeConfig(
        name=name or default,
        queue_mode="sq",
        quantum_us=quantum_us,
        preemption_factory=IdealCooperationFactory(notice_sigma_us),
        ideal=True,
    )
