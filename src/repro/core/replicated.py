"""Multi-dispatcher replication (section 6, "Limitations").

"The single dispatcher can become a bottleneck as the number of CPUs
increases ... In such cases, replication, i.e. creating multiple
single-dispatcher instances that feed disjoint sets of cores, can help
improve scalability."

A :class:`ReplicatedServer` partitions the machine's workers into N
disjoint groups, runs one complete single-dispatcher instance per group,
sprays arrivals across partitions round-robin (as a NIC RSS indirection
table would), and merges the per-partition results.  Each partition is a
full :class:`~repro.core.server.Server`, so every mechanism — JBSQ, safety,
work stealing — works unchanged inside its partition.
"""

from repro.core.server import Server
from repro.workloads.trace import Trace

__all__ = ["ReplicatedServer", "ReplicatedResult"]


class ReplicatedServer:
    """N independent single-dispatcher instances over disjoint workers."""

    def __init__(self, machine, config, num_partitions, seed=0, profile=None):
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        if machine.num_workers % num_partitions:
            raise ValueError(
                "cannot split {} workers into {} equal partitions".format(
                    machine.num_workers, num_partitions
                )
            )
        self.machine = machine
        self.config = config
        self.num_partitions = num_partitions
        workers_each = machine.num_workers // num_partitions
        self.partitions = [
            Server(
                machine.with_workers(workers_each), config,
                seed=seed + 1000 * index, profile=profile,
            )
            for index in range(num_partitions)
        ]
        self._ran = False

    def run(self, workload, arrival, num_requests, until_us=None,
            max_events=60_000_000):
        """Sample one arrival stream, deal it round-robin to partitions,
        replay each partition, and merge."""
        if self._ran:
            raise RuntimeError("single-shot server; build a new one")
        self._ran = True
        rng = self.partitions[0].rng_arrival
        trace = Trace.sample(workload, arrival, num_requests, rng)
        shards = [[] for _ in range(self.num_partitions)]
        for index, record in enumerate(trace):
            shards[index % self.num_partitions].append(record)
        results = []
        for partition, shard in zip(self.partitions, shards):
            if not shard:
                continue
            results.append(
                partition.run_trace(
                    Trace(shard), until_us=until_us, max_events=max_events
                )
            )
        return ReplicatedResult(self, results)


class ReplicatedResult:
    """Merged view over per-partition SimResults (same read interface)."""

    def __init__(self, server, results):
        self.config_name = "{} x{}".format(
            server.config.name, server.num_partitions
        )
        self.partition_results = results
        self.clock = server.machine.clock
        self.records = [r for result in results for r in result.records]
        self.records.sort(key=lambda r: r.completion_cycle)
        self.num_offered = sum(r.num_offered for r in results)
        self.first_arrival_cycle = min(
            r.first_arrival_cycle for r in results
        )
        self.end_cycle = max(r.end_cycle for r in results)
        self.drained = all(r.drained for r in results)
        self.worker_stats = [
            stat for result in results for stat in result.worker_stats
        ]
        self.dispatcher_stats = {
            key: sum(r.dispatcher_stats[key] for r in results)
            for key in results[0].dispatcher_stats
        }

    def slowdowns(self, warmup_frac=0.1):
        ordered = sorted(self.records, key=lambda r: r.arrival_cycle)
        skip = int(len(ordered) * warmup_frac)
        return [r.slowdown() for r in ordered[skip:]]

    def measured_records(self, warmup_frac=0.1):
        ordered = sorted(self.records, key=lambda r: r.arrival_cycle)
        skip = int(len(ordered) * warmup_frac)
        return ordered[skip:]

    def duration_cycles(self):
        return max(1, self.end_cycle - self.first_arrival_cycle)

    def throughput_rps(self):
        return len(self.records) * self.clock.freq_hz / self.duration_cycles()

    def dispatcher_utilization(self):
        """Mean utilization across the replica dispatchers."""
        total = sum(
            r.dispatcher_utilization() for r in self.partition_results
        )
        return total / len(self.partition_results)

    def worker_idle_fraction(self):
        elapsed = self.duration_cycles()
        fractions = [
            min(1.0, s["idle_cycles"] / elapsed) for s in self.worker_stats
        ]
        return sum(fractions) / len(fractions)

    def stolen_requests(self):
        return [r for r in self.records if r.started_by_dispatcher]
