"""Request objects tracked through the simulated server."""

__all__ = ["Request"]


class Request:
    """One in-flight request.

    Work accounting is in *uninstrumented* service cycles: ``service_cycles``
    is the request's intrinsic cost and ``remaining_cycles`` counts down as
    workers execute it.  Instrumentation and runtime overheads stretch the
    wall-clock time a worker spends per unit of work but never change these
    fields, which keeps the slowdown denominator the paper's "un-instrumented
    service time" (section 5.1).
    """

    __slots__ = (
        "rid",
        "kind",
        "arrival_cycle",
        "service_cycles",
        "service_us",
        "remaining_cycles",
        "first_dispatch_cycle",
        "completion_cycle",
        "preemptions",
        "migrations",
        "started_by_dispatcher",
        "last_worker",
        "payload",
    )

    def __init__(self, rid, kind, arrival_cycle, service_cycles, service_us,
                 payload=None):
        if service_cycles <= 0:
            raise ValueError(
                "request {} has non-positive service {}".format(rid, service_cycles)
            )
        self.rid = rid
        self.kind = kind
        self.arrival_cycle = arrival_cycle
        self.service_cycles = service_cycles
        self.service_us = service_us
        self.remaining_cycles = service_cycles
        self.first_dispatch_cycle = None
        self.completion_cycle = None
        self.preemptions = 0
        #: Resumptions on a different worker than the previous slice ran on
        #: (cold caches; locality-aware placement minimizes these).
        self.migrations = 0
        #: Once the work-conserving dispatcher starts a request it must finish
        #: it (section 3.3): the two code versions are instrumented
        #: differently, so contexts cannot migrate.
        self.started_by_dispatcher = False
        self.last_worker = None
        self.payload = payload

    @property
    def started(self):
        return self.first_dispatch_cycle is not None

    @property
    def done(self):
        return self.completion_cycle is not None

    def sojourn_cycles(self):
        """Cycles from arrival to completion (raises if not done)."""
        if self.completion_cycle is None:
            raise ValueError("request {} has not completed".format(self.rid))
        return self.completion_cycle - self.arrival_cycle

    def slowdown(self):
        """Sojourn time over un-instrumented service time (section 5.1)."""
        return self.sojourn_cycles() / self.service_cycles

    def __repr__(self):
        return (
            "Request(rid={}, kind={!r}, service_us={:g}, remaining={}, "
            "preemptions={})".format(
                self.rid, self.kind, self.service_us, self.remaining_cycles,
                self.preemptions,
            )
        )
