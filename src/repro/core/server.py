"""Server assembly: machine + runtime config + workload -> simulation run.

A :class:`Server` wires the dispatcher and workers onto a machine spec,
generates open-loop arrivals, runs the event loop to completion, and returns
a :class:`SimResult` with every completed request plus agent-level counters.
Servers are single-shot: build a fresh one per simulated run (they are cheap).

Arrival generation is a *separable source*: :meth:`Server.run` builds the
default open-loop source and feeds it to :meth:`Server.run_source`, which
accepts any lazily-pulled iterator of ``(arrival_us, request)`` pairs.
External agents (the rack-scale layer in :mod:`repro.cluster`) bypass the
source machinery entirely and push requests in with :meth:`Server.deliver`,
sharing one :class:`~repro.sim.engine.Simulator` across many servers.
"""

from repro import constants
from repro.core.dispatcher import Dispatcher
from repro.core.policies import make_policy
from repro.core.preemption import NoPreemption
from repro.core.request import Request
from repro.core.worker import Worker
from repro.obs.session import resolve_probes
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

__all__ = ["Server", "SimResult", "RunLimitExceeded"]


class RunLimitExceeded(RuntimeError):
    """The event budget ran out before the simulation drained."""


class _Costs:
    """Per-run cycle costs, precomputed from machine + config + mechanism."""

    __slots__ = (
        "context_switch",
        "disruption",
        "jbsq_residual",
        "signal",
        "requeue",
        "rx",
        "push",
        "jbsq_scan",
        "sq_receive",
    )

    def __init__(self, machine, config, mechanism):
        if config.ideal:
            for slot in self.__slots__:
                setattr(self, slot, 0)
            return
        scale = config.dispatch_cost_scale
        jbsq = config.queue_mode == "jbsq"
        self.context_switch = mechanism.context_switch_cycles
        self.disruption = mechanism.worker_disruption_cycles
        self.jbsq_residual = constants.JBSQ_RESIDUAL_CYCLES if jbsq else 0
        self.signal = int(mechanism.dispatcher_signal_cycles * scale)
        self.requeue = int(constants.DISPATCH_REQUEUE_CYCLES * scale)
        rx = (
            config.rx_cost_cycles
            if config.rx_cost_cycles is not None
            else constants.DISPATCH_RX_CYCLES
        )
        self.rx = int(rx * scale)
        self.push = int(constants.DISPATCH_PUSH_CYCLES * scale)
        self.jbsq_scan = constants.JBSQ_SHORTEST_QUEUE_CYCLES if jbsq else 0
        # The worker's receive miss applies whenever a push lands on an
        # *idle* worker — in JBSQ too (this is why JBSQ(1) behaves like the
        # single queue, section 3.2).  Busy JBSQ workers hide it entirely.
        self.sq_receive = constants.SQ_WORKER_RECEIVE_CYCLES


class SimResult:
    """Everything measured during one simulated run."""

    def __init__(self, server, num_offered, first_arrival, last_arrival,
                 end_cycle, drained):
        self.config_name = server.config.name
        self.quantum_us = server.config.quantum_us
        self.clock = server.clock
        self.num_offered = num_offered
        self.first_arrival_cycle = first_arrival
        self.last_arrival_cycle = last_arrival
        self.end_cycle = end_cycle
        self.drained = drained
        #: Completed requests, in completion order.
        self.records = server.completed
        self.worker_stats = [
            {
                "wid": w.wid,
                "idle_cycles": w.idle_cycles,
                "busy_cycles": w.busy_cycles,
                "work_cycles": w.work_cycles,
                "preemptions": w.preemptions_taken,
                "completed": w.requests_completed,
            }
            for w in server.workers
        ]
        d = server.dispatcher
        self.dispatcher_stats = {
            "busy_cycles": d.busy_cycles,
            "actions": d.actions_run,
            "signals_sent": d.signals_sent,
            "stale_signals_skipped": d.stale_signals_skipped,
            "steals_started": d.steals_started,
            "steal_completions": d.steal_completions,
            "steal_busy_cycles": d.steal_busy_cycles,
        }

    # -- derived metrics ------------------------------------------------------------

    def slowdowns(self, warmup_frac=0.1):
        """Per-request slowdowns, discarding the warmup prefix by arrival
        order (section 5.1 discards the first 10% of samples)."""
        return [r.slowdown() for r in self.measured_records(warmup_frac)]

    def measured_records(self, warmup_frac=0.1):
        # Imported lazily: repro.metrics imports the server module (the
        # sweep harness), so a top-level import would be circular.
        from repro.metrics.slowdown import check_warmup_frac

        check_warmup_frac(warmup_frac)
        ordered = sorted(self.records, key=lambda r: r.arrival_cycle)
        skip = int(len(ordered) * warmup_frac)
        return ordered[skip:]

    def client_latencies_us(self, warmup_frac=0.1,
                            rtt_ns=constants.NETWORK_RTT_NS):
        """End-to-end latencies as the paper's client measures them
        (section 5.1): server sojourn plus the network round trip."""
        rtt_us = rtt_ns / 1000.0
        return [
            self.clock.cycles_to_us(r.sojourn_cycles()) + rtt_us
            for r in self.measured_records(warmup_frac)
        ]

    def duration_cycles(self):
        return max(1, self.end_cycle - self.first_arrival_cycle)

    def throughput_rps(self):
        """Completed requests per second of simulated time."""
        return len(self.records) * self.clock.freq_hz / self.duration_cycles()

    def goodput_fraction(self):
        """Fraction of worker capacity spent executing application work —
        the complement of the system throughput overhead of Eq. 1 (worker
        side).  Robust at overload, where completion counts lag because
        PS-style requeueing keeps many requests mid-flight."""
        elapsed = self.duration_cycles()
        if not self.worker_stats:
            return 0.0
        total_work = sum(s["work_cycles"] for s in self.worker_stats)
        return min(1.0, total_work / (len(self.worker_stats) * elapsed))

    def worker_idle_fraction(self):
        """Mean fraction of the run workers spent idle awaiting requests —
        the quantity Fig. 3 plots."""
        elapsed = self.duration_cycles()
        if not self.worker_stats:
            return 0.0
        fractions = [
            min(1.0, s["idle_cycles"] / elapsed) for s in self.worker_stats
        ]
        return sum(fractions) / len(fractions)

    def dispatcher_utilization(self):
        return min(1.0, self.dispatcher_stats["busy_cycles"] / self.duration_cycles())

    def stolen_requests(self):
        return [r for r in self.records if r.started_by_dispatcher]

    def __repr__(self):
        return (
            "SimResult(config={!r}, offered={}, completed={}, drained={})".format(
                self.config_name, self.num_offered, len(self.records), self.drained
            )
        )


class Server:
    """A single simulated server instance (one run)."""

    def __init__(self, machine, config, seed=0, profile=None, app=None,
                 sim=None, streams=None, probes=None):
        self.machine = machine
        self.config = config
        self.clock = machine.clock
        #: The event loop.  Pass a shared ``sim`` to make several servers
        #: coexist in one simulation (the rack-scale layer does this).
        self.sim = sim if sim is not None else Simulator()
        #: Optional application implementing the Concord API (section 4.1).
        #: Its setup hooks run now; its service_time_us refines workload
        #: samples per request.
        self.app = app
        if app is not None:
            app.setup()
            for core in range(machine.num_workers):
                app.setup_worker(core)
        #: Pass ``streams`` (e.g. ``master.spawn_key("server", i)``) to give
        #: each member of a multi-server simulation independent,
        #: reproducibly-derived randomness; ``seed`` is ignored then.
        if streams is None:
            streams = RngStreams(seed)
        self.streams = streams
        self.rng_arrival = streams.stream("arrivals")
        self.rng_service = streams.stream("service")
        self.rng_notice = streams.stream("notice")
        self.rng_defer = streams.stream("defer")

        if config.preemptive:
            self.mechanism = config.preemption_factory(machine)
        else:
            self.mechanism = NoPreemption()
        if profile is not None:
            self.mechanism.attach_profile(profile)

        self.policy = make_policy(config.policy)
        self.costs = _Costs(machine, config, self.mechanism)
        self.queue_mode = config.queue_mode
        self.preemptive = config.preemptive
        self.quantum_cycles = (
            self.clock.us_to_cycles(config.quantum_us) if config.preemptive else None
        )
        if config.ideal:
            self.worker_rate = 1.0
            self.dispatcher_rate = 1.0
        else:
            self.worker_rate = (
                1.0
                + constants.RUNTIME_PROC_OVERHEAD_FRACTION
                + self.mechanism.proc_overhead
            )
            self.dispatcher_rate = (
                1.0
                + constants.RUNTIME_PROC_OVERHEAD_FRACTION
                + constants.RDTSC_INSTRUMENTATION_OVERHEAD
            )

        self.workers = [
            Worker(self.sim, wid, self) for wid in range(machine.num_workers)
        ]
        self.dispatcher = Dispatcher(self.sim, self)
        self.completed = []
        #: Optional callback fired on every completion — the seam the
        #: cluster load balancer uses to observe replies.
        self.on_complete = None
        #: Per-server fault state (:mod:`repro.faults`).  None — the
        #: default, and the only value single-server runs ever see — keeps
        #: every fault hook down to a single falsy check, mirroring
        #: ``probes``.  The rack's FaultInjector installs a
        #: :class:`~repro.faults.injector.ServerFaultState` when a plan
        #: targets this server.
        self.faults = None
        self._ran = False
        self._arrivals = {"count": 0, "first": None, "last": None}
        #: Probe bus (observability layer).  Explicit ``probes`` wins;
        #: otherwise an ambient :func:`repro.obs.session.tracing` session
        #: supplies one; the default None keeps every probe site down to a
        #: single falsy check (the zero-overhead path).
        self.probes = resolve_probes(self, probes)
        if (
            self.probes is not None
            and self.probes.engine_events
            and sim is None
        ):
            # This server owns its simulator: route the raw engine event
            # feed into the bus.  Shared-sim members leave the hookup to
            # their owner (the rack attaches its balancer bus once).
            self.sim.attach_probes(self.probes)

    # -- callbacks used by agents ------------------------------------------------------

    def defer_cycles(self, kind, elapsed_cycles=0):
        """Safety-first preemption deferral for a request of ``kind`` that
        has been executing for ``elapsed_cycles`` on its worker."""
        if self.config.ideal:
            return 0
        return self.config.safety.defer_cycles(
            kind, self.clock, self.rng_defer, elapsed_cycles
        )

    def poll_discovery_delay(self):
        """Latency until the dispatcher's flag-poll loop notices a finished
        single-queue worker: uniform over one poll round across n workers."""
        if self.config.ideal:
            return 0
        span = self.machine.num_workers * constants.DISPATCHER_POLL_CYCLES
        return int(self.rng_notice.uniform(0, span))

    def record_completion(self, request):
        self.completed.append(request)
        probes = self.probes
        if probes is not None:
            probes.request_completed(self.sim.now, request)
        if self.on_complete is not None:
            self.on_complete(request)

    # -- the arrival seam -------------------------------------------------------------------

    def deliver(self, request):
        """Inject an externally-generated ``request`` *now*.

        This is the seam the rack-scale layer (:mod:`repro.cluster`) plugs
        into: the load balancer builds the request, models the network hop,
        and calls ``deliver`` on the chosen server at the delivery instant.
        ``request.arrival_cycle`` is stamped here (unless already set) so
        slowdowns measure the server sojourn, exactly as in the
        single-server runs.
        """
        faults = self.faults
        if faults is not None and faults.down:
            # Crashed: the NIC is dark; the packet evaporates.  The
            # injector accounts the loss so the rack's drain bookkeeping
            # stays exact.
            faults.injector.lost_total += 1
            return
        cycle = self.sim.now
        if request.arrival_cycle is None:
            request.arrival_cycle = cycle
        state = self._arrivals
        if state["first"] is None:
            state["first"] = cycle
        state["last"] = cycle
        state["count"] += 1
        probes = self.probes
        if probes is not None:
            probes.request_arrival(cycle, request)
        self.dispatcher.on_arrival(request)

    @property
    def inflight(self):
        """Requests delivered but not yet completed — the queue-length
        telemetry signal an inter-server balancer observes."""
        n = self._arrivals["count"] - len(self.completed)
        faults = self.faults
        if faults is not None:
            # Requests swept at crash instants never complete; without this
            # the dead server would carry a phantom queue forever.
            n -= faults.lost_inflight
        return n

    @property
    def num_delivered(self):
        """Total arrivals injected so far (any source)."""
        return self._arrivals["count"]

    def build_request(self, rid, workload):
        """Sample one request from ``workload`` using this server's service
        stream (and the application's refinement, if any)."""
        kind, service_us = workload.sample_class(self.rng_service)
        if self.app is not None:
            service_us = self.app.service_time_us(
                kind, service_us, self.rng_service
            )
        return self.request_from_sample(rid, kind, service_us)

    def request_from_sample(self, rid, kind, service_us):
        """Build a not-yet-arrived :class:`Request` from explicit values;
        ``arrival_cycle`` is stamped by :meth:`deliver`."""
        service_cycles = max(1, self.clock.us_to_cycles(service_us))
        return Request(
            rid=rid,
            kind=kind,
            arrival_cycle=None,
            service_cycles=service_cycles,
            service_us=service_us,
        )

    def arrival_source(self, workload, arrival, num_requests):
        """The default open-loop source: lazily yields ``(arrival_us,
        request)`` pairs, drawing gaps from ``arrival`` and classes from
        ``workload``.

        Laziness matters: :meth:`run_source` pulls the next pair only after
        the previous arrival fires, so closed-loop processes (zero gaps,
        paced by completions) keep their semantics.
        """
        t_us = 0.0
        for rid in range(num_requests):
            t_us += arrival.next_gap_us(self.rng_arrival)
            yield t_us, self.build_request(rid, workload)

    # -- running ---------------------------------------------------------------------------

    def run(self, workload, arrival, num_requests, until_us=None,
            max_events=60_000_000):
        """Generate ``num_requests`` open-loop arrivals and run to drain.

        Parameters
        ----------
        workload:
            A distribution with ``sample_class(rng) -> (kind, service_us)``.
        arrival:
            An :class:`~repro.workloads.arrivals.ArrivalProcess`.
        num_requests:
            Total arrivals to inject.
        until_us:
            Optional hard stop (µs of simulated time): the run ends even if
            requests are still in flight — used by saturation measurements.
        max_events:
            Safety valve against runaway simulations.
        """
        if num_requests < 1:
            raise ValueError("need at least one request")
        return self.run_source(
            self.arrival_source(workload, arrival, num_requests),
            expected=num_requests, until_us=until_us, max_events=max_events,
        )

    def run_source(self, source, expected=None, until_us=None,
                   max_events=60_000_000):
        """Drive the server from an injectable arrival source.

        ``source`` is any iterator of ``(arrival_us, request)`` pairs with
        non-decreasing times; it is pulled *lazily* — the next pair is
        requested only after the previous arrival fires, so sources may
        react to simulation state.  ``expected`` is the number of arrivals
        the source will produce (used for the drain check); when None, the
        run counts whatever the source yielded.
        """
        self._claim_run()
        iterator = iter(source)

        def fire(request):
            self.deliver(request)
            schedule_next()

        def schedule_next():
            try:
                t_us, request = next(iterator)
            except StopIteration:
                return
            cycle = self.clock.us_to_cycles(t_us)
            self.sim.post_at(max(cycle, self.sim.now), lambda: fire(request),
                        "arrival")

        schedule_next()
        return self._drain(expected, until_us, max_events)

    def run_trace(self, trace, until_us=None, max_events=60_000_000):
        """Replay a recorded :class:`~repro.workloads.trace.Trace` exactly:
        same arrival instants, kinds, and service times.  Replaying one
        trace against several configurations gives a perfectly paired
        comparison (stronger than common random numbers)."""
        if not len(trace):
            raise ValueError("empty trace")

        def source():
            for rid, record in enumerate(trace):
                yield record.arrival_us, self.request_from_sample(
                    rid, record.kind, record.service_us
                )

        return self.run_source(
            source(), expected=len(trace), until_us=until_us,
            max_events=max_events,
        )

    def collect_result(self, drained=None, num_offered=None):
        """Build a :class:`SimResult` from the server's current state.

        The single-server paths call this through :meth:`_drain`; in a
        multi-server simulation the rack runs the shared event loop itself
        and calls ``collect_result`` on each member afterwards.
        """
        state = self._arrivals
        if num_offered is None:
            num_offered = state["count"]
        if drained is None:
            drained = len(self.completed) == state["count"]
        if self.probes is not None:
            self.probes.finalize_run(self)
        return SimResult(
            server=self,
            num_offered=num_offered,
            first_arrival=state["first"] or 0,
            last_arrival=state["last"] or 0,
            end_cycle=self.sim.now,
            drained=drained,
        )

    def _claim_run(self):
        if self._ran:
            raise RuntimeError("Server instances are single-shot; build a new one")
        self._ran = True

    def _drain(self, expected, until_us, max_events):
        until = self.clock.us_to_cycles(until_us) if until_us is not None else None
        self.sim.run(until=until, max_events=max_events)
        if expected is None:
            expected = self._arrivals["count"]
        drained = len(self.completed) == expected
        if not drained and until is None:
            if self.sim.pending:
                raise RunLimitExceeded(
                    "{}: {} events were not enough to drain {} requests "
                    "({} completed)".format(
                        self.config.name, max_events, expected,
                        len(self.completed),
                    )
                )
        return self.collect_result(drained=drained)


def capacity_estimate_rps(machine, workload, overhead_fraction=0.05):
    """Back-of-envelope maximum throughput: worker cycles divided by mean
    per-request work, derated by ``overhead_fraction``.  Used by experiments
    to place load-sweep grids."""
    mean_cycles = machine.clock.us_to_cycles(workload.mean_us())
    raw = machine.num_workers * machine.clock.freq_hz / max(1, mean_cycles)
    return raw * (1.0 - overhead_fraction)
