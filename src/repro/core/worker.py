"""Worker threads.

A worker is pinned to a dedicated core (section 2.1).  It executes one
request at a time from its local queue (depth 1 in single-queue mode, k in
JBSQ(k) mode), yields cooperatively or takes interrupts depending on the
configured preemption mechanism, and tracks its idle time so Fig. 3-style
stall accounting falls out directly.

Timing model
------------
Work is accounted in *uninstrumented* cycles.  A worker executing a request
advances it at rate ``1 / rate`` where ``rate = 1 + proc_overhead`` stretches
wall-clock time by runtime bookkeeping plus the preemption mechanism's
instrumentation tax (cproc in Eq. 2).  Each (re)start pays a context switch;
each preemption pays the mechanism's notification disruption (cnotif).
"""

import math
from collections import deque

__all__ = ["Worker"]


class Worker:
    """One simulated worker thread."""

    def __init__(self, sim, wid, server):
        self.sim = sim
        self.wid = wid
        self.server = server
        self.local = deque()
        self.current = None
        #: Monotonic counter identifying the current execution; preemption
        #: signals carry the epoch they were aimed at so stale signals
        #: (request already finished or yielded) are recognised and dropped.
        self.epoch = 0
        self.run_start = None
        #: Start of the current idle interval, or None while busy.
        self.idle_since = 0
        self.idle_cycles = 0
        self.busy_cycles = 0
        #: Uninstrumented service cycles actually executed (goodput).
        self.work_cycles = 0
        self.preemptions_taken = 0
        self.wasted_signals = 0
        self.requests_completed = 0
        self._switching_until = None

    # -- queue state ------------------------------------------------------------

    @property
    def outstanding(self):
        """Requests owned by this worker: queued locally plus in service.
        JBSQ(k) bounds this at k (JBSQ(1) == single queue, section 3.2)."""
        n = len(self.local)
        if self.current is not None or self._switching_until is not None:
            n += 1
        return n

    def has_slot(self, depth):
        return self.outstanding < depth

    @property
    def is_idle(self):
        return (
            self.current is None
            and not self.local
            and self._switching_until is None
        )

    # -- dispatch entry points ----------------------------------------------------

    def enqueue(self, request, ready_at):
        """Receive a request pushed by the dispatcher.

        ``ready_at`` is when the request becomes visible to the worker
        (dispatch action completion plus, in single-queue mode, the worker's
        own receive miss).
        """
        self.local.append(request)
        if self.current is None and self._switching_until is None:
            self._start_next(max(ready_at, self.sim.now))

    # -- execution ------------------------------------------------------------------

    def _start_next(self, at):
        """Begin the next local request: close the idle interval, pay the
        context switch (plus JBSQ's timer-arming residual), and schedule
        completion/preemption."""
        if not self.local:
            raise RuntimeError("worker {} has nothing to start".format(self.wid))
        request = self.local.popleft()
        at = max(at, self.sim.now)
        if self.idle_since is not None:
            self.idle_cycles += max(0, at - self.idle_since)
            self.idle_since = None

        costs = self.server.costs
        switch = costs.context_switch + costs.jbsq_residual
        if request.preemptions > 0:
            if request.last_worker == self.wid:
                # Warm resume: the request's context is still in this
                # core's caches, halving the switch-in cost (the locality
                # benefit section 3.1 alludes to).
                switch -= costs.context_switch // 2
            else:
                request.migrations += 1
        self.busy_cycles += switch
        run_start = at + switch
        self._switching_until = run_start
        self.epoch += 1
        epoch = self.epoch
        self.current = request
        self.run_start = run_start
        if request.first_dispatch_cycle is None:
            request.first_dispatch_cycle = at
        request.last_worker = self.wid

        probes = self.server.probes
        if probes is not None:
            probes.request_started(
                at, request, self.wid, run_start, request.preemptions > 0
            )

        duration = int(math.ceil(request.remaining_cycles * self.server.worker_rate))
        completion_at = run_start + duration
        self.sim.post_at(completion_at, lambda: self._on_complete(epoch), "w-complete")

        quantum = self.server.quantum_cycles
        if (
            self.server.preemptive
            and quantum is not None
            and completion_at > run_start + quantum
        ):
            expiry = run_start + quantum
            mech = self.server.mechanism
            if mech.needs_dispatcher_signal:
                self.sim.post_at(
                    expiry,
                    lambda: self.server.dispatcher.enqueue_preempt(self, epoch),
                    "quantum-expiry",
                )
            else:
                # Self-preemption (rdtsc probes): the worker notices the
                # elapsed quantum at its next probe, no dispatcher involved.
                rng = self.server.rng_notice
                delay = mech.notice_delay_cycles(rng) + self.server.defer_cycles(
                    request.kind, elapsed_cycles=quantum
                )
                self.sim.post_at(
                    expiry + int(delay),
                    lambda: self.on_preempt_signal(epoch),
                    "self-preempt",
                )

    def _on_complete(self, epoch):
        if epoch != self.epoch or self.current is None:
            return
        request = self.current
        now = self.sim.now
        self.busy_cycles += now - self.run_start
        self.work_cycles += request.remaining_cycles
        request.remaining_cycles = 0
        request.completion_cycle = now
        self.requests_completed += 1
        self.current = None
        self.run_start = None
        self._switching_until = None
        self.epoch += 1
        self.server.record_completion(request)
        self._after_request(now)

    def on_preempt_signal(self, epoch):
        """The preemption notification reached application code: yield.

        Fired either by the dispatcher (signal + notice latency + safety
        deferral) or by the worker's own rdtsc probe.  Stale signals — the
        request completed or already yielded — are dropped, mirroring how a
        late cache-line read observes an already-cleared flag.
        """
        if epoch != self.epoch or self.current is None:
            self.wasted_signals += 1
            return
        faults = self.server.faults
        if faults is not None:
            # Fault injection: a stall window swallows the probe until the
            # window ends; a dropout window loses it for one re-probe
            # period.  Either way the notification is re-armed, not lost —
            # if the request finishes first, the stale-epoch check above
            # drops the re-fire.
            retry_at = faults.preempt_retry_at(self.sim.now, self.wid)
            if retry_at is not None:
                self.sim.post_at(
                    retry_at, lambda: self.on_preempt_signal(epoch),
                    "fault-reprobe",
                )
                return
        now = self.sim.now
        request = self.current
        executed = int((now - self.run_start) // self.server.worker_rate)
        executed = max(0, min(executed, request.remaining_cycles - 1))
        request.remaining_cycles -= executed
        self.work_cycles += executed
        request.preemptions += 1
        self.preemptions_taken += 1
        self.busy_cycles += now - self.run_start
        probes = self.server.probes
        if probes is not None:
            probes.request_preempted(now, request, self.wid)

        costs = self.server.costs
        yield_done = now + costs.disruption + costs.context_switch
        self.busy_cycles += costs.disruption + costs.context_switch
        self.current = None
        self.run_start = None
        self.epoch += 1
        self._switching_until = yield_done
        self.server.dispatcher.enqueue_requeue(request)
        self.sim.post_at(yield_done, lambda: self._after_yield(), "w-yielded")

    def _after_yield(self):
        self._switching_until = None
        self._after_request(self.sim.now)

    def _after_request(self, now):
        """Pick up the next local request or go idle and tell the dispatcher."""
        if self.local:
            self._start_next(now)
            self.server.dispatcher.worker_slot_freed(self)
        else:
            self.idle_since = now
            probes = self.server.probes
            if probes is not None:
                probes.worker_went_idle(now, self.wid)
            self.server.dispatcher.worker_became_idle(self)

    def __repr__(self):
        return "Worker(wid={}, outstanding={}, idle={})".format(
            self.wid, self.outstanding, self.is_idle
        )
