"""Experiment harness: one module per table/figure in the paper.

Every experiment exposes ``run(quality="standard", seed=1) ->
ExperimentResult`` and prints the same rows/series the paper's figure
plots.  The CLI (``concord-repro``) lists and runs them; the benchmarks in
``benchmarks/`` wrap them for pytest-benchmark.

Quality levels trade fidelity for wall-clock time: "smoke" for CI,
"standard" for interactive runs, "full" for the numbers recorded in
EXPERIMENTS.md.
"""

from repro.experiments.common import (
    ExperimentResult,
    QUALITY_PRESETS,
    RunScale,
    sweep_systems,
)
from repro.experiments.registry import EXPERIMENTS, experiment_by_id

__all__ = [
    "ExperimentResult",
    "QUALITY_PRESETS",
    "RunScale",
    "sweep_systems",
    "EXPERIMENTS",
    "experiment_by_id",
]
