"""``python -m repro.experiments`` — alias for the ``concord-repro`` CLI."""

import sys

from repro.experiments.cli import main

sys.exit(main())
