"""Compare BENCH_*.json perf artifacts: ``concord-repro bench-diff``.

Each benchmark suite writes a flat-ish JSON artifact at the repo root
(``BENCH_parallel.json``, ``BENCH_obs.json``, ``BENCH_faults.json``,
``BENCH_engine.json``).  This module diffs two of them metric-by-metric so
a perf regression shows up as a signed delta in PR review instead of two
opaque blobs.  ``benchmarks/trend.py`` builds on the same helpers to print
the whole trajectory at once.
"""

import json

__all__ = [
    "TRAJECTORY",
    "flatten_metrics",
    "load_metrics",
    "diff_metrics",
    "format_diff",
]

#: Canonical artifact order — the PR sequence that produced them.
TRAJECTORY = (
    "BENCH_parallel.json",
    "BENCH_obs.json",
    "BENCH_faults.json",
    "BENCH_engine.json",
    "BENCH_resilience.json",
)

#: Metrics where *down* is an improvement (times, overheads, slowdowns).
_LOWER_IS_BETTER = ("seconds", "slowdown", "overhead", "wall")


def flatten_metrics(doc, prefix=""):
    """Flatten nested dicts to dotted keys, keeping numeric leaves only.

    Booleans and strings (targets hit, footers, config echoes) are context,
    not metrics, and diffing them as numbers would be nonsense.
    """
    flat = {}
    for key, value in doc.items():
        dotted = "{}.{}".format(prefix, key) if prefix else key
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, dotted))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[dotted] = float(value)
    return flat


def load_metrics(path):
    """Numeric metrics of one artifact, as ``{dotted_key: float}``."""
    with open(path) as f:
        return flatten_metrics(json.load(f))


def diff_metrics(old, new):
    """Rows of ``(key, old, new, delta, pct)`` over the union of keys.

    Metrics present on only one side get ``None`` for the missing value
    and no delta — an artifact gaining or losing a metric is itself worth
    seeing in review.
    """
    rows = []
    for key in sorted(set(old) | set(new)):
        a, b = old.get(key), new.get(key)
        if a is None or b is None:
            rows.append((key, a, b, None, None))
            continue
        delta = b - a
        pct = (delta / a * 100.0) if a else None
        rows.append((key, a, b, delta, pct))
    return rows


def _fmt(value):
    if value is None:
        return "-"
    if value == int(value) and abs(value) >= 1000:
        return "{:,}".format(int(value))
    return "{:g}".format(round(value, 4))


def _direction(key, delta):
    """Flag deltas that moved against the metric's good direction, so a
    regression can't hide in a wall of rows."""
    if delta is None or delta == 0:
        return ""
    lower_better = any(tag in key for tag in _LOWER_IS_BETTER)
    worse = (delta > 0) if lower_better else (delta < 0)
    return "  (regressed)" if worse else ""


def format_diff(name_old, name_new, rows):
    """Render diff rows as an aligned text table."""
    header = ("metric", name_old, name_new, "delta", "%")
    cells = [header]
    for key, a, b, delta, pct in rows:
        cells.append((
            key,
            _fmt(a),
            _fmt(b),
            ("{:+g}".format(round(delta, 4)) if delta is not None else "-"),
            ("{:+.1f}%".format(pct) if pct is not None else "-")
            + _direction(key, delta),
        ))
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = []
    for n, row in enumerate(cells):
        lines.append("  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        ).rstrip())
        if n == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
