"""Command-line entry point: ``concord-repro``.

    concord-repro list
    concord-repro run fig6 --quality standard --seed 1
    concord-repro run all --quality full --out results/

Each experiment prints the rows/series its paper figure plots, plus the
headline summary (SLO knees, improvement percentages).
"""

import argparse
import os
import sys
import time

from repro.experiments import tracecmd
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["main"]


def _add_parallel_args(parser):
    """--jobs / cache flags shared by the simulation-heavy subcommands."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent simulations (default: "
             "$REPRO_JOBS or 1; 0 means one per core)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-simulate; do not read or write the result cache",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="journal completed jobs to FILE so an interrupted sweep can "
             "be resumed with --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="serve already-journaled jobs from --checkpoint instead of "
             "re-simulating them",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job watchdog: a job running longer is killed, retried, "
             "and eventually quarantined (default: no timeout)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retries before a crashing or hanging job is quarantined "
             "(default: 2)",
    )


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="concord-repro",
        description="Reproduce the tables and figures of the Concord paper "
                    "(SOSP '23) on the discrete-event simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment", help="experiment id (see 'list') or 'all'"
    )
    run_parser.add_argument(
        "--quality", default="standard",
        choices=["smoke", "standard", "full"],
        help="run size preset (default: standard)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=1, help="master RNG seed (default: 1)"
    )
    run_parser.add_argument(
        "--out", default=None,
        help="directory to also write per-experiment .txt reports into",
    )
    run_parser.add_argument(
        "--plot", action="store_true",
        help="render each multi-column result as an ASCII chart too",
    )
    _add_parallel_args(run_parser)
    tracecmd.add_trace_args(run_parser)

    compare_parser = sub.add_parser(
        "compare",
        help="run two runtimes head-to-head on one workload and load",
    )
    compare_parser.add_argument(
        "--workload", default="bimodal-995-05-500",
        help="named workload (see repro.workloads.NAMED_WORKLOADS)",
    )
    compare_parser.add_argument(
        "--load-krps", type=float, default=None,
        help="offered load in kRps (default: 60%% of nominal capacity)",
    )
    compare_parser.add_argument(
        "--quantum-us", type=float, default=5.0, help="scheduling quantum"
    )
    compare_parser.add_argument(
        "--requests", type=int, default=15_000, help="arrivals to simulate"
    )
    compare_parser.add_argument(
        "--workers", type=int, default=14, help="worker threads"
    )
    compare_parser.add_argument("--seed", type=int, default=1)
    compare_parser.add_argument(
        "--systems", default="shinjuku,concord",
        help="comma-separated: persephone, shinjuku, concord, "
             "concord-no-steal, coop-sq, coop-jbsq",
    )
    _add_parallel_args(compare_parser)
    tracecmd.add_trace_args(compare_parser)

    rack_parser = sub.add_parser(
        "rack",
        help="run one simulated rack and compare inter-server policies",
    )
    rack_parser.add_argument(
        "--servers", type=int, default=4, help="servers behind the balancer"
    )
    rack_parser.add_argument(
        "--workers", type=int, default=4, help="worker threads per server"
    )
    rack_parser.add_argument(
        "--system", default="concord",
        help="intra-server mechanism (see 'compare --systems')",
    )
    rack_parser.add_argument(
        "--policies", default="random,rr,jsq,po2,sed",
        help="comma-separated inter-server policies",
    )
    rack_parser.add_argument(
        "--workload", default="bimodal-50-1-50-100",
        help="named workload (see repro.workloads.NAMED_WORKLOADS)",
    )
    rack_parser.add_argument(
        "--load-frac", type=float, default=0.75,
        help="offered load as a fraction of nominal rack capacity",
    )
    rack_parser.add_argument(
        "--requests", type=int, default=8_000, help="arrivals to simulate"
    )
    rack_parser.add_argument(
        "--quantum-us", type=float, default=5.0, help="scheduling quantum"
    )
    rack_parser.add_argument(
        "--staleness-us", type=float, default=0.0,
        help="extra telemetry report delay (stale-signal knob)",
    )
    rack_parser.add_argument("--seed", type=int, default=1)
    _add_parallel_args(rack_parser)
    tracecmd.add_trace_args(rack_parser)

    faults_parser = sub.add_parser(
        "faults",
        help="run a fault-injection scenario against one rack and compare "
             "resilience mechanisms",
    )
    faults_parser.add_argument(
        "--scenario", default="crash",
        choices=["crash", "crash-requeue", "blackout", "stall", "degrade"],
        help="what breaks (default: crash)",
    )
    faults_parser.add_argument(
        "--servers", type=int, default=4, help="servers behind the balancer"
    )
    faults_parser.add_argument(
        "--workers", type=int, default=4, help="worker threads per server"
    )
    faults_parser.add_argument(
        "--system", default="concord",
        help="intra-server mechanism (see 'compare --systems')",
    )
    faults_parser.add_argument(
        "--policy", default="jsq", help="inter-server routing policy"
    )
    faults_parser.add_argument(
        "--workload", default="bimodal-50-1-50-100",
        help="named workload (see repro.workloads.NAMED_WORKLOADS)",
    )
    faults_parser.add_argument(
        "--load-frac", type=float, default=0.75,
        help="offered load as a fraction of nominal rack capacity",
    )
    faults_parser.add_argument(
        "--requests", type=int, default=8_000, help="arrivals to simulate"
    )
    faults_parser.add_argument(
        "--quantum-us", type=float, default=5.0, help="scheduling quantum"
    )
    faults_parser.add_argument(
        "--fault-at-frac", type=float, default=0.25,
        help="fault onset as a fraction of the run's arrival span",
    )
    faults_parser.add_argument(
        "--fault-duration-frac", type=float, default=0.3,
        help="fault duration as a fraction of the run's arrival span",
    )
    faults_parser.add_argument(
        "--fault-server", type=int, default=0,
        help="target server index for crash/stall scenarios",
    )
    faults_parser.add_argument("--seed", type=int, default=1)
    _add_parallel_args(faults_parser)
    tracecmd.add_trace_args(faults_parser)

    diff_parser = sub.add_parser(
        "bench-diff",
        help="print per-metric deltas between two BENCH_*.json artifacts",
    )
    diff_parser.add_argument(
        "bench_old", metavar="BENCH_A.json",
        help="baseline artifact (e.g. BENCH_parallel.json)",
    )
    diff_parser.add_argument(
        "bench_new", metavar="BENCH_B.json",
        help="candidate artifact (e.g. BENCH_engine.json)",
    )

    tracecmd.add_trace_subcommand(sub)
    return parser


def _run_bench_diff(args, stream):
    from repro.experiments.benchdiff import (
        diff_metrics,
        format_diff,
        load_metrics,
    )

    try:
        old = load_metrics(args.bench_old)
        new = load_metrics(args.bench_new)
    except (OSError, ValueError) as exc:
        print("concord-repro: error: {}".format(exc), file=sys.stderr)
        return 2
    rows = diff_metrics(old, new)
    print(
        format_diff(os.path.basename(args.bench_old),
                    os.path.basename(args.bench_new), rows),
        file=stream,
    )
    return 0


def _build_runner(args, stream=None):
    """A ParallelRunner from the shared --jobs / cache flags.  Tracing
    forces a serial, uncached runner: pooled or cached simulations never
    touch this process's trace session."""
    from repro.parallel import ParallelRunner, ResultCache, SweepCheckpoint

    if args.resume and not args.checkpoint:
        print(
            "concord-repro: error: --resume requires --checkpoint FILE",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if tracecmd.tracing_requested(args):
        if stream is not None and (args.jobs not in (None, 1) or
                                   not args.no_cache):
            print(
                "  [trace: running serially with the cache disabled so "
                "every event is observed]",
                file=stream,
            )
        return tracecmd.serial_runner()
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    checkpoint = None
    if args.checkpoint:
        try:
            checkpoint = SweepCheckpoint(args.checkpoint, resume=args.resume)
        except (ValueError, OSError) as exc:
            print("concord-repro: error: {}".format(exc), file=sys.stderr)
            raise SystemExit(2) from None
        if args.resume and len(checkpoint) and stream is not None:
            print(
                "  [checkpoint: resuming; {} job(s) already journaled "
                "in {}]".format(len(checkpoint), args.checkpoint),
                file=stream,
            )
    try:
        return ParallelRunner(
            jobs=args.jobs, cache=cache, checkpoint=checkpoint,
            job_timeout=args.job_timeout, max_retries=args.max_retries,
        )
    except ValueError as exc:  # e.g. REPRO_JOBS=garbage in the environment
        print("concord-repro: error: {}".format(exc), file=sys.stderr)
        raise SystemExit(2) from None


_SYSTEM_FACTORIES = {
    "persephone": lambda q: _presets().persephone_fcfs(),
    "shinjuku": lambda q: _presets().shinjuku(q),
    "concord": lambda q: _presets().concord(q),
    "concord-no-steal": lambda q: _presets().concord_no_steal(q),
    "coop-sq": lambda q: _presets().coop_single_queue(q),
    "coop-jbsq": lambda q: _presets().coop_jbsq(q),
}


def _presets():
    from repro.core import presets

    return presets


def _run_compare(args, stream):
    from repro.hardware import c6420
    from repro.metrics import format_table
    from repro.parallel import ServerJob
    from repro.workloads import workload_by_name

    runner = _build_runner(args, stream)
    workload = workload_by_name(args.workload)
    machine = c6420(args.workers)
    load = (
        args.load_krps * 1e3
        if args.load_krps is not None
        else 0.6 * machine.num_workers * 1e6 / workload.mean_us()
    )
    jobs = []
    for name in args.systems.split(","):
        name = name.strip()
        try:
            factory = _SYSTEM_FACTORIES[name]
        except KeyError:
            raise KeyError(
                "unknown system {!r}; known: {}".format(
                    name, ", ".join(sorted(_SYSTEM_FACTORIES))
                )
            ) from None
        jobs.append(ServerJob(
            machine=machine, config=factory(args.quantum_us),
            workload=workload, load_rps=load, num_requests=args.requests,
            seed=args.seed,
        ))
    rows = []
    with tracecmd.maybe_traced(args, stream, default_out="compare-trace.json"):
        outcomes = runner.map(jobs)
    for outcome in outcomes:
        rows.append([
            outcome["name"], outcome["p50"], outcome["p99"],
            outcome["p999"],
            "yes" if outcome["meets_slo"] else "NO",
            round(outcome["dispatcher_utilization"], 3),
            outcome["steal_completions"],
        ])
    print(format_table(
        ["system", "p50", "p99", "p99.9", "SLO met", "disp util", "stolen"],
        rows,
        title="{} at {:.0f} kRps, quantum {:g}us, {} workers".format(
            workload.name, load / 1e3, args.quantum_us, args.workers),
    ), file=stream)
    if (runner.stats["jobs_run"] or runner.stats["cache_hits"]
            or runner.stats.get("checkpoint_hits")):
        print("  " + runner.summary_line(), file=stream)
    return 0


def _run_rack(args, stream):
    from repro.cluster import NetworkFabric
    from repro.hardware import c6420
    from repro.metrics import format_table
    from repro.parallel import RackJob
    from repro.workloads import workload_by_name

    runner = _build_runner(args, stream)
    workload = workload_by_name(args.workload)
    machine = c6420(args.workers)
    rack_capacity = args.servers * args.workers * 1e6 / workload.mean_us()
    load = args.load_frac * rack_capacity
    fabric = NetworkFabric(telemetry_staleness_us=args.staleness_us)
    try:
        factory = _SYSTEM_FACTORIES[args.system]
    except KeyError:
        raise KeyError(
            "unknown system {!r}; known: {}".format(
                args.system, ", ".join(sorted(_SYSTEM_FACTORIES))
            )
        ) from None
    policies = [p.strip() for p in args.policies.split(",")]
    with tracecmd.maybe_traced(args, stream, default_out="rack-trace.json"):
        outcomes = runner.map([
            RackJob(
                machine=machine, config=factory(args.quantum_us),
                num_servers=args.servers, policy=policy, workload=workload,
                load_rps=load, num_requests=args.requests, seed=args.seed,
                fabric=fabric,
            )
            for policy in policies
        ])
    rows = []
    for policy, outcome in zip(policies, outcomes):
        rows.append([
            policy, outcome["p50"], outcome["p99"], outcome["p999"],
            round(outcome["imbalance"], 3),
            "yes" if outcome["drained"] else "NO",
        ])
    print(format_table(
        ["policy", "p50", "p99", "p99.9", "imbalance", "drained"],
        rows,
        title="{} x{} rack, {} at {:.0f} kRps ({:.0%} of capacity), "
              "staleness {:g}us".format(
                  args.system, args.servers, workload.name, load / 1e3,
                  args.load_frac, args.staleness_us),
    ), file=stream)
    if (runner.stats["jobs_run"] or runner.stats["cache_hits"]
            or runner.stats.get("checkpoint_hits")):
        print("  " + runner.summary_line(), file=stream)
    return 0


def _fault_plan_for(args, span_us):
    """Build the scenario's FaultPlan from the shared timing flags."""
    from repro.faults import (
        FabricDegradation, FaultPlan, ServerCrash, TelemetryBlackout,
        WorkerStall,
    )

    at = args.fault_at_frac * span_us
    duration = args.fault_duration_frac * span_us
    if args.scenario in ("crash", "crash-requeue"):
        fault = ServerCrash(
            at_us=at, down_us=duration, server=args.fault_server,
            requeue_inflight=args.scenario == "crash-requeue",
        )
    elif args.scenario == "blackout":
        fault = TelemetryBlackout(at_us=at, duration_us=duration)
    elif args.scenario == "stall":
        fault = WorkerStall(
            at_us=at, duration_us=duration, server=args.fault_server,
        )
    else:
        fault = FabricDegradation(at_us=at, duration_us=duration,
                                  multiplier=8.0)
    return FaultPlan(faults=(fault,), name=args.scenario)


def _run_faults(args, stream):
    from repro.faults import ResilienceConfig
    from repro.hardware import c6420
    from repro.metrics import format_table
    from repro.parallel import FaultJob
    from repro.workloads import workload_by_name

    runner = _build_runner(args, stream)
    workload = workload_by_name(args.workload)
    machine = c6420(args.workers)
    rack_capacity = args.servers * args.workers * 1e6 / workload.mean_us()
    load = args.load_frac * rack_capacity
    span_us = args.requests / load * 1e6
    try:
        factory = _SYSTEM_FACTORIES[args.system]
    except KeyError:
        raise KeyError(
            "unknown system {!r}; known: {}".format(
                args.system, ", ".join(sorted(_SYSTEM_FACTORIES))
            )
        ) from None
    plan = _fault_plan_for(args, span_us)
    rows_spec = [
        ("fault-free", None, None),
        ("faulted", plan, None),
        ("faulted+retry", plan, ResilienceConfig.retry_only()),
        ("faulted+hedge", plan, ResilienceConfig.hedged()),
    ]
    with tracecmd.maybe_traced(args, stream, default_out="faults-trace.json"):
        outcomes = runner.map([
            FaultJob(
                machine=machine, config=factory(args.quantum_us),
                num_servers=args.servers, policy=args.policy,
                workload=workload, load_rps=load,
                num_requests=args.requests, seed=args.seed,
                fault_plan=fault_plan, resilience=resilience,
            )
            for _label, fault_plan, resilience in rows_spec
        ])
    rows = []
    for (label, _plan, _res), outcome in zip(rows_spec, outcomes):
        mttr = outcome["mttr_us"]
        rows.append([
            label, outcome["p50"], outcome["p99"], outcome["p999"],
            round(outcome["goodput"], 4),
            round(outcome["slo_goodput"], 4),
            round(mttr, 1) if mttr == mttr else "-",
            outcome["lost"], outcome["retries"], outcome["hedges"],
            outcome["shed"],
        ])
    print(format_table(
        ["mode", "p50", "p99", "p99.9", "goodput", "slo_goodput", "mttr_us",
         "lost", "retries", "hedges", "shed"],
        rows,
        title="{} scenario: {} x{} rack [{}], {} at {:.0f} kRps "
              "({:.0%} of capacity)".format(
                  args.scenario, args.system, args.servers, args.policy,
                  workload.name, load / 1e3, args.load_frac),
    ), file=stream)
    if (runner.stats["jobs_run"] or runner.stats["cache_hits"]
            or runner.stats.get("checkpoint_hits")):
        print("  " + runner.summary_line(), file=stream)
    return 0


def _run_one(experiment_id, quality, seed, out_dir, stream, plot=False,
             runner=None):
    started = time.time()  # repro-san: ignore[DET001] -- times the run for the progress footer only; never enters results
    results = run_experiment(
        experiment_id, quality=quality, seed=seed, runner=runner
    )
    elapsed = time.time() - started  # repro-san: ignore[DET001] -- times the run for the progress footer only; never enters results
    chunks = [result.render() for result in results]
    if plot:
        from repro.experiments.plotting import result_chart

        for result in results:
            chart = result_chart(result)
            if chart:
                chunks.append(chart)
    text = "\n\n".join(chunks)
    print(text, file=stream)
    print("  [{} finished in {:.1f}s]".format(experiment_id, elapsed),
          file=stream)
    print("", file=stream)
    if out_dir:
        path = os.path.join(out_dir, "{}.txt".format(experiment_id))
        with open(path, "w") as f:
            f.write(text + "\n")
    return results


def main(argv=None, stream=None):
    from repro.parallel import SweepInterrupted

    stream = stream or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args, stream)
    except SweepInterrupted as exc:
        # The runner already flushed the journal; tell the user how to
        # pick the sweep back up without losing the completed jobs.
        print(
            "concord-repro: interrupted with {} completed job(s) "
            "journaled; resume with --resume --checkpoint {}".format(
                exc.completed, exc.path,
            ),
            file=sys.stderr,
        )
        return 130


def _dispatch(args, stream):
    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid in sorted(EXPERIMENTS):
            print(
                "{}  {}".format(eid.ljust(width), EXPERIMENTS[eid].description),
                file=stream,
            )
        return 0

    if args.command == "compare":
        return _run_compare(args, stream)

    if args.command == "rack":
        return _run_rack(args, stream)

    if args.command == "faults":
        return _run_faults(args, stream)

    if args.command == "bench-diff":
        return _run_bench_diff(args, stream)

    if args.command == "trace":
        return tracecmd.run_trace_command(args, stream)

    if args.out:
        os.makedirs(args.out, exist_ok=True)
    runner = _build_runner(args, stream)
    with tracecmd.maybe_traced(args, stream):
        if args.experiment == "all":
            for eid in sorted(EXPERIMENTS):
                _run_one(eid, args.quality, args.seed, args.out, stream,
                         plot=args.plot, runner=runner)
        else:
            _run_one(args.experiment, args.quality, args.seed, args.out,
                     stream, plot=args.plot, runner=runner)
    if runner.cache is not None and (runner.cache.hits or runner.cache.stores):
        print(
            "  [cache: {} hits, {} new entries in {}]".format(
                runner.cache.hits, runner.cache.stores,
                runner.cache.cache_dir,
            ),
            file=stream,
        )
    if (runner.stats["jobs_run"] or runner.stats["cache_hits"]
            or runner.stats.get("checkpoint_hits")):
        print("  " + runner.summary_line(), file=stream)
    return 0


if __name__ == "__main__":
    sys.exit(main())
