"""Shared experiment infrastructure: result containers, quality presets,
and multi-system load sweeps."""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.metrics.report import format_table
from repro.metrics.sweep import LoadSweep

__all__ = ["RunScale", "QUALITY_PRESETS", "ExperimentResult", "sweep_systems",
           "load_grid"]


@dataclass(frozen=True)
class RunScale:
    """How big one experiment run is.

    num_requests:
        Open-loop arrivals per load point.
    load_points:
        Number of points on each load sweep.
    kernel_scale:
        Trip-count multiplier for instrumentation kernels (Table 1).
    """

    num_requests: int
    load_points: int
    kernel_scale: float


QUALITY_PRESETS = {
    "smoke": RunScale(num_requests=2_500, load_points=5, kernel_scale=0.1),
    "standard": RunScale(num_requests=12_000, load_points=8, kernel_scale=0.5),
    "full": RunScale(num_requests=30_000, load_points=11, kernel_scale=1.0),
}


def scale_for(quality):
    try:
        return QUALITY_PRESETS[quality]
    except KeyError:
        raise KeyError(
            "unknown quality {!r}; known: {}".format(
                quality, ", ".join(sorted(QUALITY_PRESETS))
            )
        ) from None


@dataclass
class ExperimentResult:
    """Printable outcome of one experiment."""

    experiment_id: str
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[list] = field(default_factory=list)
    #: Headline numbers (e.g. SLO knees) keyed by label.
    summary: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells):
        self.rows.append(list(cells))

    def note(self, text):
        self.notes.append(text)

    def render(self):
        parts = [format_table(self.headers, self.rows,
                              title="{}: {}".format(self.experiment_id,
                                                    self.title))]
        if self.summary:
            parts.append("")
            for key in self.summary:
                value = self.summary[key]
                if isinstance(value, float):
                    parts.append("  {} = {:.4g}".format(key, value))
                else:
                    parts.append("  {} = {}".format(key, value))
        for note in self.notes:
            parts.append("  note: {}".format(note))
        return "\n".join(parts)


def load_grid(max_load_rps, points, low_fraction=0.25, high_fraction=1.0):
    """An ascending grid of offered loads spanning the interesting region,
    denser near saturation where the knee lives."""
    if points < 2:
        raise ValueError("need at least two load points")
    if max_load_rps <= 0:
        raise ValueError(
            "max_load_rps must be positive, got {!r}".format(max_load_rps)
        )
    if not low_fraction < high_fraction:
        raise ValueError(
            "load grid needs low_fraction < high_fraction, got "
            "low={!r} high={!r}".format(low_fraction, high_fraction)
        )
    grid = []
    for i in range(points):
        # Quadratic spacing: more resolution near the top of the range.
        t = i / (points - 1)
        fraction = low_fraction + (high_fraction - low_fraction) * (
            0.55 * t + 0.45 * t * t
        )
        grid.append(fraction * max_load_rps)
    return grid


def sweep_systems(machine, configs, workload, loads, num_requests, seed=1,
                  warmup_frac=0.1, profile=None, arrival_factory=None,
                  runner=None):
    """Run a load sweep for each configuration (common random numbers) and
    return ``{config_name: LoadSweep}`` preserving config order.

    All (config x load) cells are independent simulations, so they are
    submitted to the runner (default: the process-wide one, see
    :func:`repro.parallel.get_default_runner`) as **one** batch — with
    ``--jobs N`` the whole figure fans out at once rather than one
    config at a time.  Results are bit-identical to serial execution.
    """
    from repro.parallel import get_default_runner

    if runner is None:
        runner = get_default_runner()
    loads = list(loads)
    sweeps = {}
    for config in configs:
        sweeps[config.name] = LoadSweep(
            machine, config, workload, num_requests=num_requests, seed=seed,
            warmup_frac=warmup_frac, profile=profile,
            arrival_factory=arrival_factory,
        )
    jobs = [
        sweeps[config.name].job(load) for config in configs for load in loads
    ]
    points = runner.map(jobs)
    for c, config in enumerate(configs):
        chunk = points[c * len(loads):(c + 1) * len(loads)]
        sweeps[config.name].points.extend(chunk)
    return sweeps
