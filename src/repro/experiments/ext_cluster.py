"""Extension: rack-scale two-layer scheduling (RackSched over Concord).

The paper's intra-server story only matters at scale when many servers
serve one service.  This experiment composes N Concord/Shinjuku/
no-preemption servers under one load balancer (:mod:`repro.cluster`) and
measures the rack-wide p99 slowdown:

* **Part 1 (headline):** p99 vs load for every inter-server policy ×
  intra-server mechanism.  The two-layer claim to reproduce: queue-aware
  routing (JSQ/Po2/SED) beats oblivious routing at every load, *and* the
  best inter-server policy cannot rescue a rack whose members schedule
  poorly inside — approximate-optimal intra-server scheduling is necessary
  but not sufficient.
* **Part 2:** shortest-expected-delay under increasing telemetry
  staleness — RackSched's stale-signal degradation, reproduced by turning
  the fabric's report-delay knob.
"""

from repro.cluster import NetworkFabric
from repro.core import concord, persephone_fcfs, shinjuku
from repro.experiments.common import ExperimentResult, scale_for
from repro.hardware import c6420
from repro.parallel import RackJob, get_default_runner
from repro.workloads.named import bimodal_50_1_50_100

QUANTUM_US = 5.0
WORKERS_PER_SERVER = 4
POLICIES = ["random", "rr", "jsq", "po2", "sed"]
LOAD_FRACTIONS = [0.5, 0.7, 0.85]
STALENESS_GRID_US = [0.0, 25.0, 100.0, 400.0]

#: Rack width per quality preset (smoke doubles as the CI cluster target).
RACK_SIZES = {"smoke": 2, "standard": 4, "full": 6}


def _mechanisms():
    return [
        ("Concord", concord(QUANTUM_US)),
        ("Shinjuku", shinjuku(QUANTUM_US)),
        ("No-preempt", persephone_fcfs()),
    ]


def run(quality="standard", seed=1, runner=None):
    if runner is None:
        runner = get_default_runner()
    scale = scale_for(quality)
    num_servers = RACK_SIZES.get(quality, 4)
    machine = c6420(WORKERS_PER_SERVER)
    workload = bimodal_50_1_50_100()
    rack_capacity = (
        num_servers * machine.num_workers * 1e6 / workload.mean_us()
    )
    n = scale.num_requests
    mechanisms = _mechanisms()
    results = []

    # Part 1: policy x mechanism headline sweep.
    headline = ExperimentResult(
        experiment_id="ext-cluster-policies",
        title="Rack-wide p99 slowdown: {} servers x {} workers, "
              "Bimodal(50:1,50:100)".format(
                  num_servers, WORKERS_PER_SERVER),
        headers=["load_frac", "policy"]
                + ["{} p99".format(name) for name, _ in mechanisms],
    )
    # Every rack run is independent: submit the whole (load x policy x
    # mechanism) cube as one batch so --jobs fans it out across cores.
    cells = [
        (fraction, policy, mech_name, config)
        for fraction in LOAD_FRACTIONS
        for policy in POLICIES
        for mech_name, config in mechanisms
    ]
    outcomes = runner.map([
        RackJob(
            machine=machine, config=config, num_servers=num_servers,
            policy=policy, workload=workload,
            load_rps=fraction * rack_capacity, num_requests=n, seed=seed,
        )
        for fraction, policy, mech_name, config in cells
    ])
    p99_by_cell = {
        (fraction, policy, mech_name): outcome["p99"]
        for (fraction, policy, mech_name, _), outcome
        in zip(cells, outcomes)
    }
    p99_at_top = {}
    for fraction in LOAD_FRACTIONS:
        for policy in POLICIES:
            row = [fraction, policy]
            for mech_name, _config in mechanisms:
                p99 = p99_by_cell[(fraction, policy, mech_name)]
                row.append(round(p99, 2))
                if fraction == LOAD_FRACTIONS[-1]:
                    p99_at_top[(mech_name, policy)] = p99
            headline.add_row(*row)

    top = LOAD_FRACTIONS[-1]
    for mech_name, _ in mechanisms:
        random_p99 = p99_at_top[(mech_name, "random")]
        jsq_p99 = p99_at_top[(mech_name, "jsq")]
        headline.summary[
            "{}_random_over_jsq_p99_at_{:g}".format(mech_name, top)
        ] = random_p99 / jsq_p99
    # Necessary-but-not-sufficient: the best intra-server mechanism with the
    # worst routing vs the worst mechanism with the best routing.
    headline.summary["concord_random_p99"] = p99_at_top[("Concord", "random")]
    headline.summary["concord_jsq_p99"] = p99_at_top[("Concord", "jsq")]
    headline.summary["nopreempt_jsq_p99"] = p99_at_top[("No-preempt", "jsq")]
    headline.note(
        "two-layer claim: Concord+JSQ needs BOTH layers — Concord+random "
        "loses the inter-server battle, No-preempt+JSQ loses the "
        "intra-server one"
    )
    results.append(headline)

    # Part 2: SED under telemetry staleness (Concord rack, fixed load).
    staleness = ExperimentResult(
        experiment_id="ext-cluster-staleness",
        title="Shortest-expected-delay under stale telemetry "
              "(Concord rack at 0.75 load)",
        headers=["staleness_us", "p99", "p999", "imbalance"],
    )
    load = 0.75 * rack_capacity
    stale_outcomes = runner.map([
        RackJob(
            machine=machine, config=concord(QUANTUM_US),
            num_servers=num_servers, policy="sed", workload=workload,
            load_rps=load, num_requests=n, seed=seed,
            fabric=NetworkFabric(telemetry_staleness_us=stale_us),
        )
        for stale_us in STALENESS_GRID_US
    ])
    previous = None
    monotone = True
    for stale_us, outcome in zip(STALENESS_GRID_US, stale_outcomes):
        staleness.add_row(
            stale_us, round(outcome["p99"], 2), round(outcome["p999"], 2),
            round(outcome["imbalance"], 3),
        )
        if previous is not None and outcome["p99"] < previous:
            monotone = False
        previous = outcome["p99"]
    staleness.summary["degradation_monotone"] = monotone
    staleness.note(
        "RackSched's stale-signal effect: the queue signal ages past the "
        "service scale and shortest-expected-delay decays toward blind "
        "routing"
    )
    results.append(staleness)
    return results
