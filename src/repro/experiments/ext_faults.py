"""Extension: degradation and recovery under deterministic fault injection.

The scheduling papers this repo reproduces (Concord, RackSched, Rain) all
assume a healthy rack; this experiment measures what their conclusions are
worth when the rack misbehaves, using :mod:`repro.faults`:

* **Part 1 — telemetry blackout degradation curves.**  A blackout freezes
  the balancer's queue view mid-run; queue-aware policies (JSQ, SED) herd
  onto whichever server looked shortest at freeze time and the rack-wide
  tail explodes even though *no request is ever lost*.  We sweep blackout
  intensity (fraction of the run blacked out) and plot p99.9 slowdown and
  SLO-goodput (fraction of requests completing within the slowdown SLO).

* **Part 2 — crash-and-recover: resilience mechanisms x routing policy.**
  One server crashes mid-run and recovers later.  Without resilience its
  in-flight and newly-routed requests are simply lost; with the failure
  detector + timeout/retry (optionally + hedging) the balancer blacklists
  the suspect, re-launches timed-out requests elsewhere, and goodput is
  restored.  Rows report completion-goodput, MTTR (crash onset to first
  post-recovery reply), and the retry/hedge/failure counters — the
  recovery-timeline view per (policy x mechanism).

Acceptance (ROADMAP): the no-resilience crash run visibly loses goodput,
and detector+retry restores >= 90% of the fault-free goodput.
"""

from repro.core import concord
from repro.experiments.common import ExperimentResult, scale_for
from repro.faults import (
    FaultPlan, ResilienceConfig, ServerCrash, TelemetryBlackout,
)
from repro.hardware import c6420
from repro.parallel import FaultJob, get_default_runner
from repro.workloads.named import bimodal_50_1_50_100

QUANTUM_US = 5.0
WORKERS_PER_SERVER = 4
LOAD_FRACTION = 0.8
#: Fraction of the run's span blacked out (Part 1 intensity grid).
BLACKOUT_INTENSITIES = [0.0, 0.1, 0.25, 0.5]
BLACKOUT_POLICIES = ["jsq", "sed"]
CRASH_POLICIES = ["jsq", "sed"]

#: Rack width per quality preset (mirrors ext-cluster).
RACK_SIZES = {"smoke": 2, "standard": 4, "full": 6}


def _resilience_modes():
    """(label, ResilienceConfig-or-None) rows for Part 2."""
    return [
        ("none", None),
        ("retry", ResilienceConfig.retry_only()),
        ("retry+hedge", ResilienceConfig.hedged(hedge_delay_us=800.0)),
    ]


def _span_us(num_requests, load_rps):
    """Expected arrival span of the run, for placing fault windows."""
    return num_requests / load_rps * 1e6


def run(quality="standard", seed=1, runner=None):
    if runner is None:
        runner = get_default_runner()
    scale = scale_for(quality)
    num_servers = RACK_SIZES.get(quality, 4)
    machine = c6420(WORKERS_PER_SERVER)
    workload = bimodal_50_1_50_100()
    rack_capacity = (
        num_servers * machine.num_workers * 1e6 / workload.mean_us()
    )
    load = LOAD_FRACTION * rack_capacity
    n = scale.num_requests
    span_us = _span_us(n, load)
    results = []

    def fault_job(policy, plan=None, resilience=None):
        return FaultJob(
            machine=machine, config=concord(QUANTUM_US),
            num_servers=num_servers, policy=policy, workload=workload,
            load_rps=load, num_requests=n, seed=seed,
            fault_plan=plan, resilience=resilience,
        )

    # -- Part 1: blackout degradation curves ---------------------------------
    blackout = ExperimentResult(
        experiment_id="ext-faults-blackout",
        title="Telemetry blackout degradation: {} servers at {:.0%} load, "
              "Bimodal(50:1,50:100)".format(num_servers, LOAD_FRACTION),
        headers=["intensity", "policy", "p999", "p999_slowdown_vs_clean",
                 "slo_goodput", "reports_dropped"],
    )
    cells = [
        (intensity, policy)
        for intensity in BLACKOUT_INTENSITIES
        for policy in BLACKOUT_POLICIES
    ]

    def blackout_plan_for(intensity):
        if intensity <= 0:
            return None
        # Freeze early, while the warmup transient still has the per-server
        # queues uneven: the frozen argmin then herds traffic instead of
        # degenerating into (harmless) uniform tie-breaking.
        start = 0.05 * span_us
        return FaultPlan(
            faults=(TelemetryBlackout(
                at_us=start, duration_us=intensity * span_us,
            ),),
            name="blackout-{:g}".format(intensity),
        )

    outcomes = runner.map([
        fault_job(policy, plan=blackout_plan_for(intensity))
        for intensity, policy in cells
    ])
    by_cell = dict(zip(cells, outcomes))
    for intensity, policy in cells:
        outcome = by_cell[(intensity, policy)]
        clean = by_cell[(0.0, policy)]
        blackout.add_row(
            intensity, policy, round(outcome["p999"], 2),
            round(outcome["p999"] / clean["p999"], 2),
            round(outcome["slo_goodput"], 4),
            0 if intensity <= 0 else "yes",
        )
    worst = BLACKOUT_INTENSITIES[-1]
    for policy in BLACKOUT_POLICIES:
        blackout.summary[
            "{}_p999_slowdown_at_{:g}".format(policy, worst)
        ] = by_cell[(worst, policy)]["p999"] / by_cell[(0.0, policy)]["p999"]
        blackout.summary[
            "{}_slo_goodput_at_{:g}".format(policy, worst)
        ] = by_cell[(worst, policy)]["slo_goodput"]
    blackout.note(
        "no request is lost during a blackout — the damage is pure tail "
        "inflation from routing on a frozen queue view (board herding)"
    )
    results.append(blackout)

    # -- Part 2: crash-and-recover, resilience x policy ----------------------
    crash_at = 0.25 * span_us
    down_for = 0.3 * span_us
    crash_spec = ServerCrash(at_us=crash_at, down_us=down_for, server=1)
    plan = FaultPlan(faults=(crash_spec,), name="crash-recover")
    modes = _resilience_modes()

    recovery = ExperimentResult(
        experiment_id="ext-faults-crash",
        title="Crash-and-recover ({:.0f}us down) at {:.0%} load: goodput "
              "and MTTR per policy x resilience mechanism".format(
                  down_for, LOAD_FRACTION),
        headers=["policy", "mechanism", "goodput", "slo_goodput", "p999",
                 "mttr_us", "lost", "retries", "hedges", "failed"],
    )
    crash_cells = [
        (policy, label, config)
        for policy in CRASH_POLICIES
        for label, config in modes
    ]
    baseline_jobs = [fault_job(policy) for policy in CRASH_POLICIES]
    crash_jobs = [
        fault_job(policy, plan=plan, resilience=config)
        for policy, label, config in crash_cells
    ]
    all_outcomes = runner.map(baseline_jobs + crash_jobs)
    clean_by_policy = dict(zip(CRASH_POLICIES, all_outcomes))
    crash_outcomes = all_outcomes[len(CRASH_POLICIES):]
    restored = {}
    for (policy, label, _config), outcome in zip(crash_cells, crash_outcomes):
        mttr = outcome["mttr_us"]
        recovery.add_row(
            policy, label, round(outcome["goodput"], 4),
            round(outcome["slo_goodput"], 4), round(outcome["p999"], 2),
            round(mttr, 1) if mttr == mttr else "-",
            outcome["lost"], outcome["retries"], outcome["hedges"],
            outcome["failed"],
        )
        restored[(policy, label)] = (
            outcome["goodput"] / clean_by_policy[policy]["goodput"]
        )
    for policy in CRASH_POLICIES:
        recovery.summary["{}_goodput_none".format(policy)] = restored[
            (policy, "none")
        ]
        recovery.summary["{}_goodput_retry".format(policy)] = restored[
            (policy, "retry")
        ]
    recovery.summary["retry_restores_90pct"] = all(
        restored[(policy, "retry")] >= 0.9 for policy in CRASH_POLICIES
    )
    recovery.note(
        "without resilience the crash's in-flight and blindly-routed "
        "requests are lost for the whole down window; the detector "
        "blacklists the suspect within its timeout and retries re-launch "
        "the stragglers elsewhere"
    )
    results.append(recovery)
    return results
