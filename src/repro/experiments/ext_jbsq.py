"""Extension: JBSQ(k) depth sweep (section 3.2's design choice).

The paper argues k must be just large enough to hide the dispatcher-worker
communication delay — k=2 for microsecond service times, with
k = ceil(cnext/S) + 1 as the rule of thumb — and that larger k only hurts
tail latency without throughput benefit.  This ablation sweeps k at a fixed
high load on exponential 5 µs requests (short enough for handoff costs to
matter, variable enough for imbalance to show) and reports tail slowdown
and worker idle time.
"""

from repro.core.presets import concord_no_steal
from repro.core.server import Server
from repro.experiments.common import ExperimentResult, scale_for
from repro.hardware import c6420
from repro.metrics.slowdown import summarize_slowdowns
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.distributions import bimodal

DEPTHS = [1, 2, 3, 4, 6]
QUANTUM_US = 20.0  # rarely fires: this ablation isolates queueing


def run(quality="standard", seed=1):
    scale = scale_for(quality)
    machine = c6420(8)
    # Short requests (handoff costs matter) with enough size spread for
    # deep local queues to cause imbalance, and a bounded slowdown
    # denominator (no near-zero service times).
    workload = bimodal(75, 1.0, 25, 4.0)
    load = 0.92 * machine.num_workers * 1e6 / workload.mean_us()
    result = ExperimentResult(
        experiment_id="ext-jbsq",
        title="JBSQ(k) depth ablation at {:.0f} kRps (Bimodal(75:1,25:4), in-process "
              "load)".format(load / 1e3),
        headers=["k", "p50", "p999", "worker_idle_pct"],
    )
    tails = {}
    idles = {}
    for depth in DEPTHS:
        config = concord_no_steal(QUANTUM_US, jbsq_depth=depth).replace(
            name="JBSQ({})".format(depth), rx_cost_cycles=50,
        )
        server = Server(machine, config, seed=seed)
        sim = server.run(
            workload, PoissonProcess(load), scale.num_requests
        )
        summary = summarize_slowdowns(sim.slowdowns())
        idle_pct = 100.0 * sim.worker_idle_fraction()
        tails[depth] = summary.p999
        idles[depth] = idle_pct
        result.add_row(depth, summary.p50, summary.p999, idle_pct)

    result.summary["idle_reduction_k1_to_k2_pct"] = idles[1] - idles[2]
    result.summary["tail_penalty_k6_vs_k2"] = tails[6] - tails[2]
    result.summary["rule_of_thumb_k"] = 2  # ceil(400 / 13000) + 1
    result.note(
        "expected: k=1 (pure single queue) idles workers on every handoff; "
        "k=2 removes the idle time; k>2 only degrades the tail"
    )
    return result
