"""Extension: scheduling policies beyond FCFS/PS.

Section 3.1 argues Concord's dispatcher — with global visibility of all
requests — "can easily be extended to support algorithms such as Shortest
Remaining Processing Time".  This experiment runs Concord with the SRPT
central-queue order against the default FCFS(+PS requeue) on the
high-dispersion bimodal workload, where SRPT should crush the short
requests' tail at the cost of long-request latency.
"""

from repro.core.presets import concord
from repro.core.server import Server
from repro.experiments.common import ExperimentResult, scale_for
from repro.hardware import c6420
from repro.metrics.slowdown import summarize_slowdowns
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.named import bimodal_50_1_50_100

QUANTUM_US = 5.0


def run(quality="standard", seed=1):
    scale = scale_for(quality)
    machine = c6420()
    workload = bimodal_50_1_50_100()
    load = 0.75 * machine.num_workers * 1e6 / workload.mean_us()
    result = ExperimentResult(
        experiment_id="ext-policies",
        title="FCFS vs SRPT on Concord at {:.0f} kRps "
              "(Bimodal(50:1,50:100))".format(load / 1e3),
        headers=["policy", "class", "p50", "p99", "p999"],
    )
    tails = {}
    for policy in ("fcfs", "srpt"):
        config = concord(QUANTUM_US, policy=policy).replace(
            name="Concord-{}".format(policy.upper())
        )
        server = Server(machine, config, seed=seed)
        sim = server.run(workload, PoissonProcess(load), scale.num_requests)
        records = sim.measured_records()
        for kind in ("short", "long", "all"):
            subset = [
                r.slowdown() for r in records
                if kind == "all" or r.kind == kind
            ]
            summary = summarize_slowdowns(subset)
            result.add_row(policy, kind, summary.p50, summary.p99,
                           summary.p999)
            tails[(policy, kind)] = summary.p999

    result.summary["short_p999_fcfs"] = tails[("fcfs", "short")]
    result.summary["short_p999_srpt"] = tails[("srpt", "short")]
    result.summary["long_p999_fcfs"] = tails[("fcfs", "long")]
    result.summary["long_p999_srpt"] = tails[("srpt", "long")]
    result.note(
        "expected: SRPT improves the short-request tail and degrades the "
        "long-request tail relative to FCFS+PS"
    )
    return result
