"""Extension: the safety-first preemption microbenchmark of section 3.1.

The paper describes crafting a workload where a single LevelDB GET API
call runs for ~100 µs: the Shinjuku prototype — which disables preemption
across entire API calls — cannot preempt the worker for the whole call,
while Concord's 4-line lock counter defers preemption only inside the
(tiny) critical section.  "For this microbenchmark, Concord improved
throughput by 4x in comparison to Shinjuku while meeting the same
tail-latency SLO."
"""

from repro.core.config import ApiWindowSafety
from repro.core.presets import concord, shinjuku
from repro.experiments.loadcurves import slowdown_vs_load
from repro.hardware import cloud_vm_4core
from repro.kvstore import concord_lock_counter_safety
from repro.workloads.distributions import ClassMix, Fixed, RequestClass

QUANTUM_US = 5.0
LONG_GET_US = 100.0


def run(quality="standard", seed=1):
    machine = cloud_vm_4core()
    # Mostly short GETs plus pathological 100us GET API calls, served by
    # the small-VM configuration where a blocked worker really hurts.
    workload = ClassMix(
        [
            RequestClass("GET", 0.92, Fixed(0.6)),
            RequestClass("LONG_GET", 0.08, Fixed(LONG_GET_US)),
        ],
        name="LevelDB long-GET microbenchmark",
    )
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    configs = [
        shinjuku(
            QUANTUM_US,
            # Preemption disabled for the entire (100us) GET API call.
            safety=ApiWindowSafety({"GET": 0.6, "LONG_GET": LONG_GET_US}),
        ),
        concord(QUANTUM_US, safety=concord_lock_counter_safety()),
    ]
    result = slowdown_vs_load(
        experiment_id="ext-safety",
        title="Safety-first preemption: 100us GET API call "
              "(API-window vs lock-counter deferral)",
        machine=machine,
        configs=configs,
        workload=workload,
        max_load_rps=max_load,
        quality=quality,
        seed=seed,
        low_fraction=0.02,
        high_fraction=1.0,
        baseline="Shinjuku",
        contender="Concord",
    )
    result.note(
        "paper anecdote: Shinjuku cannot preempt for up to 100us, Concord "
        "improves throughput ~4x at the same tail-latency SLO"
    )
    return result
