"""Extension: overcoming the single-dispatcher bottleneck (section 6).

The paper names two escape hatches for high core counts and tiny service
times: replication (multiple single-dispatcher instances over disjoint
cores) and single-logical-queue designs (no dispatcher at all, Concord's
cooperation driven by a scheduler hyperthread).  This experiment measures
both on the dispatcher-bound Fixed(1 µs) workload and on a high-dispersion
bimodal, reporting sustained tails at loads beyond one dispatcher's
ceiling.
"""

from repro.core import (
    LogicalQueueServer,
    ReplicatedServer,
    Server,
    concord,
    logical_queue_concord,
)
from repro.experiments.common import ExperimentResult, scale_for
from repro.hardware import c6420
from repro.metrics.slowdown import summarize_slowdowns
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.named import bimodal_50_1_50_100, fixed_1us

QUANTUM_US = 5.0
FIXED_LOADS_MRPS = [3.0, 4.0, 5.0, 6.0]


def _p999(result):
    return summarize_slowdowns(result.slowdowns()).p999


def run(quality="standard", seed=1):
    scale = scale_for(quality)
    machine = c6420()
    n = scale.num_requests
    results = []

    # Part 1: Fixed(1us), where one dispatcher tops out around 4.3 MRps.
    fixed = ExperimentResult(
        experiment_id="ext-scaling-fixed1",
        title="Beyond the dispatcher bottleneck on Fixed(1us): replication "
              "and the single logical queue",
        headers=["load_mrps", "Concord (1 dispatcher)",
                 "Concord x2 (replicated)", "Concord-logical (no dispatcher)"],
    )
    sustained = {"single": 0.0, "replicated": 0.0, "logical": 0.0}
    for load_mrps in FIXED_LOADS_MRPS:
        load = load_mrps * 1e6
        row = [load_mrps]
        single = Server(machine, concord(QUANTUM_US), seed=seed).run(
            fixed_1us(), PoissonProcess(load), n
        )
        tail = _p999(single)
        row.append(tail)
        if tail <= 50:
            sustained["single"] = load_mrps

        replicated = ReplicatedServer(
            machine, concord(QUANTUM_US), num_partitions=2, seed=seed
        ).run(fixed_1us(), PoissonProcess(load), n)
        tail = _p999(replicated)
        row.append(tail)
        if tail <= 50:
            sustained["replicated"] = load_mrps

        logical = LogicalQueueServer(
            machine, logical_queue_concord(QUANTUM_US), seed=seed
        ).run(fixed_1us(), PoissonProcess(load), n)
        tail = _p999(logical)
        row.append(tail)
        if tail <= 50:
            sustained["logical"] = load_mrps
        fixed.add_row(*row)

    fixed.summary["single_dispatcher_sustained_mrps"] = sustained["single"]
    fixed.summary["replicated_sustained_mrps"] = sustained["replicated"]
    fixed.summary["logical_queue_sustained_mrps"] = sustained["logical"]
    fixed.note(
        "expected: one dispatcher saturates ~4.3 MRps; both section-6 "
        "designs push past it"
    )
    results.append(fixed)

    # Part 2: high dispersion — the logical queue's load balancing relies
    # on stealing, so its tail trails the global-visibility dispatcher's.
    workload = bimodal_50_1_50_100()
    load = 0.65 * machine.num_workers * 1e6 / workload.mean_us()
    dispersion = ExperimentResult(
        experiment_id="ext-scaling-bimodal",
        title="Single logical queue vs single physical queue at {:.0f} kRps "
              "(Bimodal(50:1,50:100))".format(load / 1e3),
        headers=["system", "p50", "p999", "steals_or_util"],
    )
    physical = Server(machine, concord(QUANTUM_US), seed=seed).run(
        workload, PoissonProcess(load), n
    )
    summary = summarize_slowdowns(physical.slowdowns())
    dispersion.add_row(
        "Concord (dispatcher)", summary.p50, summary.p999,
        round(physical.dispatcher_utilization(), 3),
    )
    physical_tail = summary.p999

    logical = LogicalQueueServer(
        machine, logical_queue_concord(QUANTUM_US), seed=seed
    ).run(workload, PoissonProcess(load), n)
    summary = summarize_slowdowns(logical.slowdowns())
    dispersion.add_row(
        "Concord-logical (stealing)", summary.p50, summary.p999,
        logical.dispatcher_stats["steals_started"],
    )
    dispersion.summary["physical_p999"] = physical_tail
    dispersion.summary["logical_p999"] = summary.p999
    dispersion.note(
        "expected: global visibility balances the heavy tail better than "
        "stealing; the logical queue wins only where the dispatcher is the "
        "bottleneck"
    )
    results.append(dispersion)
    return results
