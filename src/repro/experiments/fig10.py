"""Fig. 10: the LevelDB server under Meta's ZippyDB production mix
(78% GET / 13% PUT / 6% DELETE / 3% SCAN), quantum 5 µs.

Expected: Concord sustains ~19% more load than Shinjuku — in line with
Fig. 7's Bimodal(99.5:0.5, 0.5:500), whose shape this mix resembles.
"""

from repro.core.presets import concord, persephone_fcfs, shinjuku
from repro.experiments.loadcurves import slowdown_vs_load
from repro.hardware import c6420
from repro.kvstore import (
    concord_lock_counter_safety,
    shinjuku_api_window_safety,
)
from repro.workloads.named import leveldb_zippydb

QUANTUM_US = 5.0


def run(quality="standard", seed=1):
    workload = leveldb_zippydb()
    machine = c6420()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    configs = [
        persephone_fcfs(),
        shinjuku(QUANTUM_US, safety=shinjuku_api_window_safety()),
        concord(QUANTUM_US, safety=concord_lock_counter_safety()),
    ]
    result = slowdown_vs_load(
        experiment_id="fig10",
        title="LevelDB ZippyDB production mix, quantum 5us",
        machine=machine,
        configs=configs,
        workload=workload,
        max_load_rps=max_load,
        quality=quality,
        seed=seed,
        low_fraction=0.2,
        high_fraction=1.02,
        baseline="Shinjuku",
        contender="Concord",
    )
    result.note(
        "paper: Concord supports 19% greater throughput than Shinjuku for "
        "the target 50x slowdown"
    )
    return result
