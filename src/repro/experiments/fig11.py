"""Fig. 11: cumulative mechanism ablation on the LevelDB 50/50 workload.

Four systems, each adding one Concord mechanism:
Shinjuku (IPIs+SQ) -> Co-op+SQ -> Co-op+JBSQ(2) -> full Concord
(+ work-conserving dispatcher), plus Persephone-FCFS for reference.
Paper knees at the 50x SLO: ~19, ~22.5, ~32, ~35 kRps (2 µs quantum,
the configuration of Fig. 9(b)).
"""

from repro.core.presets import (
    concord,
    coop_jbsq,
    coop_single_queue,
    persephone_fcfs,
    shinjuku,
)
from repro.experiments.loadcurves import slowdown_vs_load
from repro.hardware import c6420
from repro.kvstore import (
    concord_lock_counter_safety,
    shinjuku_api_window_safety,
)
from repro.workloads.named import leveldb_50get_50scan

QUANTUM_US = 2.0


def run(quality="standard", seed=1):
    workload = leveldb_50get_50scan()
    machine = c6420()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    concord_safety = concord_lock_counter_safety()
    configs = [
        persephone_fcfs(),
        shinjuku(QUANTUM_US, safety=shinjuku_api_window_safety()).replace(
            name="Shinjuku: IPIs+SQ"
        ),
        coop_single_queue(QUANTUM_US, safety=concord_safety),
        coop_jbsq(QUANTUM_US, safety=concord_safety),
        concord(QUANTUM_US, safety=concord_safety).replace(
            name="Concord: Co-op+JBSQ(2)+dispatcher work"
        ),
    ]
    result = slowdown_vs_load(
        experiment_id="fig11",
        title="Mechanism ablation, LevelDB 50% GET / 50% SCAN, quantum 2us",
        machine=machine,
        configs=configs,
        workload=workload,
        max_load_rps=max_load,
        quality=quality,
        seed=seed,
        low_fraction=0.2,
        high_fraction=0.95,
        baseline="Shinjuku: IPIs+SQ",
        contender="Concord: Co-op+JBSQ(2)+dispatcher work",
    )
    result.note(
        "paper: knees ~19 kRps (Shinjuku) -> ~22.5 (Co-op+SQ) -> ~32 "
        "(Co-op+JBSQ(2)) -> ~35 (full Concord)"
    )
    return result
