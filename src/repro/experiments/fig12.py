"""Fig. 12: reduction in end-to-end preemption overhead, broken down by
mechanism, vs scheduling quantum.

Unlike Fig. 2, this experiment *yields* on every preemption: the cost
includes the notification, the context switch, and the wait for the next
request.  The paper measures the time to service back-to-back 500 µs
requests on three cumulative systems — Shinjuku (IPIs+SQ), Co-op+SQ, and
Concord (Co-op+JBSQ(2)) — and reports the throughput overhead vs an ideal
uninterrupted run.  Expected: Concord reduces the overhead ~4x overall,
with compiler-enforced cooperation contributing most.

Here the full DES runs each system at saturation on Fixed(500 µs) work and
the overhead is 1 - achieved/ideal throughput.
"""

from repro.core.presets import coop_jbsq, coop_single_queue, shinjuku
from repro.core.server import Server
from repro.experiments.common import ExperimentResult, scale_for
from repro.hardware import c6420
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.distributions import ClassMix, Fixed, RequestClass

QUANTA_US = [1, 5, 10, 25, 50, 100]
SERVICE_US = 500.0
NUM_WORKERS = 8


def _configs(quantum):
    return [
        shinjuku(quantum).replace(name="Shinjuku: IPIs+SQ"),
        coop_single_queue(quantum),
        coop_jbsq(quantum).replace(name="Concord: Co-op+JBSQ(2)"),
    ]


def run(quality="standard", seed=1):
    scale = scale_for(quality)
    machine = c6420(NUM_WORKERS)
    workload = ClassMix(
        [RequestClass("spin", 1.0, Fixed(SERVICE_US))], name="Fixed(500)"
    )
    ideal_rps = machine.num_workers * 1e6 / SERVICE_US
    # Enough requests for a stable throughput estimate; 500us requests are
    # heavy, so scale down from the sweep preset.
    num_requests = max(200, scale.num_requests // 20)
    duration_us = num_requests / (1.3 * ideal_rps) * 1e6

    names = [c.name for c in _configs(QUANTA_US[0])]
    result = ExperimentResult(
        experiment_id="fig12",
        title="Preemption overhead vs quantum with yields (500us requests, "
              "{} workers)".format(NUM_WORKERS),
        headers=["quantum_us"] + names,
    )
    overhead_at = {}
    for quantum in QUANTA_US:
        row = [quantum]
        for config in _configs(quantum):
            server = Server(machine, config, seed=seed)
            sim = server.run(
                workload, PoissonProcess(1.3 * ideal_rps), num_requests,
                until_us=duration_us,
            )
            overhead = max(0.0, 100.0 * (1.0 - sim.goodput_fraction()))
            row.append(overhead)
            overhead_at[(config.name, quantum)] = overhead
        result.add_row(*row)

    shinjuku_1us = overhead_at[(names[0], 1)]
    concord_1us = overhead_at[(names[2], 1)]
    if concord_1us > 0:
        result.summary["shinjuku_vs_concord_overhead_ratio_at_1us"] = (
            shinjuku_1us / concord_1us
        )
    result.summary["shinjuku_overhead_pct_at_1us"] = shinjuku_1us
    result.summary["concord_overhead_pct_at_1us"] = concord_1us
    result.note(
        "paper: Concord reduces preemptive-scheduling overhead ~4x vs "
        "Shinjuku; cooperation contributes most since every request is "
        "preempted repeatedly"
    )
    return result
