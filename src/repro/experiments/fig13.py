"""Fig. 13: does the work-conserving dispatcher help small cloud VMs?

The 4-vCPU configuration (1 dispatcher + 1 networker + 2 workers) serves
the LevelDB 50/50 workload; with so few workers the dedicated dispatcher
is idle almost all the time, and letting it run application code buys
~33% more throughput at the 50x SLO.
"""

from repro.core.presets import concord, concord_no_steal
from repro.experiments.loadcurves import slowdown_vs_load
from repro.hardware import cloud_vm_4core
from repro.kvstore import concord_lock_counter_safety
from repro.workloads.named import leveldb_50get_50scan

QUANTUM_US = 5.0


def run(quality="standard", seed=1):
    workload = leveldb_50get_50scan()
    machine = cloud_vm_4core()
    # Two workers plus a mostly-idle dispatcher: include the dispatcher's
    # potential contribution in the swept range.
    max_load = 1.45 * machine.num_workers * 1e6 / workload.mean_us()
    safety = concord_lock_counter_safety()
    configs = [
        concord_no_steal(QUANTUM_US, safety=safety),
        concord(QUANTUM_US, safety=safety),
    ]
    result = slowdown_vs_load(
        experiment_id="fig13",
        title="4-core VM: dedicated vs work-conserving dispatcher "
              "(LevelDB 50/50, quantum 5us)",
        machine=machine,
        configs=configs,
        workload=workload,
        max_load_rps=max_load,
        quality=quality,
        seed=seed,
        low_fraction=0.15,
        high_fraction=0.9,
        baseline="Concord w/o dispatcher work",
        contender="Concord",
    )
    result.note(
        "paper: running application logic on the dispatcher improves "
        "throughput by ~33% in the 4-core configuration"
    )
    return result
