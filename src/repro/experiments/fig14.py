"""Fig. 14: the drawback of approximate scheduling — Concord's slightly
higher tail slowdown at *low* load.

A zoom of Fig. 6(a)'s low-load region: requests occasionally stolen by the
dispatcher during bursts run slower (rdtsc-instrumented code, interleaved
with dispatching) and cannot migrate back, adding ~3 to the p99.9 slowdown
vs Shinjuku.  Disabling work stealing recovers the difference.

Reproduction note: with pure Poisson arrivals the 28 JBSQ slots (14 workers
x k=2) essentially never fill at low load, so the dispatcher never steals
and the penalty does not appear.  The paper's testbed traffic is burstier
than Poisson at microsecond timescales (NIC batching, closed-loop client
packing), so this experiment uses the Markov-modulated Poisson process with
short 4x bursts — which recreates exactly the "occasional bursts even at
low loads" the paper attributes the penalty to (section 5.5).
"""

from repro.core.presets import concord, concord_no_steal, persephone_fcfs, shinjuku
from repro.experiments.common import (
    ExperimentResult,
    scale_for,
    sweep_systems,
)
from repro.hardware import c6420
from repro.workloads.arrivals import MarkovModulatedPoisson
from repro.workloads.named import bimodal_50_1_50_100

QUANTUM_US = 5.0


def _bursty(rate_rps):
    return MarkovModulatedPoisson(
        rate_rps, burst_factor=4.0, burst_fraction=0.12, mean_dwell_us=400.0
    )


def run(quality="standard", seed=1):
    scale = scale_for(quality)
    workload = bimodal_50_1_50_100()
    machine = c6420()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    # Low-load region only: 10%..55% of capacity.
    loads = [
        max_load * (0.10 + 0.45 * i / (scale.load_points - 1))
        for i in range(scale.load_points)
    ]
    configs = [
        persephone_fcfs(),
        shinjuku(QUANTUM_US),
        concord(QUANTUM_US),
        concord_no_steal(QUANTUM_US),
    ]
    sweeps = sweep_systems(
        machine, configs, workload, loads, scale.num_requests, seed=seed,
        arrival_factory=_bursty,
    )
    result = ExperimentResult(
        experiment_id="fig14",
        title="Low-load zoom of Fig. 6(a): the cost of dispatcher work "
              "stealing (bursty arrivals)",
        headers=["load_krps"] + [c.name for c in configs] + ["steals"],
    )
    shinjuku_gaps = []
    steal_gaps = []
    for i, load in enumerate(loads):
        row = [load / 1e3]
        for config in configs:
            row.append(sweeps[config.name].points[i].p999)
        row.append(sweeps["Concord"].points[i].steals)
        result.add_row(*row)
        shinjuku_gaps.append(
            sweeps["Concord"].points[i].p999
            - sweeps["Shinjuku"].points[i].p999
        )
        steal_gaps.append(
            sweeps["Concord"].points[i].p999
            - sweeps["Concord w/o dispatcher work"].points[i].p999
        )

    result.summary["mean_concord_minus_shinjuku_p999"] = (
        sum(shinjuku_gaps) / len(shinjuku_gaps)
    )
    # The controlled measurement of the stealing penalty: identical system,
    # stealing toggled (the mitigation section 5.5 itself proposes).
    result.summary["mean_steal_penalty_p999"] = (
        sum(steal_gaps) / len(steal_gaps)
    )
    result.summary["max_steal_penalty_p999"] = max(steal_gaps)
    result.summary["total_steals"] = sum(
        p.steals for p in sweeps["Concord"].points
    )
    result.note(
        "paper: Concord's p99.9 slowdown sits ~3 above Shinjuku's at low "
        "load because burst-stolen requests finish slower on the dispatcher;"
        " disabling stealing (Concord w/o dispatcher work) removes the gap."
        " In our model Shinjuku's own burst handling is costlier, so the"
        " penalty is isolated by the Concord vs Concord-w/o-stealing pair."
    )
    return result
