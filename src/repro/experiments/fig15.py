"""Fig. 15: is Concord future-proof?  Compiler-enforced cooperation vs
Intel's user-space IPIs (UIPIs) on a Sapphire Rapids machine.

Same methodology as Fig. 2 (500 µs requests, no-op handlers) but with the
192-core machine's ~1.5x more expensive coherence misses.  Expected:
Concord's overhead stays ~2x below UIPIs — interrupts still cross the same
coherence fabric as the cache-line write, plus delivery costs.
"""

from repro.core.preemption import (
    CacheLineCooperation,
    RdtscSelfPreemption,
    UserIPI,
)
from repro.experiments.common import ExperimentResult
from repro.hardware import sapphire_rapids
from repro.models.overhead import preemption_notification_overhead

QUANTA_US = [1, 2, 5, 10, 25, 50, 100]


def run(quality="standard", seed=1):
    machine = sapphire_rapids()
    clock = machine.clock
    mechanisms = [
        ("User-space IPIs", UserIPI(coherence=machine.coherence)),
        ("rdtsc() instrumentation", RdtscSelfPreemption()),
        ("Concord's compiler-enforced cooperation",
         CacheLineCooperation(coherence=machine.coherence)),
    ]
    result = ExperimentResult(
        experiment_id="fig15",
        title="Preemption overhead on Sapphire Rapids: Concord vs Intel "
              "user-space IPIs",
        headers=["quantum_us"] + [name for name, _ in mechanisms],
    )
    ratios = []
    for quantum in QUANTA_US:
        row = [quantum]
        overheads = {}
        for name, mechanism in mechanisms:
            overhead = 100.0 * preemption_notification_overhead(
                mechanism, quantum, clock
            )
            overheads[name] = overhead
            row.append(overhead)
        result.add_row(*row)
        concord = overheads["Concord's compiler-enforced cooperation"]
        if concord > 0 and quantum <= 10:
            ratios.append(overheads["User-space IPIs"] / concord)

    result.summary["uipi_vs_concord_mean_ratio_small_quanta"] = (
        sum(ratios) / len(ratios)
    )
    result.note(
        "paper: Concord imposes ~2x lower overhead than UIPIs; coherence "
        "misses are ~1.5x pricier on this machine, raising Concord's "
        "absolute overhead slightly vs Fig. 2"
    )
    return result
