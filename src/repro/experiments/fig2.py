"""Fig. 2: overhead of preemption mechanisms vs scheduling quantum.

The paper services 1M back-to-back 500 µs requests with no-op preemption
handlers, isolating the notification + instrumentation cost of each
mechanism: Shinjuku's posted IPIs, Compiler-Interrupts-style rdtsc()
probes, and Concord's cache-line cooperation.  That measurement is pure
per-request arithmetic, so we regenerate it from the analytical model of
section 2 (Eqs. 2-3) with the mechanisms' cost parameters.

Expected shape: IPI overhead ~ 1/q (≈33% at 2 µs, ≈6% at 10 µs); rdtsc
flat ≈21%; Concord near-flat ≈1-2%.
"""

from repro.core.preemption import (
    CacheLineCooperation,
    PostedIPI,
    RdtscSelfPreemption,
)
from repro.experiments.common import ExperimentResult
from repro.hardware import CycleClock
from repro.models.overhead import preemption_notification_overhead

QUANTA_US = [1, 5, 10, 25, 50, 100]
EXTRA_QUANTA_US = [2]  # called out in the paper's text


def run(quality="standard", seed=1):
    clock = CycleClock()
    mechanisms = [
        ("Posted IPIs (Shinjuku)", PostedIPI()),
        ("rdtsc() instrumentation", RdtscSelfPreemption()),
        ("Concord instrumentation", CacheLineCooperation()),
    ]
    result = ExperimentResult(
        experiment_id="fig2",
        title="Preemption mechanism overhead vs scheduling quantum "
              "(500us requests, no-op handlers)",
        headers=["quantum_us"] + [name for name, _ in mechanisms],
    )
    for quantum in sorted(QUANTA_US + EXTRA_QUANTA_US):
        row = [quantum]
        for _name, mechanism in mechanisms:
            overhead = preemption_notification_overhead(
                mechanism, quantum, clock
            )
            row.append(100.0 * overhead)
        result.add_row(*row)

    ipi_2us = 100 * preemption_notification_overhead(PostedIPI(), 2.0, clock)
    ipi_10us = 100 * preemption_notification_overhead(PostedIPI(), 10.0, clock)
    concord_2us = 100 * preemption_notification_overhead(
        CacheLineCooperation(), 2.0, clock
    )
    result.summary["ipi_overhead_pct_at_2us"] = ipi_2us
    result.summary["ipi_overhead_pct_at_10us"] = ipi_10us
    result.summary["concord_overhead_pct_at_2us"] = concord_2us
    result.summary["ipi_vs_concord_ratio_at_2us"] = ipi_2us / concord_2us
    result.note(
        "paper: IPIs ~33% at 2us and ~6% at 10us; rdtsc ~21% flat; "
        "Concord ~1-1.5%, 12x below IPIs at 2us"
    )
    return result
