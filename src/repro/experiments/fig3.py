"""Fig. 3: worker idle time awaiting the next request, single queue vs
JBSQ(2), as a function of service time.

The paper's microbenchmark runs 8 workers with load injected in-process
(no network receive path — the networker hyperthread absorbs it) and
measures, at worker saturation, the fraction of time workers sit idle
between requests — the cnext cost of section 2.2.2.

Expected shape: SQ overhead roughly proportional to 1/S (tens of percent
at 1 µs, where multiple workers finish while the dispatcher is busy
serving another); JBSQ(2) 9-13x lower.
"""

from repro import constants
from repro.core.config import RuntimeConfig
from repro.core.server import Server
from repro.experiments.common import ExperimentResult, scale_for
from repro.hardware import c6420
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.distributions import ClassMix, Fixed, RequestClass

SERVICE_TIMES_US = [1, 5, 10, 25, 50, 100]
NUM_WORKERS = 8

#: In-process load injection: enqueueing to the central queue is a couple
#: of L1 writes, not a NIC ring dequeue.
INPROC_RX_CYCLES = 50


def _shinjuku_sq():
    # Fixed service times never span the quantum, so preemption is moot;
    # what Fig. 3 isolates is the queue discipline.
    return RuntimeConfig(
        name="Shinjuku (SQ)", queue_mode="sq", rx_cost_cycles=INPROC_RX_CYCLES
    )


def _persephone_sq():
    return RuntimeConfig(
        name="Persephone (SQ)",
        queue_mode="sq",
        dispatch_cost_scale=1.1,
        rx_cost_cycles=INPROC_RX_CYCLES,
    )


def _concord_jbsq():
    return RuntimeConfig(
        name="Concord (JBSQ)",
        queue_mode="jbsq",
        jbsq_depth=constants.DEFAULT_JBSQ_DEPTH,
        rx_cost_cycles=INPROC_RX_CYCLES,
    )


def _offered_load_rps(machine, config, service_us):
    """Keep workers backlogged without drowning the dispatcher: just above
    the workers' effective capacity, capped below the dispatcher's."""
    clock = machine.clock
    service = clock.us_to_cycles(service_us)
    if config.queue_mode == "sq":
        per_request = (
            service
            + constants.COOP_CONTEXT_SWITCH_CYCLES
            + constants.SQ_HANDOFF_CYCLES
        )
    else:
        per_request = (
            service
            + constants.COOP_CONTEXT_SWITCH_CYCLES
            + constants.JBSQ_RESIDUAL_CYCLES
        )
    worker_cap = machine.num_workers * clock.freq_hz / per_request
    per_dispatch = (
        INPROC_RX_CYCLES
        + constants.DISPATCH_PUSH_CYCLES
        + (constants.JBSQ_SHORTEST_QUEUE_CYCLES
           if config.queue_mode == "jbsq" else 0)
    ) * config.dispatch_cost_scale
    dispatcher_cap = clock.freq_hz / per_dispatch
    return min(1.08 * worker_cap, 0.97 * dispatcher_cap)


def run(quality="standard", seed=1):
    scale = scale_for(quality)
    machine = c6420(NUM_WORKERS)
    configs = [_shinjuku_sq(), _persephone_sq(), _concord_jbsq()]
    result = ExperimentResult(
        experiment_id="fig3",
        title="Worker idle overhead vs service time ({} workers, "
              "saturation)".format(NUM_WORKERS),
        headers=["service_us"] + [c.name for c in configs],
    )
    idle_at_1us = {}
    for service_us in SERVICE_TIMES_US:
        workload = ClassMix(
            [RequestClass("fixed", 1.0, Fixed(service_us))],
            name="Fixed({})".format(service_us),
        )
        row = [service_us]
        for config in configs:
            rate = _offered_load_rps(machine, config, service_us)
            duration_us = scale.num_requests / rate * 1e6
            num_requests = int(rate * duration_us / 1e6) + 1
            server = Server(machine, config, seed=seed)
            sim = server.run(
                workload, PoissonProcess(rate), num_requests,
                until_us=duration_us,
            )
            idle_pct = 100.0 * sim.worker_idle_fraction()
            row.append(idle_pct)
            if service_us == 1:
                idle_at_1us[config.name] = idle_pct
        result.add_row(*row)

    sq = idle_at_1us.get("Shinjuku (SQ)", 0.0)
    jbsq = idle_at_1us.get("Concord (JBSQ)", 1.0)
    if jbsq > 0:
        result.summary["sq_vs_jbsq_idle_ratio_at_1us"] = sq / jbsq
    result.note(
        "paper: SQ idle overhead is inversely proportional to service time "
        "(~30-40% at 1us); JBSQ(2) is 9-13x lower"
    )
    return result
