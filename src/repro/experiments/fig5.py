"""Fig. 5: the impact of non-instantaneous preemption on tail slowdown.

A pure queueing simulation (all mechanism costs zeroed): single queue,
Bimodal(99.5:0.5, 0.5:500), 5 µs quantum, with preemption delivered (a)
precisely, (b) lagged by one-sided Normal noise N(5,1) / N(5,2), or (c) not
at all.  Expected shape: the lagged curves hug precise preemption; no
preemption blows past the SLO at a fraction of the load.
"""

from repro.core.presets import ideal_single_queue
from repro.experiments.common import (
    ExperimentResult,
    scale_for,
    sweep_systems,
)
from repro.hardware import c6420
from repro.workloads.named import bimodal_995_05_500

NUM_WORKERS = 14
QUANTUM_US = 5.0


def run(quality="standard", seed=1):
    scale = scale_for(quality)
    machine = c6420(NUM_WORKERS)
    workload = bimodal_995_05_500()
    configs = [
        ideal_single_queue(name="Single Queue (no preemption)"),
        ideal_single_queue(QUANTUM_US, 0.0, name="Precise preemption: N(5,0)"),
        ideal_single_queue(QUANTUM_US, 1.0, name="Preemption with variance: N(5,1)"),
        ideal_single_queue(QUANTUM_US, 2.0, name="Preemption with variance: N(5,2)"),
    ]
    max_load = NUM_WORKERS * 1e6 / workload.mean_us()
    loads = [
        fraction * max_load
        for fraction in _fractions(scale.load_points)
    ]
    sweeps = sweep_systems(
        machine, configs, workload, loads, scale.num_requests, seed=seed
    )
    result = ExperimentResult(
        experiment_id="fig5",
        title="p99.9 slowdown vs load fraction: precise vs noisy vs no "
              "preemption (ideal queueing model)",
        headers=["load_fraction"] + [c.name for c in configs],
    )
    for i, load in enumerate(loads):
        row = [load / max_load]
        for config in configs:
            row.append(sweeps[config.name].points[i].p999)
        result.add_row(*row)

    precise = sweeps["Precise preemption: N(5,0)"]
    noisy = sweeps["Preemption with variance: N(5,2)"]
    blocked = sweeps["Single Queue (no preemption)"]
    result.summary["precise_knee_fraction"] = precise.knee() / max_load
    result.summary["noisy_n52_knee_fraction"] = noisy.knee() / max_load
    result.summary["no_preemption_knee_fraction"] = blocked.knee() / max_load
    result.note(
        "paper: small-sigma noisy preemption is almost identical to precise "
        "preemption; no preemption crosses the SLO far earlier"
    )
    return result


def _fractions(points):
    low, high = 0.1, 0.92
    return [low + (high - low) * i / (points - 1) for i in range(points)]
