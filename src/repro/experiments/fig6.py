"""Fig. 6: p99.9 slowdown vs load for Bimodal(50:1, 50:100) — the
YCSB-A-like high-dispersion workload — at 5 µs and 2 µs quanta.

Expected: Concord sustains ~18% more load than Shinjuku at q=5 µs and ~45%
more at q=2 µs; Persephone-FCFS (no preemption) crosses the SLO far
earlier.
"""

from repro.core.presets import concord, persephone_fcfs, shinjuku
from repro.experiments.loadcurves import slowdown_vs_load
from repro.hardware import c6420
from repro.workloads.named import bimodal_50_1_50_100

QUANTA_US = (5.0, 2.0)


def run(quality="standard", seed=1, quanta_us=QUANTA_US):
    workload = bimodal_50_1_50_100()
    machine = c6420()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    results = []
    for quantum in quanta_us:
        configs = [persephone_fcfs(), shinjuku(quantum), concord(quantum)]
        result = slowdown_vs_load(
            experiment_id="fig6-q{:g}us".format(quantum),
            title="Bimodal(50:1, 50:100), quantum {:g}us".format(quantum),
            machine=machine,
            configs=configs,
            workload=workload,
            max_load_rps=max_load,
            quality=quality,
            seed=seed,
            baseline="Shinjuku",
            contender="Concord",
        )
        result.note(
            "paper: Concord sustains {}% greater throughput than Shinjuku "
            "at the 50x slowdown SLO".format(18 if quantum == 5.0 else 45)
        )
        results.append(result)
    return results
