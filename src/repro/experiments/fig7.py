"""Fig. 7: p99.9 slowdown vs load for Bimodal(99.5:0.5, 0.5:500) — the
Meta-USR-like heavy-tailed workload — at 5 µs and 2 µs quanta.

Expected: Concord sustains ~20% more load than Shinjuku at q=5 µs and ~52%
more at q=2 µs.
"""

from repro.core.presets import concord, persephone_fcfs, shinjuku
from repro.experiments.loadcurves import slowdown_vs_load
from repro.hardware import c6420
from repro.workloads.named import bimodal_995_05_500

QUANTA_US = (5.0, 2.0)


def run(quality="standard", seed=1, quanta_us=QUANTA_US):
    workload = bimodal_995_05_500()
    machine = c6420()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    results = []
    for quantum in quanta_us:
        configs = [persephone_fcfs(), shinjuku(quantum), concord(quantum)]
        result = slowdown_vs_load(
            experiment_id="fig7-q{:g}us".format(quantum),
            title="Bimodal(99.5:0.5, 0.5:500), quantum {:g}us".format(quantum),
            machine=machine,
            configs=configs,
            workload=workload,
            max_load_rps=max_load,
            quality=quality,
            seed=seed,
            low_fraction=0.2,
            high_fraction=1.02,
            baseline="Shinjuku",
            contender="Concord",
        )
        result.note(
            "paper: Concord sustains {}% greater throughput than Shinjuku "
            "at the 50x slowdown SLO".format(20 if quantum == 5.0 else 52)
        )
        results.append(result)
    return results
