"""Fig. 8: low-dispersion workloads where preemption does not pay.

Left: Fixed(1 µs) — all three systems bottleneck on the common dispatcher
at roughly the same load, with Concord ~2% lower (JBSQ's shortest-queue
scan).  Right: TPCC (quantum 10 µs to avoid useless preemptions) —
Persephone-FCFS wins outright, but Concord's cheap preemption keeps it
ahead of Shinjuku.
"""

from repro import constants
from repro.core.presets import concord, persephone_fcfs, shinjuku
from repro.experiments.loadcurves import slowdown_vs_load
from repro.hardware import c6420
from repro.workloads.named import fixed_1us, tpcc


def _dispatcher_bound_rps(machine):
    per_request = constants.DISPATCH_RX_CYCLES + constants.DISPATCH_PUSH_CYCLES
    return machine.clock.freq_hz / per_request


def run(quality="standard", seed=1):
    machine = c6420()
    results = []

    fixed = fixed_1us()
    max_fixed = min(
        machine.num_workers * 1e6 / fixed.mean_us(),
        1.05 * _dispatcher_bound_rps(machine),
    )
    result = slowdown_vs_load(
        experiment_id="fig8-fixed1",
        title="Fixed(1us): dispatcher-bound, quantum 5us",
        machine=machine,
        configs=[persephone_fcfs(), shinjuku(5.0), concord(5.0)],
        workload=fixed,
        max_load_rps=max_fixed,
        quality=quality,
        seed=seed,
        low_fraction=0.5,
        baseline="Shinjuku",
        contender="Concord",
    )
    result.note(
        "paper: all three systems saturate together on the dispatcher; "
        "Concord pays ~2% for JBSQ's shortest-queue computation"
    )
    results.append(result)

    tpcc_workload = tpcc()
    max_tpcc = machine.num_workers * 1e6 / tpcc_workload.mean_us()
    result = slowdown_vs_load(
        experiment_id="fig8-tpcc",
        title="TPCC on an in-memory database, quantum 10us",
        machine=machine,
        configs=[persephone_fcfs(), shinjuku(10.0), concord(10.0)],
        workload=tpcc_workload,
        max_load_rps=max_tpcc,
        quality=quality,
        seed=seed,
        low_fraction=0.4,
        baseline="Shinjuku",
        contender="Concord",
    )
    result.note(
        "paper: preemption overheads hurt vs Persephone-FCFS, but Concord "
        "still outperforms Shinjuku thanks to cheap preemption"
    )
    results.append(result)
    return results
