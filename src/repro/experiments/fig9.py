"""Fig. 9: the LevelDB server, 50% GETs / 50% full-database SCANs, at 5 µs
and 2 µs quanta.

The 1000x dispersion between 600 ns GETs and 500 µs SCANs is where all
three Concord mechanisms pay off together.  Expected: Concord sustains
~52% (q=5 µs) and ~83% (q=2 µs) more load than Shinjuku; safety models
follow section 3.1 (Concord's lock counter vs Shinjuku's API windows).
"""

from repro.core.presets import concord, persephone_fcfs, shinjuku
from repro.experiments.loadcurves import slowdown_vs_load
from repro.hardware import c6420
from repro.kvstore import (
    concord_lock_counter_safety,
    shinjuku_api_window_safety,
)
from repro.workloads.named import leveldb_50get_50scan

QUANTA_US = (5.0, 2.0)


def run(quality="standard", seed=1, quanta_us=QUANTA_US):
    workload = leveldb_50get_50scan()
    machine = c6420()
    max_load = machine.num_workers * 1e6 / workload.mean_us()
    results = []
    for quantum in quanta_us:
        configs = [
            persephone_fcfs(),
            shinjuku(quantum, safety=shinjuku_api_window_safety()),
            concord(quantum, safety=concord_lock_counter_safety()),
        ]
        result = slowdown_vs_load(
            experiment_id="fig9-q{:g}us".format(quantum),
            title="LevelDB 50% GET / 50% SCAN, quantum {:g}us".format(quantum),
            machine=machine,
            configs=configs,
            workload=workload,
            max_load_rps=max_load,
            quality=quality,
            seed=seed,
            low_fraction=0.2,
            high_fraction=1.02,
            baseline="Shinjuku",
            contender="Concord",
        )
        result.note(
            "paper: Concord sustains {}% greater throughput than Shinjuku "
            "at the 50x slowdown SLO".format(52 if quantum == 5.0 else 83)
        )
        results.append(result)
    return results
