"""Shared "p99.9 slowdown vs load" experiment shape (Figs. 6-11, 13, 14)."""

from repro import constants
from repro.experiments.common import (
    ExperimentResult,
    load_grid,
    scale_for,
    sweep_systems,
)

__all__ = ["slowdown_vs_load"]


def slowdown_vs_load(experiment_id, title, machine, configs, workload,
                     max_load_rps, quality="standard", seed=1,
                     low_fraction=0.25, high_fraction=1.0, baseline=None,
                     contender=None, slo=constants.SLOWDOWN_SLO,
                     profile=None, runner=None):
    """Run each config across a load grid; report p99.9 curves and knees.

    ``baseline``/``contender`` name two configs whose knee ratio is the
    figure's headline ("Concord sustains X% greater throughput").
    ``runner`` overrides the process-wide parallel runner for the sweep.
    """
    scale = scale_for(quality)
    loads = load_grid(max_load_rps, scale.load_points, low_fraction,
                      high_fraction)
    sweeps = sweep_systems(
        machine, configs, workload, loads, scale.num_requests, seed=seed,
        profile=profile, runner=runner,
    )
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["load_krps"] + [c.name for c in configs],
    )
    for i, load in enumerate(loads):
        row = [load / 1e3]
        for config in configs:
            row.append(sweeps[config.name].points[i].p999)
        result.add_row(*row)

    for config in configs:
        knee = sweeps[config.name].knee(slo)
        result.summary["knee_krps[{}]".format(config.name)] = knee / 1e3

    if baseline and contender:
        base_knee = sweeps[baseline].knee(slo)
        cont_knee = sweeps[contender].knee(slo)
        if base_knee > 0:
            result.summary["{}_vs_{}_improvement_pct".format(
                contender, baseline
            )] = 100.0 * (cont_knee / base_knee - 1.0)
    return result
