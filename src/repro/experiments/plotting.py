"""Turn ExperimentResults into ASCII charts (the CLI's --plot flag)."""

from repro.metrics.plot import ascii_plot

__all__ = ["result_chart"]


def result_chart(result, width=64, height=14):
    """Chart a result whose first column is numeric x and remaining numeric
    columns are series.  Returns None for results that are not chartable
    (e.g. Table 1's per-program rows)."""
    if len(result.headers) < 2 or not result.rows:
        return None
    x_header = result.headers[0]
    numeric_columns = []
    for column in range(1, len(result.headers)):
        values = [row[column] for row in result.rows]
        if all(isinstance(v, (int, float)) for v in values):
            numeric_columns.append(column)
    if not numeric_columns:
        return None
    if not all(isinstance(row[0], (int, float)) for row in result.rows):
        return None
    series = {}
    for column in numeric_columns:
        name = str(result.headers[column])
        series[name] = [(row[0], row[column]) for row in result.rows]
    spread = [
        abs(y) for values in series.values() for _x, y in values
    ]
    log_y = max(spread) > 50 * max(1e-9, min(s for s in spread if s > 0)) \
        if any(s > 0 for s in spread) else False
    return ascii_plot(
        series, width=width, height=height,
        title="{} ({})".format(result.experiment_id, "log y" if log_y else
                               "linear y"),
        x_label=x_header, y_label="y", log_y=log_y,
    )
