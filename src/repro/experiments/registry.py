"""Registry of all experiments, keyed by the paper figure/table they
reproduce."""

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    ext_cluster,
    ext_faults,
    ext_jbsq,
    ext_policies,
    ext_safety,
    ext_scaling,
    fig2,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
)

__all__ = ["ExperimentSpec", "EXPERIMENTS", "experiment_by_id",
           "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment."""

    experiment_id: str
    description: str
    run: Callable

    def __call__(self, quality="standard", seed=1, runner=None):
        if runner is not None:
            # Sweeps inside the experiment pick the runner up ambiently, so
            # --jobs/--cache-dir reach every figure without threading a
            # parameter through each run() signature.
            from repro.parallel import using_runner

            with using_runner(runner):
                return as_result_list(self.run(quality=quality, seed=seed))
        return as_result_list(self.run(quality=quality, seed=seed))


def as_result_list(outcome):
    """Experiments return one result or a list; normalize to a list."""
    if isinstance(outcome, list):
        return outcome
    return [outcome]


EXPERIMENTS = {
    spec.experiment_id: spec
    for spec in [
        ExperimentSpec(
            "fig2", "Preemption mechanism overhead vs quantum", fig2.run
        ),
        ExperimentSpec(
            "fig3", "Worker idle time: single queue vs JBSQ(2)", fig3.run
        ),
        ExperimentSpec(
            "fig5", "Impact of non-instantaneous preemption (queueing model)",
            fig5.run,
        ),
        ExperimentSpec(
            "fig6", "Bimodal(50:1,50:100) slowdown vs load, q=5/2us", fig6.run
        ),
        ExperimentSpec(
            "fig7", "Bimodal(99.5:0.5,0.5:500) slowdown vs load, q=5/2us",
            fig7.run,
        ),
        ExperimentSpec(
            "fig8", "Low-dispersion workloads: Fixed(1us) and TPCC", fig8.run
        ),
        ExperimentSpec(
            "fig9", "LevelDB 50% GET / 50% SCAN, q=5/2us", fig9.run
        ),
        ExperimentSpec(
            "fig10", "LevelDB under Meta's ZippyDB mix, q=5us", fig10.run
        ),
        ExperimentSpec(
            "fig11", "Cumulative mechanism ablation on LevelDB", fig11.run
        ),
        ExperimentSpec(
            "fig12", "Preemption overhead reduction vs quantum (with yields)",
            fig12.run,
        ),
        ExperimentSpec(
            "fig13", "Work-conserving dispatcher on a 4-core VM", fig13.run
        ),
        ExperimentSpec(
            "fig14", "Low-load slowdown cost of work stealing", fig14.run
        ),
        ExperimentSpec(
            "fig15", "Concord vs Intel user-space IPIs (Sapphire Rapids)",
            fig15.run,
        ),
        ExperimentSpec(
            "table1", "Instrumentation overhead and timeliness, 24 kernels",
            table1.run,
        ),
        ExperimentSpec(
            "ext-cluster",
            "Extension: rack-scale inter-server scheduling over Concord "
            "servers",
            ext_cluster.run,
        ),
        ExperimentSpec(
            "ext-faults",
            "Extension: fault-injection degradation curves and "
            "crash-recovery resilience",
            ext_faults.run,
        ),
        ExperimentSpec(
            "ext-jbsq", "Extension: JBSQ(k) depth ablation", ext_jbsq.run
        ),
        ExperimentSpec(
            "ext-policies", "Extension: FCFS vs SRPT central-queue policies",
            ext_policies.run,
        ),
        ExperimentSpec(
            "ext-safety", "Extension: safety-first preemption microbenchmark",
            ext_safety.run,
        ),
        ExperimentSpec(
            "ext-scaling",
            "Extension: replication and single-logical-queue scalability",
            ext_scaling.run,
        ),
    ]
}


def experiment_by_id(experiment_id):
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            "unknown experiment {!r}; known: {}".format(
                experiment_id, ", ".join(sorted(EXPERIMENTS))
            )
        ) from None


def run_experiment(experiment_id, quality="standard", seed=1, runner=None):
    """Run one experiment; returns a list of ExperimentResult.

    ``runner`` (a :class:`repro.parallel.ParallelRunner`) parallelizes and/
    or caches the experiment's sweeps; None keeps the process default.
    """
    return experiment_by_id(experiment_id)(
        quality=quality, seed=seed, runner=runner
    )
