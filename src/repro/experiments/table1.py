"""Table 1: overhead and timeliness of Concord's instrumentation across 24
benchmarks from Splash-2, Phoenix, and Parsec, vs Compiler Interrupts (CI).

Each kernel is compiled twice through our pass pipeline — cache-line
probes with loop unrolling (Concord) and threshold-counter rdtsc probes
(CI) — executed on the IR interpreter, and measured for (a) overhead vs
the un-instrumented -O3 baseline and (b) the standard deviation of
achieved 5 µs scheduling quanta.

Paper aggregates to reproduce: Concord average ~1% (some entries
negative thanks to unrolling), an order of magnitude below CI's average
(~13.7%); per-benchmark timeliness sigma always < 2 µs, with the p99
achieved quantum within 3 sigma.
"""

import math

from repro.experiments.common import ExperimentResult, scale_for
from repro.hardware import CycleClock
from repro.instrument import CACHELINE_STYLE, RDTSC_STYLE, profile_kernel
from repro.instrument.kernels import KERNELS

QUANTUM_US = 5.0

#: Table 1's published per-benchmark values (Concord %, CI %, sigma µs) for
#: side-by-side comparison in the rendered table.
PAPER_TABLE1 = {
    "water-nsquared": (-0.3, 3, 0.24),
    "water-spatial": (-0.6, 4, 0.23),
    "ocean-cp": (0.1, 10, 1.8),
    "ocean-ncp": (1, 6, 1.1),
    "volrend": (0.5, 13, 0.47),
    "fmm": (0.4, -2, 0.11),
    "raytrace": (-0.2, 4, 0.03),
    "radix": (0.9, 4, 0.56),
    "fft": (1.2, 1, 0.63),
    "lu-c": (4.6, 13, 0.63),
    "lu-nc": (-3.7, 23, 0.58),
    "cholesky": (-2.9, 29, 0.86),
    "histogram": (1.6, 20, 0.57),
    "kmeans": (-0.3, 3, 1.0),
    "pca": (-2.7, 25, 0.06),
    "string_match": (2, 18, 0.86),
    "linear_regression": (6.7, 37, 0.78),
    "word_count": (2.4, 30, 1.11),
    "blackscholes": (4, 10, 1.14),
    "fluidanimate": (1.3, 2, 0.04),
    "swapoptions": (2.2, 24, 0.86),
    "canneal": (1.5, 34, 0.02),
    "streamcluster": (-2.1, 6, 0.08),
    "dedup": (0.4, 4, 1.2),
}


def run(quality="standard", seed=1):
    scale = scale_for(quality)
    clock = CycleClock()
    result = ExperimentResult(
        experiment_id="table1",
        title="Instrumentation overhead and preemption timeliness "
              "(quantum {:g}us)".format(QUANTUM_US),
        headers=[
            "program", "suite", "concord_%", "ci_%", "std_us",
            "paper_concord_%", "paper_ci_%", "paper_std_us",
        ],
    )
    concord_overheads = []
    ci_overheads = []
    stds = []
    p99_within_3_sigma = 0
    for spec in KERNELS:
        factory = lambda s=spec: s.build(scale=scale.kernel_scale)
        concord = profile_kernel(factory, CACHELINE_STYLE)
        ci = profile_kernel(factory, RDTSC_STYLE)
        std = concord.timeliness_std_us(QUANTUM_US, clock)
        concord_pct = 100.0 * concord.overhead_fraction
        ci_pct = 100.0 * ci.overhead_fraction
        concord_overheads.append(concord_pct)
        ci_overheads.append(ci_pct)
        stds.append(std)

        deviations = concord.preemption_deviations_cycles(
            clock.us_to_cycles(QUANTUM_US)
        )
        deviations.sort()
        p99 = deviations[int(0.99 * (len(deviations) - 1))]
        sigma_cycles = clock.us_to_cycles(std) or 1
        mean = sum(deviations) / len(deviations)
        if p99 <= mean + 3 * math.ceil(sigma_cycles) + 1:
            p99_within_3_sigma += 1

        paper = PAPER_TABLE1[spec.name]
        result.add_row(
            spec.name, spec.suite, concord_pct, ci_pct, std,
            paper[0], paper[1], paper[2],
        )

    n = len(KERNELS)
    result.summary["concord_mean_overhead_pct"] = sum(concord_overheads) / n
    result.summary["ci_mean_overhead_pct"] = sum(ci_overheads) / n
    result.summary["concord_max_overhead_pct"] = max(concord_overheads)
    result.summary["ci_max_overhead_pct"] = max(ci_overheads)
    result.summary["max_std_us"] = max(stds)
    result.summary["kernels_with_negative_concord_overhead"] = sum(
        1 for o in concord_overheads if o < 0
    )
    result.summary["p99_within_3_sigma_count"] = p99_within_3_sigma
    result.note(
        "paper: Concord average 1.04% (max 6.7%), CI average 13.7% "
        "(max 37%); sigma < 2us for every benchmark"
    )
    return result
