"""Tracing surface of the CLI: ``concord-repro trace`` and the
``--trace`` / ``--flight-recorder`` flags on run/compare/rack.

Traced executions run serially in-process with the result cache disabled
— a cached or pool-executed simulation never touches this process's
ambient :class:`~repro.obs.session.TraceSession`, so forcing a fresh
serial run is what guarantees the trace actually observes every event.
Tracing never changes results: the same seed yields bit-identical
outputs with or without these flags (``tests/test_obs.py``).
"""

import json
import sys
from contextlib import contextmanager

from repro import constants

__all__ = [
    "add_trace_args",
    "tracing_requested",
    "config_from_args",
    "maybe_traced",
    "export_session",
    "run_trace_command",
]

#: Tail requests named in the text report.
DEFAULT_TOP_K = 5


def add_trace_args(parser):
    """--trace family shared by run/compare/rack (and trace itself)."""
    parser.add_argument(
        "--trace", action="store_true",
        help="record a full request-lifecycle trace (forces serial, "
             "uncached execution; results are unchanged)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="Chrome trace JSON output path (default: trace.json; "
             "implies --trace)",
    )
    parser.add_argument(
        "--flight-recorder", action="store_true",
        help="bounded tracing: keep only the last events around each "
             "tail request instead of the full log",
    )
    parser.add_argument(
        "--slowdown-trigger", type=float, default=None, metavar="X",
        help="flight-recorder trigger: capture requests whose slowdown "
             "is >= X (default: {:g}, the SLO)".format(
                 constants.SLOWDOWN_SLO),
    )


def tracing_requested(args):
    return bool(
        getattr(args, "trace", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "flight_recorder", False)
    )


def config_from_args(args):
    """Build the :class:`~repro.obs.session.TraceConfig` the flags ask
    for: full log (+ flight recorder) unless only --flight-recorder was
    given."""
    from repro.obs import TraceConfig

    trigger = args.slowdown_trigger
    if trigger is None:
        trigger = constants.SLOWDOWN_SLO
    full = bool(getattr(args, "trace", False)
                or getattr(args, "trace_out", None))
    if not full:
        return TraceConfig.flight_only(slowdown_trigger=trigger)
    return TraceConfig.full(slowdown_trigger=trigger)


@contextmanager
def maybe_traced(args, stream, default_out="trace.json"):
    """Install a trace session when the flags ask for one (else a no-op),
    exporting trace artifacts and the tail report after the body runs."""
    if not tracing_requested(args):
        yield None
        return
    from repro.obs import tracing

    with tracing(config_from_args(args)) as session:
        yield session
    export_session(session, args, stream, default_out=default_out)


def serial_runner():
    """The uncached in-process runner every traced execution uses."""
    from repro.parallel import ParallelRunner

    return ParallelRunner(jobs=1, cache=None)


# -- export ------------------------------------------------------------------


def _session_clock(session):
    for bus in session.buses:
        if bus.clock is not None:
            return bus.clock
    return None


def _flight_report(bus, clock, stream, top_k):
    """Tail report reconstructed from flight-recorder captures."""
    from repro.obs import build_spans

    recorder = bus.recorder
    captures = sorted(
        recorder.captures, key=lambda c: (-c["slowdown"], c["rid"])
    )[:top_k]
    print(
        "  [{}: flight recorder saw {} events, {} trigger(s) at "
        "slowdown >= {:g}, kept {} capture(s)]".format(
            bus.label, recorder.events_seen, recorder.triggers_fired,
            recorder.slowdown_trigger, len(recorder.captures),
        ),
        file=stream,
    )
    for capture in captures:
        spans = {
            span.rid: span for span in build_spans(capture["events"])
        }
        span = spans.get(capture["rid"])
        if span is None:
            continue
        from repro.obs.export import _format_timeline

        print(
            "  rid={} slowdown={:.1f}x (ring context: {} events, {} "
            "requests)".format(
                capture["rid"], capture["slowdown"],
                len(capture["events"]), len(spans),
            ),
            file=stream,
        )
        for line in _format_timeline(span, clock):
            print(line, file=stream)


def export_session(session, args, stream, default_out="trace.json",
                   top_k=DEFAULT_TOP_K):
    """Write trace artifacts and print the top-K tail-request report."""
    from repro.obs import build_spans, chrome_trace, tail_report

    buses = session.buses
    if not buses:
        print("  [trace: session observed no runs]", file=stream)
        return
    clock = _session_clock(session)
    if clock is None:
        print("  [trace: no clock bound; nothing to export]", file=stream)
        return

    recorded = [bus for bus in buses if bus.events]
    if recorded:
        from repro.obs import write_chrome_trace

        out = getattr(args, "trace_out", None) or default_out
        payload = chrome_trace(buses, clock)
        write_chrome_trace(out, payload)
        print(
            "  [trace: wrote {} Chrome trace events for {} run(s) to {} "
            "-- open at https://ui.perfetto.dev]".format(
                len(payload["traceEvents"]), len(recorded), out
            ),
            file=stream,
        )
        spans_out = getattr(args, "spans_out", None)
        if spans_out:
            from repro.obs import write_spans_jsonl

            all_spans = [
                span for bus in recorded for span in build_spans(bus.events)
            ]
            write_spans_jsonl(spans_out, all_spans)
            print(
                "  [trace: wrote {} spans to {}]".format(
                    len(all_spans), spans_out
                ),
                file=stream,
            )
        for bus in recorded:
            spans = build_spans(bus.events)
            if any(s.slowdown is not None for s in spans):
                print("  --- {} ---".format(bus.label), file=stream)
                print(tail_report(spans, clock, k=top_k), file=stream)
    else:
        reported = False
        for bus in buses:
            if bus.recorder is not None and bus.recorder.captures:
                _flight_report(bus, clock, stream, top_k)
                reported = True
        if not reported:
            recorders = [b.recorder for b in buses if b.recorder is not None]
            seen = sum(r.events_seen for r in recorders)
            trigger = recorders[0].slowdown_trigger if recorders else None
            print(
                "  [flight recorder: {} events seen, no captures -- no "
                "request completed with slowdown >= {:g}]".format(
                    seen, trigger if trigger is not None else float("nan")
                ),
                file=stream,
            )


# -- the trace subcommand ----------------------------------------------------


def add_trace_subcommand(sub):
    parser = sub.add_parser(
        "trace",
        help="run one system or experiment with full tracing and export "
             "a Chrome/Perfetto timeline plus a tail-request report",
    )
    parser.add_argument(
        "target",
        help="a system name (see 'compare --systems') or an experiment id "
             "(see 'list')",
    )
    parser.add_argument(
        "--quality", default="smoke",
        choices=["smoke", "standard", "full"],
        help="run size preset for experiment targets (default: smoke)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workload", default="bimodal-50-1-50-100",
        help="named workload for system targets",
    )
    parser.add_argument(
        "--workers", type=int, default=8,
        help="worker threads for system targets",
    )
    parser.add_argument(
        "--requests", type=int, default=4_000,
        help="arrivals to simulate for system targets",
    )
    parser.add_argument(
        "--load-frac", type=float, default=0.7,
        help="offered load as a fraction of nominal capacity "
             "(system targets)",
    )
    parser.add_argument(
        "--quantum-us", type=float, default=5.0, help="scheduling quantum"
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="Chrome trace JSON output path (default: <target>-trace.json)",
    )
    parser.add_argument(
        "--spans-out", default=None, metavar="FILE",
        help="also dump reconstructed request spans as JSONL",
    )
    parser.add_argument(
        "--flight-recorder", action="store_true",
        help="flight-recorder-only mode (no full event log)",
    )
    parser.add_argument(
        "--slowdown-trigger", type=float, default=None, metavar="X",
        help="flight-recorder trigger threshold (default: {:g})".format(
            constants.SLOWDOWN_SLO),
    )
    parser.add_argument(
        "--top", type=int, default=DEFAULT_TOP_K,
        help="tail requests to name in the report (default: {})".format(
            DEFAULT_TOP_K),
    )
    return parser


def _trace_config(args):
    from repro.obs import TraceConfig

    trigger = args.slowdown_trigger
    if trigger is None:
        trigger = constants.SLOWDOWN_SLO
    if args.flight_recorder:
        return TraceConfig.flight_only(slowdown_trigger=trigger)
    return TraceConfig.full(slowdown_trigger=trigger)


def _trace_system(args, stream):
    from repro.core.server import Server
    from repro.hardware import c6420
    from repro.metrics import summarize_slowdowns
    from repro.obs import tracing
    from repro.workloads import workload_by_name
    from repro.workloads.arrivals import PoissonProcess

    from repro.experiments.cli import _SYSTEM_FACTORIES

    factory = _SYSTEM_FACTORIES[args.target]
    machine = c6420(args.workers)
    workload = workload_by_name(args.workload)
    load = args.load_frac * machine.num_workers * 1e6 / workload.mean_us()
    with tracing(_trace_config(args)) as session:
        server = Server(machine, factory(args.quantum_us), seed=args.seed)
        result = server.run(
            workload, PoissonProcess(load), args.requests
        )
    summary = summarize_slowdowns(result.slowdowns())
    print(
        "{}: {} requests at {:.0f} kRps ({:.0%} of capacity) -- "
        "p50 {:.1f}x, p99 {:.1f}x, p99.9 {:.1f}x".format(
            args.target, args.requests, load / 1e3, args.load_frac,
            summary.p50, summary.p99, summary.p999,
        ),
        file=stream,
    )
    return session


def _trace_experiment(args, stream):
    from repro.experiments.registry import run_experiment
    from repro.obs import tracing

    with tracing(_trace_config(args)) as session:
        results = run_experiment(
            args.target, quality=args.quality, seed=args.seed,
            runner=serial_runner(),
        )
    for result in results:
        print(result.render(), file=stream)
        print("", file=stream)
    return session


def run_trace_command(args, stream=None):
    """Entry point for ``concord-repro trace <target>``."""
    from repro.experiments.cli import _SYSTEM_FACTORIES
    from repro.experiments.registry import EXPERIMENTS

    stream = stream or sys.stdout
    if args.trace_out is None:
        args.trace_out = "{}-trace.json".format(args.target)
    if args.target in _SYSTEM_FACTORIES:
        session = _trace_system(args, stream)
    elif args.target in EXPERIMENTS:
        session = _trace_experiment(args, stream)
    else:
        print(
            "concord-repro trace: unknown target {!r}; systems: {}; "
            "experiments: {}".format(
                args.target,
                ", ".join(sorted(_SYSTEM_FACTORIES)),
                ", ".join(sorted(EXPERIMENTS)),
            ),
            file=sys.stderr,
        )
        return 2
    export_session(session, args, stream, top_k=args.top)
    merged = session.merged_counters().snapshot()["counters"]
    interesting = {
        key: merged[key]
        for key in (
            "requests.arrived", "requests.completed", "requests.preempted",
            "requests.dropped", "steals.slices", "flight.triggers",
        )
        if key in merged
    }
    print(
        "  [telemetry: {}]".format(json.dumps(interesting, sort_keys=True)),
        file=stream,
    )
    return 0
