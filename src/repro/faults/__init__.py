"""Deterministic fault injection and balancer-side resilience.

``repro.faults`` turns the rack layer into a resilience testbed: a
picklable :class:`FaultPlan` declares what breaks and when (worker
stalls, server crashes, fabric degradation, telemetry blackouts, probe
dropout), a :class:`FaultInjector` replays it deterministically from its
own seeded RNG stream, and a :class:`ResilienceManager` (failure
detection, timeouts/retries, hedging, health-aware routing, load
shedding) fights back.  A run with no plan and no resilience config never
executes any of this code — every hook is behind an ``is None`` guard —
so the fault-free hot path stays bit-identical.

Entry point: ``Cluster(..., fault_plan=plan, resilience=config)`` or the
picklable :class:`repro.parallel.FaultJob`.
"""

from repro.faults.detector import DetectorConfig, FailureDetector
from repro.faults.injector import (
    CrashRecord, FaultInjector, ServerFaultState,
)
from repro.faults.plan import (
    FabricDegradation, FaultPlan, ProbeDropout, ServerCrash,
    TelemetryBlackout, WorkerStall, blackout_plan, crash_plan, stall_plan,
)
from repro.faults.resilience import ResilienceConfig, ResilienceManager

__all__ = [
    "FaultPlan", "WorkerStall", "ServerCrash", "FabricDegradation",
    "TelemetryBlackout", "ProbeDropout",
    "crash_plan", "blackout_plan", "stall_plan",
    "FaultInjector", "ServerFaultState", "CrashRecord",
    "DetectorConfig", "FailureDetector",
    "ResilienceConfig", "ResilienceManager",
]
