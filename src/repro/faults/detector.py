"""Sim-time failure detection at the balancer.

A φ-accrual detector would be overkill here; this is the deterministic
timeout detector real rack schedulers deploy: a server is **suspected**
when it has outstanding attempts and has not replied for longer than the
suspicion timeout.  Suspected servers are excluded from routing until a
probationary re-admission after ``probation_us`` — if the server is still
dark, the probe attempts time out and the next detector tick re-suspects
it; if it recovered, replies flow and suspicion clears naturally.  Every
threshold is a fixed sim-time constant and the check walks servers in
index order, so detection and recovery instants are bit-reproducible.
"""

from dataclasses import dataclass

from repro import constants

__all__ = ["DetectorConfig", "FailureDetector"]


@dataclass(frozen=True)
class DetectorConfig:
    """Deterministic thresholds, all in simulated microseconds."""

    suspicion_timeout_us: float = constants.FAULT_SUSPICION_TIMEOUT_US
    check_interval_us: float = constants.FAULT_DETECTOR_INTERVAL_US
    probation_us: float = constants.FAULT_PROBATION_US

    def __post_init__(self):
        if self.suspicion_timeout_us <= 0:
            raise ValueError("suspicion_timeout_us must be > 0")
        if self.check_interval_us <= 0:
            raise ValueError("check_interval_us must be > 0")
        if self.probation_us <= 0:
            raise ValueError("probation_us must be > 0")


class FailureDetector:
    """Timeout-based suspicion over ``num_servers`` rack members."""

    def __init__(self, clock, num_servers, config=None):
        self.config = config if config is not None else DetectorConfig()
        self.num_servers = num_servers
        self.suspicion_cycles = clock.us_to_cycles(
            self.config.suspicion_timeout_us
        )
        self.probation_cycles = clock.us_to_cycles(self.config.probation_us)
        self.check_interval_cycles = max(
            1, clock.us_to_cycles(self.config.check_interval_us)
        )
        #: Last reply instant per server; None until the first send sets a
        #: baseline (a server never sent to is never suspected).
        self.last_reply = [None] * num_servers
        self.outstanding = [0] * num_servers
        self._suspected = [False] * num_servers
        self._readmit_at = [0] * num_servers
        self.suspicions = 0
        self.readmissions = 0
        #: ``[server, suspect_cycle, clear_cycle_or_None]`` timeline rows.
        self.intervals = []
        self._open = [None] * num_servers

    # -- traffic hooks (called by the resilience manager) -----------------------

    def on_send(self, index, now):
        self.outstanding[index] += 1
        if self.last_reply[index] is None:
            self.last_reply[index] = now

    def on_reply(self, index, now):
        if self.outstanding[index] > 0:
            self.outstanding[index] -= 1
        self.last_reply[index] = now
        if self._suspected[index]:
            self._clear(index, now)

    # -- the periodic check -----------------------------------------------------

    def check(self, now):
        for index in range(self.num_servers):
            if self._suspected[index]:
                if now >= self._readmit_at[index]:
                    self.readmissions += 1
                    self._clear(index, now)
            elif (
                self.outstanding[index] > 0
                and self.last_reply[index] is not None
                and now - self.last_reply[index] > self.suspicion_cycles
            ):
                self._suspect(index, now)

    def _suspect(self, index, now):
        self._suspected[index] = True
        self._readmit_at[index] = now + self.probation_cycles
        self.suspicions += 1
        row = [index, now, None]
        self._open[index] = row
        self.intervals.append(row)

    def _clear(self, index, now):
        self._suspected[index] = False
        # Fresh grace window: without this, a probationary re-admission
        # would be re-suspected on the very next tick (outstanding > 0,
        # last_reply still ancient) before its probe can land.
        self.last_reply[index] = now
        row = self._open[index]
        if row is not None:
            row[2] = now
            self._open[index] = None

    # -- queries ----------------------------------------------------------------

    def is_suspected(self, index):
        return self._suspected[index]

    def suspected(self):
        """Currently-suspected server indices, ascending."""
        return [
            i for i in range(self.num_servers) if self._suspected[i]
        ]

    def __repr__(self):
        return "FailureDetector(suspected={}, suspicions={})".format(
            self.suspected(), self.suspicions
        )
