"""The fault injector: interprets a :class:`FaultPlan` against a live rack.

The injector is the only component that mutates simulation state on a
fault's behalf, and it does so deterministically: fault windows are
precomputed in cycles from the plan, the only scheduled events are the
ones that *must* mutate state at a point in time (crash, recovery,
blackout-end resync), and all randomness (probe-dropout Bernoulli draws)
comes from the injector's own named RNG stream, spawned from the rack's
master seed — so a fixed (plan, seed) pair replays bit-identically, and a
run with no plan never touches any of this code (every hook in the core
and cluster layers is guarded by ``faults is None`` / ``injector is
None``, mirroring the probe-bus pattern).

Crash semantics
---------------
At the crash instant the server's entire in-flight population is swept:
workers' current and local requests, the central queue, the dispatcher's
rx/requeue buffers, the steal slice, and the request riding the in-flight
dispatcher micro-action.  Worker epochs are bumped so every pending
completion/preemption event goes stale, and the dispatcher's
``crash_epoch`` invalidates its pending action-finish event.  Swept
requests are *lost* (counted, never completing) or — with
``requeue_inflight`` — handed back to the balancer, which re-routes each
from scratch.  While down, deliveries are dropped at the NIC.  Recovery
clears straggler state, re-registers idle workers, and resynchronizes
counter-mode telemetry against ground truth.
"""

from repro import constants
from repro.faults.plan import (
    FabricDegradation, ProbeDropout, ServerCrash, TelemetryBlackout,
    WorkerStall,
)

__all__ = ["FaultInjector", "ServerFaultState", "CrashRecord"]


class CrashRecord:
    """One crash's timeline: onset, planned recovery, observed restoration
    (first reply after recovery — the MTTR endpoint)."""

    __slots__ = ("server", "crash_cycle", "recover_cycle", "restored_cycle",
                 "lost", "requeued")

    def __init__(self, server, crash_cycle, recover_cycle):
        self.server = server
        self.crash_cycle = crash_cycle
        self.recover_cycle = recover_cycle
        self.restored_cycle = None
        self.lost = 0
        self.requeued = 0

    def to_dict(self):
        return {
            "server": self.server,
            "crash_cycle": self.crash_cycle,
            "recover_cycle": self.recover_cycle,
            "restored_cycle": self.restored_cycle,
            "lost": self.lost,
            "requeued": self.requeued,
        }


class ServerFaultState:
    """Per-server fault state consulted by the core layer's hooks.

    ``down`` is the only dynamic flag; stall and dropout windows are
    static, precomputed in cycles, and checked against ``sim.now`` at the
    probe site — no scheduled events, no state machine.
    """

    __slots__ = ("index", "injector", "down", "lost_inflight",
                 "stall_windows", "drop_windows")

    def __init__(self, index, injector, stall_windows, drop_windows):
        self.index = index
        self.injector = injector
        self.down = False
        #: Requests swept at crash instants on this server: subtracted from
        #: :attr:`Server.inflight` so telemetry sees ground truth again.
        self.lost_inflight = 0
        #: ``(start_cycle, end_cycle, wid_or_None)`` stall windows.
        self.stall_windows = stall_windows
        #: ``(start_cycle, end_cycle, drop_prob)`` dropout windows.
        self.drop_windows = drop_windows

    def preempt_retry_at(self, now, wid):
        """Consulted by :meth:`Worker.on_preempt_signal`: None lets the
        yield proceed; a cycle count re-arms the probe for that instant."""
        for start, end, target in self.stall_windows:
            if start <= now < end and (target is None or target == wid):
                self.injector.stalled_probes += 1
                return end
        for start, end, prob in self.drop_windows:
            if start <= now < end:
                if prob >= 1.0 or self.injector.rng.random() < prob:
                    self.injector.dropped_probes += 1
                    return now + self.injector.reprobe_cycles
                return None
        return None


class FaultInjector:
    """Drives one :class:`FaultPlan` against one :class:`Cluster`."""

    def __init__(self, plan, streams):
        self.plan = plan
        self.rng = streams.stream("faults")
        self.cluster = None
        self.balancer = None
        self.sim = None
        self.clock = None
        self.reprobe_cycles = 1
        #: Static ``(start, end, multiplier)`` fabric-degradation windows.
        self._degradations = ()
        #: Static ``(start, end)`` telemetry-blackout windows.
        self._blackouts = ()
        # -- counters ---------------------------------------------------------
        self.crashes = 0
        self.recoveries = 0
        self.lost_total = 0
        self.requeued_total = 0
        self.stalled_probes = 0
        self.dropped_probes = 0
        self.reports_dropped = 0
        #: Per-crash timelines, in onset order (MTTR comes from these).
        self.crash_log = []

    # -- installation ----------------------------------------------------------

    def install(self, cluster):
        """Wire the plan into a freshly-built cluster (before ``run``)."""
        plan = self.plan
        plan.validate_for(cluster.num_servers)
        self.cluster = cluster
        self.balancer = cluster.balancer
        self.sim = cluster.sim
        clock = cluster.machine.clock
        self.clock = clock
        self.reprobe_cycles = max(
            1, clock.us_to_cycles(constants.FAULT_REPROBE_US)
        )

        stall = {i: [] for i in range(cluster.num_servers)}
        for spec in plan.by_type(WorkerStall):
            stall[spec.server].append((
                clock.us_to_cycles(spec.at_us),
                clock.us_to_cycles(spec.at_us + spec.duration_us),
                spec.worker,
            ))
        drop = {i: [] for i in range(cluster.num_servers)}
        for spec in plan.by_type(ProbeDropout):
            targets = (
                [spec.server] if spec.server is not None
                else list(range(cluster.num_servers))
            )
            for index in targets:
                drop[index].append((
                    clock.us_to_cycles(spec.at_us),
                    clock.us_to_cycles(spec.at_us + spec.duration_us),
                    spec.drop_prob,
                ))
        for index, server in enumerate(cluster.servers):
            server.faults = ServerFaultState(
                index, self, tuple(stall[index]), tuple(drop[index])
            )

        self._degradations = tuple(
            (
                clock.us_to_cycles(spec.at_us),
                clock.us_to_cycles(spec.at_us + spec.duration_us),
                spec.multiplier,
            )
            for spec in plan.by_type(FabricDegradation)
        )
        blackouts = tuple(
            (
                clock.us_to_cycles(spec.at_us),
                clock.us_to_cycles(spec.at_us + spec.duration_us),
            )
            for spec in plan.by_type(TelemetryBlackout)
        )
        self._blackouts = blackouts
        for _start, end in blackouts:
            self.sim.post_at(end, self._blackout_resync, "fault-resync")

        for spec in plan.by_type(ServerCrash):
            at = clock.us_to_cycles(spec.at_us)
            recover = clock.us_to_cycles(spec.recover_at_us)
            self.sim.post_at(
                at, self._make_crash(spec, at, recover), "fault-crash"
            )
            self.sim.post_at(
                recover, self._make_recover(spec.server), "fault-recover"
            )
        self.balancer.injector = self
        return self

    # -- fabric state queries (balancer hooks) ---------------------------------

    def scale_hop(self, now, delay):
        """Apply every active degradation window to one hop delay."""
        for start, end, multiplier in self._degradations:
            if start <= now < end:
                delay = int(delay * multiplier)
        return delay

    def telemetry_frozen(self, now):
        for start, end in self._blackouts:
            if start <= now < end:
                return True
        return False

    def note_reply(self, index, now):
        """Reply landed from ``index``: close any crash record waiting for
        its post-recovery restoration instant (MTTR endpoint)."""
        for record in self.crash_log:
            if (
                record.server == index
                and record.restored_cycle is None
                and now >= record.recover_cycle
            ):
                record.restored_cycle = now

    # -- crash / recovery -------------------------------------------------------

    def _make_crash(self, spec, at, recover):
        def crash():
            self._crash(spec, at, recover)
        return crash

    def _make_recover(self, index):
        def recover():
            self._recover(index)
        return recover

    def _crash(self, spec, at, recover):
        server = self.cluster.servers[spec.server]
        state = server.faults
        if state.down:
            return  # overlapping crash specs: the first one owns the window
        state.down = True
        now = self.sim.now
        record = CrashRecord(spec.server, now, recover)
        self.crash_log.append(record)
        self.crashes += 1
        lost = self._sweep_inflight(server)
        if spec.requeue_inflight:
            record.requeued = len(lost)
            self.requeued_total += len(lost)
            for request in lost:
                self.balancer.reroute(request, exclude=(spec.server,))
        else:
            record.lost = len(lost)
            state.lost_inflight += len(lost)
            self.lost_total += len(lost)
            manager = self.balancer.resilience
            if manager is not None:
                manager.note_lost(lost)
        probes = self.balancer.probes
        if probes is not None:
            probes.server_crashed(now, spec.server, len(lost))

    def _sweep_inflight(self, server):
        """Collect every request alive on ``server`` and reset its agents to
        a cold-idle state; pending events are invalidated via epochs."""
        now = self.sim.now
        lost = []
        d = server.dispatcher
        d.crash_epoch += 1
        if d._in_action:
            d._in_action = False
            if d._action_request is not None:
                lost.append(d._action_request)
                d._action_request = None
        for worker in server.workers:
            if worker.current is not None:
                lost.append(worker.current)
                worker.current = None
            lost.extend(worker.local)
            worker.local.clear()
            worker.run_start = None
            worker._switching_until = None
            worker.epoch += 1
            if worker.idle_since is None:
                worker.idle_since = now
        lost.extend(d.rx)
        d.rx.clear()
        lost.extend(d.requeues)
        d.requeues.clear()
        d.preempts.clear()
        policy = server.policy
        while len(policy):
            lost.append(policy.pop())
        if d.steal_buffer is not None:
            lost.append(d.steal_buffer)
            d.steal_buffer = None
        if d._steal is not None:
            st = d._steal
            st["end_event"].cancel()
            lost.append(st["request"])
            d._steal = None
            d._steal_stop_pending = False
        d.ready_workers.clear()
        return lost

    def _recover(self, index):
        server = self.cluster.servers[index]
        state = server.faults
        if not state.down:
            return
        state.down = False
        now = self.sim.now
        d = server.dispatcher
        # Straggler events while down can only have queued stale preempt
        # tuples or re-registered workers; start from a clean slate.
        d.preempts.clear()
        d.ready_workers.clear()
        if server.queue_mode == "sq":
            d.ready_workers.extend(
                w for w in server.workers if w.is_idle
            )
        self.recoveries += 1
        board = self.balancer.board
        if board.counter_mode:
            # The switch re-reads its counters: lost in-flights must not
            # leave a phantom queue pinned on the dead server.
            board.resync(index, server.inflight)
        probes = self.balancer.probes
        if probes is not None:
            probes.server_recovered(now, index)

    def _blackout_resync(self):
        """Blackout ended: counter-mode boards re-read ground truth (missed
        increments/decrements would otherwise skew the view forever)."""
        board = self.balancer.board
        if not board.counter_mode:
            return
        if self.telemetry_frozen(self.sim.now):
            return  # still inside an overlapping blackout window
        for index, server in enumerate(self.cluster.servers):
            board.resync(index, server.inflight)

    # -- reporting --------------------------------------------------------------

    def stats(self):
        return {
            "plan": self.plan.name,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "lost": self.lost_total,
            "requeued": self.requeued_total,
            "stalled_probes": self.stalled_probes,
            "dropped_probes": self.dropped_probes,
            "reports_dropped": self.reports_dropped,
            "crash_log": [record.to_dict() for record in self.crash_log],
        }

    def mttr_us_samples(self):
        """Time from each crash onset to the first post-recovery reply."""
        out = []
        for record in self.crash_log:
            if record.restored_cycle is not None:
                out.append(self.clock.cycles_to_us(
                    record.restored_cycle - record.crash_cycle
                ))
        return out

    def __repr__(self):
        return "FaultInjector(plan={!r}, crashes={}, lost={})".format(
            self.plan.name, self.crashes, self.lost_total
        )
