"""Declarative fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is a picklable, frozen description of every fault a
run will experience, expressed in simulated microseconds.  Plans are pure
data — the :class:`~repro.faults.injector.FaultInjector` interprets them
against a live rack — so the same plan object can parameterize a
:class:`~repro.parallel.FaultJob`, key the result cache, and travel to
pool workers, and two runs of the same (plan, seed) pair are bit-identical.

The fault vocabulary mirrors the failure modes the paper's environment
actually faces:

* :class:`WorkerStall` — a worker stops honoring cooperative preemption
  probes for a window (a hog: the GC pause / interrupt storm that defeats
  Concord's timeliness story without stopping the request itself);
* :class:`ServerCrash` — a whole server goes dark and later recovers;
  in-flight requests are lost, or re-queued to the balancer when
  ``requeue_inflight`` is set (failover NIC semantics);
* :class:`FabricDegradation` — every hop's latency is multiplied for a
  window (incast, a flaky uplink);
* :class:`TelemetryBlackout` — queue-length telemetry freezes: reports are
  dropped in transit and counter updates stop, so the balancer routes on
  a stale snapshot (RackSched's nightmare);
* :class:`ProbeDropout` — preemption notifications are dropped with some
  probability (instrumentation gaps), delaying yields by a re-probe period.
"""

from dataclasses import dataclass, fields
from typing import Optional, Tuple

__all__ = [
    "WorkerStall", "ServerCrash", "FabricDegradation", "TelemetryBlackout",
    "ProbeDropout", "FaultPlan", "crash_plan", "blackout_plan", "stall_plan",
]


def _require(condition, message):
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class WorkerStall:
    """Workers on ``server`` ignore preemption probes during the window.

    ``worker`` limits the stall to one wid; None stalls every worker on the
    server.  The running request keeps executing — only the cooperative
    yield is suppressed, so the quantum's expiry is honored late, exactly
    at the window's end.
    """

    at_us: float
    duration_us: float
    server: int = 0
    worker: Optional[int] = None

    def __post_init__(self):
        _require(self.at_us >= 0, "stall at_us must be >= 0")
        _require(self.duration_us > 0, "stall duration_us must be > 0")
        _require(self.server >= 0, "stall server index must be >= 0")


@dataclass(frozen=True)
class ServerCrash:
    """``server`` goes dark at ``at_us`` and recovers ``down_us`` later.

    While down, deliveries are dropped at the NIC and the dispatcher runs
    nothing.  At the crash instant every in-flight request on the server
    (queued, executing, or inside a dispatcher micro-action) is lost — or,
    with ``requeue_inflight``, handed back to the balancer, which re-routes
    each one to a healthy server from scratch.
    """

    at_us: float
    down_us: float
    server: int = 0
    requeue_inflight: bool = False

    def __post_init__(self):
        _require(self.at_us >= 0, "crash at_us must be >= 0")
        _require(self.down_us > 0, "crash down_us must be > 0")
        _require(self.server >= 0, "crash server index must be >= 0")

    @property
    def recover_at_us(self):
        return self.at_us + self.down_us


@dataclass(frozen=True)
class FabricDegradation:
    """Every fabric hop (delivery, reply, telemetry) is ``multiplier``×
    slower during the window.  Overlapping degradations multiply."""

    at_us: float
    duration_us: float
    multiplier: float = 4.0

    def __post_init__(self):
        _require(self.at_us >= 0, "degradation at_us must be >= 0")
        _require(self.duration_us > 0, "degradation duration_us must be > 0")
        _require(
            self.multiplier >= 1.0,
            "degradation multiplier must be >= 1.0 (it models loss of "
            "capacity, not a speedup)",
        )


@dataclass(frozen=True)
class TelemetryBlackout:
    """The balancer's queue view freezes during the window: in-transit
    reports are dropped and counter-mode updates stop.  When the window
    ends, counter-mode boards resynchronize against ground truth (the
    switch re-reads its counters); report-mode boards refresh on the next
    periodic report."""

    at_us: float
    duration_us: float

    def __post_init__(self):
        _require(self.at_us >= 0, "blackout at_us must be >= 0")
        _require(self.duration_us > 0, "blackout duration_us must be > 0")


@dataclass(frozen=True)
class ProbeDropout:
    """Preemption notifications on ``server`` (None = every server) are
    dropped with probability ``drop_prob`` during the window.  A dropped
    notification is retried one re-probe period later, so yields are
    delayed, not lost."""

    at_us: float
    duration_us: float
    drop_prob: float = 1.0
    server: Optional[int] = None

    def __post_init__(self):
        _require(self.at_us >= 0, "dropout at_us must be >= 0")
        _require(self.duration_us > 0, "dropout duration_us must be > 0")
        _require(
            0.0 < self.drop_prob <= 1.0,
            "dropout drop_prob must be in (0, 1], got {}".format(
                self.drop_prob
            ),
        )


_FAULT_TYPES = (
    WorkerStall, ServerCrash, FabricDegradation, TelemetryBlackout,
    ProbeDropout,
)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated collection of fault specs for one run."""

    faults: Tuple = ()
    name: str = "plan"

    def __post_init__(self):
        for spec in self.faults:
            if not isinstance(spec, _FAULT_TYPES):
                raise TypeError(
                    "FaultPlan entries must be fault specs, got {!r}".format(
                        type(spec).__name__
                    )
                )
        ordered = tuple(
            sorted(self.faults, key=lambda spec: spec.at_us)
        )
        object.__setattr__(self, "faults", ordered)

    def __len__(self):
        return len(self.faults)

    def validate_for(self, num_servers):
        """Raise if any spec names a server outside ``range(num_servers)``."""
        for spec in self.faults:
            server = getattr(spec, "server", None)
            if server is not None and server >= num_servers:
                raise ValueError(
                    "{} targets server {} but the rack has {}".format(
                        type(spec).__name__, server, num_servers
                    )
                )
        return self

    def by_type(self, fault_type):
        """All specs of one type, in onset order."""
        return [s for s in self.faults if isinstance(s, fault_type)]

    def describe(self):
        """One line per fault, for logs and CLI output."""
        lines = []
        for spec in self.faults:
            parts = [
                "{}={!r}".format(f.name, getattr(spec, f.name))
                for f in fields(spec)
            ]
            lines.append(
                "{}({})".format(type(spec).__name__, ", ".join(parts))
            )
        return lines


# -- canned plans (experiments, CLI, CI smoke) ---------------------------------

def crash_plan(at_us, down_us, server=0, requeue_inflight=False,
               name="crash"):
    """One server crash + recovery."""
    return FaultPlan(
        faults=(
            ServerCrash(
                at_us=at_us, down_us=down_us, server=server,
                requeue_inflight=requeue_inflight,
            ),
        ),
        name=name,
    )


def blackout_plan(windows, name="blackout"):
    """Telemetry blackouts at each ``(at_us, duration_us)`` window."""
    return FaultPlan(
        faults=tuple(
            TelemetryBlackout(at_us=at, duration_us=duration)
            for at, duration in windows
        ),
        name=name,
    )


def stall_plan(at_us, duration_us, server=0, worker=None, name="stall"):
    """One worker-stall window."""
    return FaultPlan(
        faults=(
            WorkerStall(
                at_us=at_us, duration_us=duration_us, server=server,
                worker=worker,
            ),
        ),
        name=name,
    )
