"""Balancer-side resilience: timeouts, retries, hedging, health-aware
routing, and admission-control load shedding.

The :class:`ResilienceManager` owns the *logical* view of every offered
request: each one is resolved exactly once — completed (first reply wins;
duplicates from hedges/retries are counted and dropped), shed at
admission, or failed after the retry budget — which is what lets faulted
runs drain deterministically even when attempts are lost inside crashed
servers.  All pacing is sim-time event scheduling with fixed thresholds
and deterministic backoff; routing randomness stays on the balancer's
``lb-route`` stream, so a fixed (plan, resilience config, seed) triple is
bit-reproducible, serial or pooled.
"""

from dataclasses import dataclass

from repro import constants
from repro.core.request import Request
from repro.faults.detector import DetectorConfig, FailureDetector

__all__ = ["ResilienceConfig", "ResilienceManager"]


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the balancer's resilience mechanisms.

    Attributes
    ----------
    timeout_us:
        Per-attempt reply deadline; expiry triggers a retry (or failure).
    max_retries:
        Retry budget per logical request (total launches = 1 + retries,
        plus at most one hedge).
    backoff:
        Deterministic multiplier on the timeout per successive attempt.
    hedge_delay_us:
        > 0 launches one duplicate attempt on a second server after this
        delay if no reply arrived yet; 0 disables hedging.
    detector:
        Failure-detector thresholds; None disables detection (no
        blacklisting, purely timeout-driven retries).
    shed_queue_threshold:
        > 0 sheds arrivals at admission while the balancer-visible mean
        queue length per server is at or above this; 0 disables shedding.
    """

    timeout_us: float = constants.FAULT_TIMEOUT_US
    max_retries: int = constants.FAULT_MAX_RETRIES
    backoff: float = constants.FAULT_RETRY_BACKOFF
    hedge_delay_us: float = 0.0
    detector: object = DetectorConfig()
    shed_queue_threshold: int = 0

    def __post_init__(self):
        if self.timeout_us <= 0:
            raise ValueError("timeout_us must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if self.hedge_delay_us < 0:
            raise ValueError("hedge_delay_us must be >= 0")
        if self.shed_queue_threshold < 0:
            raise ValueError("shed_queue_threshold must be >= 0")

    @classmethod
    def retry_only(cls, **changes):
        """Timeout + retry + detector, no hedging (the baseline policy)."""
        return cls(**changes)

    @classmethod
    def hedged(cls, hedge_delay_us=500.0, **changes):
        """Retry policy plus one hedged duplicate per request."""
        return cls(hedge_delay_us=hedge_delay_us, **changes)


class _Entry:
    """Lifecycle state of one logical request at the balancer."""

    __slots__ = ("rid", "kind", "service_us", "service_cycles", "arrival",
                 "attempts", "tried", "done", "failed", "completion_cycle",
                 "timeout_event", "hedge_event")

    def __init__(self, rid, kind, service_us, service_cycles, arrival):
        self.rid = rid
        self.kind = kind
        self.service_us = service_us
        self.service_cycles = service_cycles
        self.arrival = arrival
        self.attempts = 0
        self.tried = []
        self.done = False
        self.failed = False
        self.completion_cycle = None
        self.timeout_event = None
        self.hedge_event = None


class ResilienceManager:
    """Intercepts the balancer's arrival/reply path; see module doc."""

    def __init__(self, balancer, config=None):
        self.config = config if config is not None else ResilienceConfig()
        self.lb = balancer
        self.sim = balancer.sim
        clock = balancer.clock
        self.clock = clock
        self.timeout_cycles = max(
            1, clock.us_to_cycles(self.config.timeout_us)
        )
        self.hedge_cycles = (
            clock.us_to_cycles(self.config.hedge_delay_us)
            if self.config.hedge_delay_us > 0 else None
        )
        self.detector = (
            FailureDetector(
                clock, len(balancer.servers), self.config.detector
            )
            if self.config.detector is not None else None
        )
        self.table = {}
        #: Logical requests resolved (completed + shed + failed); the drain
        #: condition compares this against the offered count.
        self.resolved = 0
        self.completed = 0
        self.shed = 0
        self.failed = 0
        self.retries = 0
        self.hedges = 0
        self.timeouts = 0
        self.duplicate_replies = 0
        self._ticking = False
        balancer.resilience = self

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Begin the detector tick; called from ``LoadBalancer.start``."""
        if self.detector is not None and not self._ticking:
            self._ticking = True
            self._detector_tick()

    def _detector_tick(self):
        self.detector.check(self.sim.now)
        if self.resolved >= self.lb.num_requests:
            return  # drained: stop pumping so the heap empties
        self.sim.after(
            self.detector.check_interval_cycles, self._detector_tick,
            "rs-detector",
        )

    # -- admission ---------------------------------------------------------------

    def on_arrival(self, request):
        """One logical request enters the balancer (attempt 0 included)."""
        now = self.sim.now
        threshold = self.config.shed_queue_threshold
        if threshold > 0:
            board = self.lb.board
            total = sum(board.snapshot())
            if total >= threshold * len(self.lb.servers):
                self.shed += 1
                self.resolved += 1
                probes = self.lb.probes
                if probes is not None:
                    probes.request_shed(now, request.rid)
                return
        entry = _Entry(
            request.rid, request.kind, request.service_us,
            request.service_cycles, now,
        )
        self.table[request.rid] = entry
        self._launch(entry, request)
        if self.hedge_cycles is not None:
            entry.hedge_event = self.sim.after(
                self.hedge_cycles,
                self._make_hedge(request.rid),
                "rs-hedge",
            )

    def _launch(self, entry, request=None, hedge=False):
        """Route one attempt of ``entry``; builds a fresh Request unless the
        balancer-built attempt-0 object is passed in."""
        attempt = entry.attempts
        entry.attempts += 1
        if request is None:
            request = Request(
                rid=entry.rid,
                kind=entry.kind,
                arrival_cycle=None,
                service_cycles=entry.service_cycles,
                service_us=entry.service_us,
                payload={},
            )
        request.payload["attempt"] = attempt
        exclude = []
        detector = self.detector
        if detector is not None:
            exclude.extend(detector.suspected())
        if attempt > 0:
            # Don't re-try the server that just failed us (unless the rack
            # leaves no alternative — _choose falls back to all servers).
            exclude.extend(entry.tried)
        index = self.lb._route_and_send(request, exclude=exclude)
        entry.tried.append(index)
        if detector is not None:
            detector.on_send(index, self.sim.now)
        deadline = int(
            self.timeout_cycles * (self.config.backoff ** attempt)
        )
        if entry.timeout_event is not None:
            entry.timeout_event.cancel()
        entry.timeout_event = self.sim.after(
            max(1, deadline), self._make_timeout(entry.rid), "rs-timeout"
        )
        if hedge:
            self.hedges += 1
            probes = self.lb.probes
            if probes is not None:
                probes.request_hedged(self.sim.now, entry.rid, index)
        elif attempt > 0:
            self.retries += 1
            probes = self.lb.probes
            if probes is not None:
                probes.request_retried(
                    self.sim.now, entry.rid, attempt, index
                )
        return index

    def _make_timeout(self, rid):
        def fire():
            self._on_timeout(rid)
        return fire

    def _make_hedge(self, rid):
        def fire():
            self._on_hedge(rid)
        return fire

    # -- outcomes ----------------------------------------------------------------

    def on_reply(self, rid, index):
        now = self.sim.now
        if self.detector is not None:
            self.detector.on_reply(index, now)
        entry = self.table.get(rid)
        if entry is None or entry.done or entry.failed:
            self.duplicate_replies += 1
            return
        entry.done = True
        entry.completion_cycle = now
        self._cancel_pending(entry)
        self.completed += 1
        self.resolved += 1

    def _on_timeout(self, rid):
        entry = self.table.get(rid)
        if entry is None or entry.done or entry.failed:
            return
        entry.timeout_event = None
        self.timeouts += 1
        if entry.attempts > self.config.max_retries:
            entry.failed = True
            self._cancel_pending(entry)
            self.failed += 1
            self.resolved += 1
            return
        self._launch(entry)

    def _on_hedge(self, rid):
        entry = self.table.get(rid)
        if entry is None or entry.done or entry.failed:
            return
        entry.hedge_event = None
        self._launch(entry, hedge=True)

    def _cancel_pending(self, entry):
        if entry.timeout_event is not None:
            entry.timeout_event.cancel()
            entry.timeout_event = None
        if entry.hedge_event is not None:
            entry.hedge_event.cancel()
            entry.hedge_event = None

    def note_lost(self, requests):
        """Crash sweep lost these attempts; resolution stays with the
        per-attempt timeouts (the balancer cannot observe a silent loss),
        so nothing to do — the hook exists for symmetry and future
        fail-fast semantics (e.g. connection-reset notifications)."""

    # -- reporting ---------------------------------------------------------------

    def e2e_latencies_us(self):
        """Balancer-observed end-to-end latency (admission to first reply)
        per completed logical request, in rid order."""
        out = []
        for rid in sorted(self.table):
            entry = self.table[rid]
            if entry.done:
                out.append(self.clock.cycles_to_us(
                    entry.completion_cycle - entry.arrival
                ))
        return out

    def stats(self):
        return {
            "resolved": self.resolved,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "retries": self.retries,
            "hedges": self.hedges,
            "timeouts": self.timeouts,
            "duplicate_replies": self.duplicate_replies,
            "suspicions": (
                self.detector.suspicions if self.detector is not None else 0
            ),
            "readmissions": (
                self.detector.readmissions
                if self.detector is not None else 0
            ),
        }

    def __repr__(self):
        return (
            "ResilienceManager(resolved={}, retries={}, hedges={}, "
            "shed={}, failed={})".format(
                self.resolved, self.retries, self.hedges, self.shed,
                self.failed,
            )
        )
