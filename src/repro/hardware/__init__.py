"""Hardware model: clocks, cache coherence, machine specifications.

This package encodes the handful of microarchitectural costs that determine
every result in the paper (see DESIGN.md, section 1) and the machine shapes
used in the evaluation (the 16-core c6420 configuration, the 4-vCPU cloud VM
of Fig. 13, and the Sapphire Rapids box of Fig. 15).
"""

from repro.hardware.cpu import CycleClock
from repro.hardware.coherence import CoherenceModel
from repro.hardware.machine import (
    MachineSpec,
    c6420,
    cloud_vm_4core,
    sapphire_rapids,
)

__all__ = [
    "CycleClock",
    "CoherenceModel",
    "MachineSpec",
    "c6420",
    "cloud_vm_4core",
    "sapphire_rapids",
]
