"""Cache-coherence cost model.

Section 2.2.2 of the paper bounds the single-queue handoff cost from below
by two coherence misses (~400 cycles) and section 3.1 measures the final
cache-line-probe miss at ~150 cycles.  Section 5.6 notes these costs scale
with core count (1.5x on a 192-core Sapphire Rapids part).  This module
centralizes those numbers so a :class:`~repro.hardware.machine.MachineSpec`
can scale them uniformly.
"""

from repro import constants

__all__ = ["CoherenceModel"]


class CoherenceModel:
    """Per-machine cache-coherence latencies, in cycles.

    Parameters
    ----------
    scale:
        Multiplier applied to all coherence latencies; 1.0 for the paper's
        c6420 testbed, 1.5 for the Sapphire Rapids machine of Fig. 15.
    """

    def __init__(self, scale=1.0):
        if scale <= 0:
            raise ValueError("coherence scale must be positive, got {}".format(scale))
        self.scale = float(scale)

    def _scaled(self, cycles):
        return int(round(cycles * self.scale))

    @property
    def line_transfer_cycles(self):
        """One cache-line transfer between two cores."""
        return self._scaled(constants.COHERENCE_MISS_CYCLES)

    @property
    def probe_miss_cycles(self):
        """Read-after-Write miss on the dedicated preemption cache line."""
        return self._scaled(constants.CACHELINE_MISS_CYCLES)

    @property
    def sq_handoff_cycles(self):
        """Minimum worker idle time per single-queue handoff (two misses)."""
        return self._scaled(constants.SQ_HANDOFF_CYCLES)

    @property
    def uipi_receive_cycles(self):
        """User-space interrupt delivery; rides the same coherence fabric
        (section 5.6), so it scales with the machine."""
        return self._scaled(constants.UIPI_RECEIVE_CYCLES)

    def scaled(self, factor):
        """A new model with latencies multiplied by ``factor``."""
        return CoherenceModel(self.scale * factor)

    def __repr__(self):
        return "CoherenceModel(scale={})".format(self.scale)
