"""Cycle/time conversion for a fixed-frequency CPU clock.

The simulator's native time unit is the CPU cycle.  :class:`CycleClock`
converts between cycles and wall-clock units for a given core frequency.
Conversions to cycles round *up* so that modelled costs never silently
shrink to zero at coarse frequencies.
"""

import math

from repro.constants import DEFAULT_FREQ_HZ

__all__ = ["CycleClock"]


class CycleClock:
    """Converts between CPU cycles and nanoseconds/microseconds/seconds."""

    def __init__(self, freq_hz=DEFAULT_FREQ_HZ):
        if freq_hz <= 0:
            raise ValueError("frequency must be positive, got {}".format(freq_hz))
        self.freq_hz = int(freq_hz)

    # -- time -> cycles -------------------------------------------------------

    def cycles(self, seconds):
        """Cycles in ``seconds`` of wall-clock time (rounded up)."""
        return int(math.ceil(seconds * self.freq_hz))

    def us_to_cycles(self, microseconds):
        """Cycles in ``microseconds`` (rounded up to a whole cycle)."""
        return int(math.ceil(microseconds * self.freq_hz / 1_000_000))

    def ns_to_cycles(self, nanoseconds):
        """Cycles in ``nanoseconds`` (rounded up to a whole cycle)."""
        return int(math.ceil(nanoseconds * self.freq_hz / 1_000_000_000))

    # -- cycles -> time -------------------------------------------------------

    def cycles_to_us(self, cycles):
        """Microseconds elapsed over ``cycles``."""
        return cycles * 1_000_000 / self.freq_hz

    def cycles_to_ns(self, cycles):
        """Nanoseconds elapsed over ``cycles``."""
        return cycles * 1_000_000_000 / self.freq_hz

    def cycles_to_seconds(self, cycles):
        """Seconds elapsed over ``cycles``."""
        return cycles / self.freq_hz

    @property
    def cycles_per_us(self):
        """Whole cycles per microsecond."""
        return self.freq_hz // 1_000_000

    def __repr__(self):
        return "CycleClock(freq_hz={})".format(self.freq_hz)

    def __eq__(self, other):
        return isinstance(other, CycleClock) and self.freq_hz == other.freq_hz

    def __hash__(self):
        return hash(("CycleClock", self.freq_hz))
