"""Machine specifications for the paper's testbeds.

A :class:`MachineSpec` bundles a clock, a coherence model, and the thread
topology (how many worker threads, whether the networker shares a core with
the dispatcher).  Factory functions build the three machines used in the
evaluation.
"""

from dataclasses import dataclass, field

from repro import constants
from repro.hardware.coherence import CoherenceModel
from repro.hardware.cpu import CycleClock

__all__ = ["MachineSpec", "c6420", "cloud_vm_4core", "sapphire_rapids"]


@dataclass(frozen=True)
class MachineSpec:
    """A simulated machine.

    Attributes
    ----------
    name:
        Human-readable identifier.
    clock:
        Cycle/time conversion for the core frequency.
    coherence:
        Cache-coherence latency model.
    num_workers:
        Number of worker threads, each pinned to a dedicated physical core.
    networker_shares_dispatcher_core:
        Section 5.1: Shinjuku runs the networker and dispatcher as two
        hyperthreads of one physical core.  When True, networking costs are
        charged outside the dispatcher's budget (the networker hyperthread
        absorbs them), matching all three systems' setups in the paper.
    """

    name: str
    clock: CycleClock = field(default_factory=CycleClock)
    coherence: CoherenceModel = field(default_factory=CoherenceModel)
    num_workers: int = constants.DEFAULT_NUM_WORKERS
    networker_shares_dispatcher_core: bool = True

    def __post_init__(self):
        if self.num_workers < 1:
            raise ValueError(
                "machine needs at least one worker, got {}".format(self.num_workers)
            )

    @property
    def total_threads(self):
        """Worker threads plus the dispatcher (networker shares a core)."""
        return self.num_workers + 1

    def with_workers(self, num_workers):
        """A copy of this spec with a different worker count."""
        return MachineSpec(
            name=self.name,
            clock=self.clock,
            coherence=self.coherence,
            num_workers=num_workers,
            networker_shares_dispatcher_core=self.networker_shares_dispatcher_core,
        )


def c6420(num_workers=constants.DEFAULT_NUM_WORKERS):
    """The paper's primary testbed: CloudLab c6420, Xeon Gold 6142 @ 2.6 GHz,
    14 worker threads by default (section 5.1)."""
    return MachineSpec(name="c6420", num_workers=num_workers)


def cloud_vm_4core():
    """The 4-vCPU public-cloud VM of Fig. 13: one dispatcher, one networker,
    two workers."""
    return MachineSpec(name="cloud-vm-4core", num_workers=2)


def sapphire_rapids(num_workers=constants.DEFAULT_NUM_WORKERS):
    """The 192-core Sapphire Rapids machine of section 5.6, where coherence
    misses are ~1.5x more expensive."""
    return MachineSpec(
        name="sapphire-rapids",
        coherence=CoherenceModel(constants.SAPPHIRE_RAPIDS_COHERENCE_FACTOR),
        num_workers=num_workers,
    )
