"""The "Concord compiler" substrate (section 4.3).

The paper implements two LLVM passes that instrument application code with
preemption probes — cache-line polls for workers, rdtsc() checks for the
dispatcher — placing probes at function entries, loop back-edges, and around
calls to un-instrumented code, and unrolling tight loops so probes sit at
least ~200 IR instructions apart.

This package reproduces that pipeline on a small typed IR:

* :mod:`repro.instrument.ir` / :mod:`builder` — the IR and a construction API;
* :mod:`repro.instrument.cfg` — control-flow graph, dominators, natural loops;
* :mod:`repro.instrument.passes` — the probe-insertion and loop-unrolling
  passes plus an IR verifier;
* :mod:`repro.instrument.interp` — a cycle-counting interpreter that executes
  instrumented code and records the probe timeline;
* :mod:`repro.instrument.profile` — condenses a run into an
  :class:`InstrumentationProfile` (overhead fraction, probe-gap distribution,
  preemption-timeliness sigma) that plugs into the scheduler simulation;
* :mod:`repro.instrument.kernels` — 24 benchmark kernels standing in for the
  Splash-2 / Phoenix / Parsec programs of Table 1;
* :mod:`repro.instrument.analysis` — static analyses: a dataflow framework,
  an IR linter, and the probe-gap certifier behind ``repro-lint``.
"""

from repro.instrument.ir import (
    BasicBlock,
    Function,
    Instr,
    Module,
    Terminator,
)
from repro.instrument.builder import FunctionBuilder
from repro.instrument.cfg import ControlFlowGraph
from repro.instrument.passes import (
    CACHELINE_STYLE,
    RDTSC_STYLE,
    LoopUnrollPass,
    ProbeInsertionPass,
    VerifyError,
    verify_function,
)
from repro.instrument.optim import (
    ConstantFoldingPass,
    DeadCodeEliminationPass,
    optimize_function,
)
from repro.instrument.interp import ExecutionResult, Interpreter
from repro.instrument.profile import InstrumentationProfile, profile_kernel
from repro.instrument.analysis import (
    CertificationError,
    GapCertificate,
    LintFinding,
    certify_module,
    lint_function,
    lint_module,
)

__all__ = [
    "BasicBlock",
    "Function",
    "Instr",
    "Module",
    "Terminator",
    "FunctionBuilder",
    "ControlFlowGraph",
    "CACHELINE_STYLE",
    "RDTSC_STYLE",
    "LoopUnrollPass",
    "ProbeInsertionPass",
    "VerifyError",
    "verify_function",
    "ConstantFoldingPass",
    "DeadCodeEliminationPass",
    "optimize_function",
    "ExecutionResult",
    "Interpreter",
    "InstrumentationProfile",
    "profile_kernel",
    "CertificationError",
    "GapCertificate",
    "LintFinding",
    "certify_module",
    "lint_function",
    "lint_module",
]
