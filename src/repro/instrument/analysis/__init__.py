"""Static analyses over the instrumentation IR.

Three layers, each building on the one below:

* :mod:`~repro.instrument.analysis.dataflow` — a generic iterative
  dataflow framework plus reaching-definitions, liveness, and
  reachability clients;
* :mod:`~repro.instrument.analysis.lint` — an IR linter (use-before-def,
  unreachable blocks, dead stores, probe/ext_call attribute sanity,
  probe-placement rules);
* :mod:`~repro.instrument.analysis.probegap` — the probe-gap certifier:
  a WCET-style interprocedural bound on the cycles any path can run
  between two firing probes, with witness paths for violations.

The ``repro-lint`` console script (:mod:`repro.instrument.analysis.cli`)
drives the linter and certifier over the kernel registry.
"""

from repro.instrument.analysis.dataflow import (
    AnalysisError,
    DataflowAnalysis,
    DataflowResult,
    Definition,
    Liveness,
    ReachableBlocks,
    ReachingDefinitions,
    instr_defs,
    instr_uses,
    terminator_uses,
)
from repro.instrument.analysis.lint import (
    ERROR,
    WARNING,
    LintFinding,
    lint_function,
    lint_module,
)
from repro.instrument.analysis.probegap import (
    INFINITE,
    CertificationError,
    GapCertificate,
    PathSummary,
    analyze_function,
    analyze_module,
    certify_module,
)

__all__ = [
    "AnalysisError",
    "CertificationError",
    "DataflowAnalysis",
    "DataflowResult",
    "Definition",
    "ERROR",
    "GapCertificate",
    "INFINITE",
    "LintFinding",
    "Liveness",
    "PathSummary",
    "ReachableBlocks",
    "ReachingDefinitions",
    "WARNING",
    "analyze_function",
    "analyze_module",
    "certify_module",
    "instr_defs",
    "instr_uses",
    "lint_function",
    "lint_module",
    "terminator_uses",
]
