"""``repro-lint``: lint + probe-gap certification for the kernel registry.

For every requested kernel the tool rebuilds the module, runs the same
optimization/instrumentation pipeline as the profiler, lints the
instrumented IR, and certifies its worst probe-free cycle stretch.  With
``--differential`` it also interprets the kernel and checks the static
bound dominates the dynamically observed maximum probe gap — the
end-to-end soundness test.  Exit status is non-zero on lint errors, an
unbounded certificate, a violated ``--bound``, or a differential miss.

Examples::

    repro-lint                         # lint + certify all 24 kernels
    repro-lint --kernel fft --kernel radix --style rdtsc
    repro-lint --differential --scale 0.05 --bound 200000
"""

import argparse
import sys

from repro.instrument.analysis.lint import ERROR, lint_module
from repro.instrument.analysis.probegap import INFINITE, certify_module
from repro.instrument.interp import Interpreter
from repro.instrument.kernels.registry import KERNELS, kernel_by_name
from repro.instrument.optim import optimize_function
from repro.instrument.passes import (
    CACHELINE_STYLE,
    LoopUnrollPass,
    ProbeInsertionPass,
    RDTSC_STYLE,
)

__all__ = ["build_instrumented", "inspect_kernel", "main"]


def build_instrumented(spec, style=CACHELINE_STYLE, scale=1.0, unroll=True):
    """Build one kernel the way the profiler does: optimize, insert
    probes, and (cache-line style) periodize back-edge probes."""
    module = spec.build(scale=scale)
    for function in module.functions.values():
        optimize_function(function)
    probe_pass = ProbeInsertionPass(style)
    for function in module.functions.values():
        probe_pass.run(function)
    if style == CACHELINE_STYLE and unroll:
        unroll_pass = LoopUnrollPass()
        for function in module.functions.values():
            unroll_pass.run(function)
    return module


class KernelReport:
    """Lint findings + certificate (+ optional dynamic gap) for one kernel."""

    def __init__(self, spec, findings, certificate, dynamic_max_gap=None):
        self.spec = spec
        self.findings = findings
        self.certificate = certificate
        self.dynamic_max_gap = dynamic_max_gap

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self):
        return [f for f in self.findings if f.severity != ERROR]

    @property
    def sound(self):
        """Static bound dominates the observed gap (None = not measured)."""
        if self.dynamic_max_gap is None:
            return None
        return (
            self.certificate.internal_bound + 1e-6 >= self.dynamic_max_gap
        )

    def ok(self, max_gap_cycles=None):
        if self.errors or not self.certificate.certified:
            return False
        if (
            max_gap_cycles is not None
            and self.certificate.gap_bound > max_gap_cycles
        ):
            return False
        return self.sound is not False


def inspect_kernel(spec, style=CACHELINE_STYLE, scale=1.0,
                   differential=False):
    """Lint + certify one kernel; optionally measure the dynamic gap."""
    module = build_instrumented(spec, style=style, scale=scale)
    findings = lint_module(module, expect_probes=True)
    certificate = certify_module(module)
    dynamic = None
    if differential:
        run = Interpreter(module).run()
        gaps = run.probe_gaps()
        dynamic = max(gaps) if gaps else 0.0
    return KernelReport(spec, findings, certificate, dynamic)


def _format_cycles(value):
    if value >= INFINITE:
        return "unbounded"
    return "{:.0f}".format(value)


def _print_report(reports, max_gap_cycles, differential, out):
    header = ["kernel", "suite", "bound(cyc)", "internal(cyc)"]
    if differential:
        header += ["dynamic(cyc)", "sound"]
    header += ["lint", "status"]
    rows = []
    for report in reports:
        certificate = report.certificate
        row = [
            report.spec.name,
            report.spec.suite,
            _format_cycles(certificate.gap_bound),
            _format_cycles(certificate.internal_bound),
        ]
        if differential:
            row.append("{:.0f}".format(report.dynamic_max_gap))
            row.append("yes" if report.sound else "NO")
        lint = "{}E/{}W".format(len(report.errors), len(report.warnings))
        row.append(lint)
        row.append("ok" if report.ok(max_gap_cycles) else "FAIL")
        rows.append(row)
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line, file=out)
    print("-" * len(line), file=out)
    for row in rows:
        print(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)), file=out
        )


def _print_failures(reports, out):
    for report in reports:
        for finding in report.errors:
            print("{}: {}".format(report.spec.name, finding), file=out)
        if not report.certificate.certified:
            print(
                "{}: unbounded probe-free path; witness:".format(
                    report.spec.name
                ),
                file=out,
            )
            for step in report.certificate.witness[:12]:
                print("    {}".format(step), file=out)
        if report.sound is False:
            print(
                "{}: static bound {:.0f} < dynamic max gap {:.0f} "
                "(UNSOUND)".format(
                    report.spec.name,
                    report.certificate.internal_bound,
                    report.dynamic_max_gap,
                ),
                file=out,
            )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Lint and probe-gap-certify instrumentation kernels.",
    )
    parser.add_argument(
        "--kernel", action="append", metavar="NAME",
        help="kernel to check (repeatable; default: all 24)",
    )
    parser.add_argument(
        "--style", choices=[CACHELINE_STYLE, RDTSC_STYLE],
        default=CACHELINE_STYLE, help="probe style to instrument with",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="kernel size scale factor (default 1.0)",
    )
    parser.add_argument(
        "--bound", type=float, default=None, metavar="CYCLES",
        help="fail any kernel whose certified gap exceeds this",
    )
    parser.add_argument(
        "--differential", action="store_true",
        help="also interpret each kernel and require static >= dynamic",
    )
    parser.add_argument(
        "--list", action="store_true", help="list kernels and exit",
    )
    parser.add_argument(
        "--show-warnings", action="store_true",
        help="print warning-level lint findings",
    )
    args = parser.parse_args(argv)

    if args.list:
        for spec in KERNELS:
            print("{}  ({})".format(spec.name, spec.suite))
        return 0

    try:
        specs = (
            [kernel_by_name(name) for name in args.kernel]
            if args.kernel else list(KERNELS)
        )
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    reports = [
        inspect_kernel(
            spec, style=args.style, scale=args.scale,
            differential=args.differential,
        )
        for spec in specs
    ]
    _print_report(reports, args.bound, args.differential, sys.stdout)
    _print_failures(reports, sys.stderr)
    if args.show_warnings:
        for report in reports:
            for finding in report.warnings:
                print(
                    "{}: {}".format(report.spec.name, finding),
                    file=sys.stderr,
                )
    failed = [r for r in reports if not r.ok(args.bound)]
    if failed:
        print(
            "FAILED: {}".format(", ".join(r.spec.name for r in failed)),
            file=sys.stderr,
        )
        return 1
    print(
        "certified {} kernel(s): every probe-free stretch is finite{}".format(
            len(reports),
            " and dominates the dynamic gap" if args.differential else "",
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
