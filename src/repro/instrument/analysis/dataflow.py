"""A generic iterative dataflow framework over the instrumentation CFG.

Analyses subclass :class:`DataflowAnalysis`, pick a direction, and supply
the lattice (``initial`` / ``boundary`` values, a ``join``) plus a
per-block ``transfer`` function; :meth:`DataflowAnalysis.run` iterates a
worklist to the fixed point.  Three classic clients ship with the
framework and back the IR linter and the strengthened verifier:

* :class:`ReachingDefinitions` — which definition sites may reach each
  block (union join); powers the real use-before-def check.
* :class:`Liveness` — which registers are live at block boundaries
  (backward, union join); powers the dead-store lint.
* :class:`ReachableBlocks` — which blocks any entry path reaches
  (forward, boolean or-join); powers the unreachable-code lint.

The probe-gap certifier (:mod:`repro.instrument.analysis.probegap`)
shares this module's use/def helpers and block orderings.
"""

from repro.instrument.cfg import ControlFlowGraph

__all__ = [
    "AnalysisError",
    "DataflowAnalysis",
    "DataflowResult",
    "Definition",
    "Liveness",
    "ReachableBlocks",
    "ReachingDefinitions",
    "instr_defs",
    "instr_uses",
    "terminator_uses",
]

FORWARD = "forward"
BACKWARD = "backward"

#: Synthetic definition site for function parameters.
PARAM_SITE = "<params>"

#: Fixed-point iteration cap: lattices here have finite height, so this
#: only trips on a broken transfer function (non-monotone).
MAX_PASSES = 1000


class AnalysisError(RuntimeError):
    """A dataflow analysis failed to converge or was misconfigured."""


# -- use/def helpers ---------------------------------------------------------------


def instr_defs(instr):
    """Registers written by ``instr`` (empty for stores and probes)."""
    return (instr.dst,) if instr.dst is not None else ()


def instr_uses(instr):
    """Registers read by ``instr`` (callee names are not registers)."""
    args = instr.args
    if instr.op in ("call", "ext_call"):
        args = args[1:]
    return tuple(a for a in args if isinstance(a, str))


def terminator_uses(terminator):
    """Registers read by a terminator (branch targets are labels, not
    registers; only ``br`` conditions and ``ret`` values count)."""
    if terminator.op == "br":
        cond = terminator.args[0]
        return (cond,) if isinstance(cond, str) else ()
    if terminator.op == "ret":
        return tuple(a for a in terminator.args if isinstance(a, str))
    return ()


# -- the framework -----------------------------------------------------------------


class DataflowResult:
    """Fixed-point values per block.

    ``entry[label]`` is the value at the block's entry in *program* order
    and ``exit[label]`` the value at its exit — for a backward analysis
    the flow runs exit -> entry, but the naming stays programmatic so
    clients read results without direction gymnastics.
    """

    def __init__(self, entry, exit, passes):
        self.entry = entry
        self.exit = exit
        self.passes = passes

    def __repr__(self):
        return "DataflowResult({} blocks, {} passes)".format(
            len(self.entry), self.passes
        )


class DataflowAnalysis:
    """Base class for iterative dataflow analyses over a Function.

    Subclasses set :attr:`DIRECTION` and implement:

    * ``initial(function)`` — the optimistic interior value;
    * ``boundary(function)`` — the value at the CFG boundary (function
      entry for forward analyses, every ``ret`` block for backward ones);
    * ``join(values)`` — combine a non-empty list of flow values;
    * ``transfer(function, label, value)`` — push one value through one
      block, in the direction of the analysis.

    Values must be comparable with ``==`` and treated as immutable.
    """

    DIRECTION = FORWARD

    def initial(self, function):
        raise NotImplementedError

    def boundary(self, function):
        raise NotImplementedError

    def join(self, values):
        raise NotImplementedError

    def transfer(self, function, label, value):
        raise NotImplementedError

    # -- driver ------------------------------------------------------------------

    def run(self, function, cfg=None):
        """Iterate to the fixed point; returns a :class:`DataflowResult`."""
        cfg = cfg or ControlFlowGraph(function)
        forward = self.DIRECTION == FORWARD
        if not forward and self.DIRECTION != BACKWARD:
            raise AnalysisError(
                "unknown direction {!r}".format(self.DIRECTION)
            )
        labels = list(function.block_order)
        if not forward:
            labels = list(reversed(labels))

        if forward:
            flow_preds = cfg.predecessors
            is_boundary = {function.entry}
        else:
            flow_preds = cfg.successors
            is_boundary = {
                label
                for label, block in function.blocks.items()
                if block.terminator is not None
                and block.terminator.op == "ret"
            }

        boundary_value = self.boundary(function)
        initial_value = self.initial(function)
        in_value = {}
        out_value = {}
        for label in labels:
            in_value[label] = (
                boundary_value if label in is_boundary else initial_value
            )
            out_value[label] = self.transfer(function, label, in_value[label])

        passes = 0
        changed = True
        while changed:
            passes += 1
            if passes > MAX_PASSES:
                raise AnalysisError(
                    "no fixed point after {} passes over {!r}".format(
                        MAX_PASSES, function.name
                    )
                )
            changed = False
            for label in labels:
                incoming = [out_value[p] for p in flow_preds[label]]
                if label in is_boundary:
                    incoming.append(boundary_value)
                if not incoming:
                    continue
                new_in = self.join(incoming)
                if new_in == in_value[label]:
                    continue
                in_value[label] = new_in
                out_value[label] = self.transfer(function, label, new_in)
                changed = True

        if forward:
            return DataflowResult(in_value, out_value, passes)
        return DataflowResult(out_value, in_value, passes)


# -- reaching definitions ----------------------------------------------------------


class Definition(tuple):
    """A definition site ``(register, block_label, instr_index)``.

    Parameters are modelled as definitions at the synthetic site
    ``(register, PARAM_SITE, position)``.
    """

    __slots__ = ()

    def __new__(cls, register, label, index):
        return tuple.__new__(cls, (register, label, index))

    @property
    def register(self):
        return self[0]

    @property
    def label(self):
        return self[1]

    @property
    def index(self):
        return self[2]


class ReachingDefinitions(DataflowAnalysis):
    """Which definition sites may reach each block (forward, may)."""

    DIRECTION = FORWARD

    def initial(self, function):
        return frozenset()

    def boundary(self, function):
        return frozenset(
            Definition(register, PARAM_SITE, position)
            for position, register in enumerate(function.params)
        )

    def join(self, values):
        return frozenset().union(*values)

    def transfer(self, function, label, value):
        live = {d for d in value}
        for index, instr in enumerate(function.block(label).instrs):
            for register in instr_defs(instr):
                live = {d for d in live if d.register != register}
                live.add(Definition(register, label, index))
        return frozenset(live)

    # -- clients -----------------------------------------------------------------

    def undefined_uses(self, function, cfg=None):
        """Uses of registers with *no* reaching definition on any path.

        Returns ``(label, index_or_None, register)`` triples; ``index`` is
        None for terminator uses.  Only blocks reachable from the entry
        are checked (unreachable code is the linter's concern).
        """
        cfg = cfg or ControlFlowGraph(function)
        result = self.run(function, cfg)
        reachable = cfg.reachable()
        undefined = []
        for label in function.block_order:
            if label not in reachable:
                continue
            block = function.block(label)
            known = {d.register for d in result.entry[label]}
            for index, instr in enumerate(block.instrs):
                for register in instr_uses(instr):
                    if register not in known:
                        undefined.append((label, index, register))
                known.update(instr_defs(instr))
            for register in terminator_uses(block.terminator):
                if register not in known:
                    undefined.append((label, None, register))
        return undefined


# -- liveness ----------------------------------------------------------------------


class Liveness(DataflowAnalysis):
    """Which registers are live at block boundaries (backward, may)."""

    DIRECTION = BACKWARD

    def initial(self, function):
        return frozenset()

    def boundary(self, function):
        return frozenset()

    def join(self, values):
        return frozenset().union(*values)

    def transfer(self, function, label, value):
        block = function.block(label)
        live = set(value)
        if block.terminator is not None:
            live.update(terminator_uses(block.terminator))
        for instr in reversed(block.instrs):
            live.difference_update(instr_defs(instr))
            live.update(instr_uses(instr))
        return frozenset(live)

    # -- clients -----------------------------------------------------------------

    def dead_definitions(self, function, cfg=None, pure_ops=None):
        """Definitions whose value no path ever reads (flow-sensitive).

        ``pure_ops`` restricts reporting to side-effect-free opcodes (the
        only ones a compiler could delete); defaults to every opcode with
        a destination except calls.  Returns ``(label, index, register)``.
        """
        cfg = cfg or ControlFlowGraph(function)
        result = self.run(function, cfg)
        dead = []
        for label in function.block_order:
            block = function.block(label)
            live = set(result.exit[label])
            if block.terminator is not None:
                live.update(terminator_uses(block.terminator))
            trailing = []
            for index in range(len(block.instrs) - 1, -1, -1):
                instr = block.instrs[index]
                if instr.dst is not None and instr.dst not in live:
                    if pure_ops is None or instr.op in pure_ops:
                        trailing.append((label, index, instr.dst))
                live.difference_update(instr_defs(instr))
                live.update(instr_uses(instr))
            dead.extend(reversed(trailing))
        return dead


# -- reachability ------------------------------------------------------------------


class ReachableBlocks(DataflowAnalysis):
    """Whether any path from the entry reaches each block (forward, or)."""

    DIRECTION = FORWARD

    def initial(self, function):
        return False

    def boundary(self, function):
        return True

    def join(self, values):
        return any(values)

    def transfer(self, function, label, value):
        return value

    def unreachable(self, function, cfg=None):
        """Labels no entry path reaches, in block order."""
        cfg = cfg or ControlFlowGraph(function)
        result = self.run(function, cfg)
        return [
            label
            for label in function.block_order
            if not result.entry[label]
        ]
