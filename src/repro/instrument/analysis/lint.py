"""An IR linter built on the dataflow framework.

Checks fall into two tiers.  *Errors* are violations of invariants the
interpreter or the instrumentation contract relies on: uses of registers
no path ever defines, ``ext_call`` sites without a sane cycle cost,
malformed probe attributes, and — for instrumented code — probes missing
from the places section 4.3 mandates (function entry, loop latches).
*Warnings* are code-quality findings a real compiler would clean up:
unreachable blocks and dead stores.

``repro-lint`` (see :mod:`repro.instrument.analysis.cli`) runs these
checks plus the probe-gap certifier over the kernel registry.
"""

from dataclasses import dataclass

from repro.instrument.cfg import ControlFlowGraph
from repro.instrument.analysis.dataflow import (
    Liveness,
    ReachableBlocks,
    ReachingDefinitions,
)

__all__ = ["ERROR", "WARNING", "LintFinding", "lint_function", "lint_module"]

ERROR = "error"
WARNING = "warning"

#: Opcodes a compiler could delete when their result is dead (mirrors
#: the DCE pass's notion of purity; probes/calls/stores never qualify).
_DELETABLE_OPS = {
    "li", "mov", "add", "sub", "mul", "div", "and", "or", "xor", "shl",
    "shr", "fadd", "fsub", "fmul", "fdiv", "cmp_lt", "cmp_le", "cmp_eq",
    "cmp_ne", "load",
}

_PROBE_STYLES = {"cacheline", "rdtsc"}


@dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic, attributable to a block in a function."""

    check: str
    severity: str
    function: str
    block: str
    message: str

    def __str__(self):
        return "{}: {}.{}: {} [{}]".format(
            self.severity, self.function, self.block, self.message,
            self.check,
        )


def _check_use_before_def(function, cfg, findings):
    for label, index, register in ReachingDefinitions().undefined_uses(
        function, cfg
    ):
        where = (
            "terminator" if index is None
            else "instruction {}".format(index)
        )
        findings.append(LintFinding(
            "use-before-def", ERROR, function.name, label,
            "register {!r} read at {} but never defined on any "
            "path".format(register, where),
        ))


def _check_unreachable(function, cfg, findings):
    for label in ReachableBlocks().unreachable(function, cfg):
        findings.append(LintFinding(
            "unreachable-block", WARNING, function.name, label,
            "no path from entry reaches this block",
        ))


def _check_dead_stores(function, cfg, findings):
    for label, index, register in Liveness().dead_definitions(
        function, cfg, pure_ops=_DELETABLE_OPS
    ):
        instr = function.block(label).instrs[index]
        findings.append(LintFinding(
            "dead-store", WARNING, function.name, label,
            "{} to {!r} at instruction {} is never read".format(
                instr.op, register, index
            ),
        ))


def _check_ext_call_costs(function, findings):
    for block in function.iter_blocks():
        for index, instr in enumerate(block.instrs):
            if not instr.is_ext_call:
                continue
            cost = instr.attrs.get("cost")
            if cost is None:
                findings.append(LintFinding(
                    "ext-call-cost", ERROR, function.name, block.label,
                    "ext_call {!r} at instruction {} carries no "
                    "cost".format(instr.args[0], index),
                ))
            elif not isinstance(cost, (int, float)) or isinstance(
                cost, bool
            ) or cost < 0:
                findings.append(LintFinding(
                    "ext-call-cost", ERROR, function.name, block.label,
                    "ext_call {!r} at instruction {} has invalid cost "
                    "{!r}".format(instr.args[0], index, cost),
                ))


def _check_probe_attrs(function, findings):
    for block in function.iter_blocks():
        for index, instr in enumerate(block.instrs):
            if not instr.is_probe:
                continue
            attrs = instr.attrs
            problems = []
            style = attrs.get("style")
            if style not in _PROBE_STYLES:
                problems.append("unknown style {!r}".format(style))
            period = attrs.get("period", 1)
            if not isinstance(period, int) or period < 1:
                problems.append("invalid period {!r}".format(period))
            cost = attrs.get("cost")
            if not isinstance(cost, (int, float)) or cost < 0:
                problems.append("invalid cost {!r}".format(cost))
            threshold = attrs.get("threshold")
            if threshold is not None and (
                not isinstance(threshold, (int, float)) or threshold <= 0
            ):
                problems.append("invalid threshold {!r}".format(threshold))
            for problem in problems:
                findings.append(LintFinding(
                    "probe-attrs", ERROR, function.name, block.label,
                    "probe at instruction {}: {}".format(index, problem),
                ))


def _check_probe_placement(function, cfg, findings):
    """Section 4.3's placement rule: a probe at function entry and one at
    every loop back-edge (in the latch block)."""
    entry_block = function.block(function.entry)
    if not any(i.is_probe for i in entry_block.instrs):
        findings.append(LintFinding(
            "missing-entry-probe", ERROR, function.name, function.entry,
            "instrumented function lacks a probe in its entry block",
        ))
    reachable = cfg.reachable()
    for loop in cfg.natural_loops():
        if loop.header not in reachable:
            continue
        latch = function.block(loop.latch)
        if not any(i.is_probe for i in latch.instrs):
            findings.append(LintFinding(
                "missing-latch-probe", ERROR, function.name, loop.latch,
                "back edge to {!r} has no probe in its latch "
                "block".format(loop.header),
            ))


def lint_function(function, expect_probes=False, cfg=None):
    """Run every lint check on one function; returns the findings.

    ``expect_probes`` additionally enforces the instrumentation
    placement rule — enable it only for code that already went through
    :class:`~repro.instrument.passes.ProbeInsertionPass`.
    """
    cfg = cfg or ControlFlowGraph(function)
    findings = []
    _check_use_before_def(function, cfg, findings)
    _check_unreachable(function, cfg, findings)
    _check_dead_stores(function, cfg, findings)
    _check_ext_call_costs(function, findings)
    _check_probe_attrs(function, findings)
    if expect_probes:
        _check_probe_placement(function, cfg, findings)
    return findings


def lint_module(module, expect_probes=False):
    """Lint every function in a module; returns the combined findings."""
    findings = []
    for name in sorted(module.functions):
        findings.extend(
            lint_function(module.functions[name], expect_probes)
        )
    return findings
