"""Static probe-gap certification: a WCET-style bound on probe-free cycles.

Concord's correctness claim (section 4.3) is that the compiler bounds how
many cycles any code path can run between two preemption probes.  The
interpreter only *observes* probe gaps for the inputs it happens to run;
this module *proves* a bound from the CFG alone, so every kernel and every
future IR change can be certified rather than spot-checked.

The analysis composes **path summaries** over the loop nest.  A summary
abstracts a single-entry region by four quantities, each a cycle count
with a witness path:

* ``entry``   — most cycles from region entry to the *first* probe firing;
* ``exit``    — most cycles from the *last* firing to region exit;
* ``internal``— largest gap between two consecutive firings wholly inside;
* ``through`` — most expensive traversal with *no* firing at all
  (``None`` when every path through the region must fire).

Sequencing, branching (pointwise max), calls (callee summaries, in call
graph order), and loops compose these exactly like interval arithmetic.
Loops are where probe periods bite: a back-edge probe inserted with
``period=k`` (the unroll pass's amortization) may stay silent for up to
``k - 1`` consecutive iterations, so the loop's summary is inflated by
``(k - 1) x c`` where ``c`` is the worst firing-free cost of one
iteration.  rdtsc-style probes fire once their cycle ``threshold``
elapses, contributing ``threshold + c`` instead.  A back edge whose latch
block carries *no* probe admits an unbounded probe-free cycle: the bound
becomes infinite and the witness names the cycle — exactly the failure a
stripped latch probe must produce.

Soundness invariant (checked differentially in the test suite): for every
kernel, the certified ``internal`` bound dominates the maximum probe gap
the interpreter ever measures.
"""

import math

from repro.instrument.cfg import ControlFlowGraph
from repro.instrument.ir import OP_CYCLES

__all__ = [
    "CertificationError",
    "Gap",
    "GapCertificate",
    "PathSummary",
    "analyze_function",
    "analyze_module",
    "certify_module",
]

INFINITE = math.inf

#: Witness paths longer than this are elided in the middle.
_MAX_WITNESS = 60


class CertificationError(ValueError):
    """Certification failed; ``witness`` names the offending path."""

    def __init__(self, message, witness=()):
        super().__init__(message)
        self.witness = tuple(witness)


class Gap:
    """A cycle count together with the path that realizes it."""

    __slots__ = ("cycles", "witness")

    def __init__(self, cycles, witness=()):
        self.cycles = float(cycles)
        self.witness = tuple(witness)

    def __repr__(self):
        return "Gap({:.2f}, {} steps)".format(self.cycles, len(self.witness))


def _squeeze(parts):
    """Drop consecutive duplicates and elide overlong witness paths."""
    out = []
    for part in parts:
        if not out or out[-1] != part:
            out.append(part)
    if len(out) > _MAX_WITNESS:
        half = _MAX_WITNESS // 2
        out = out[:half] + ["..."] + out[-half:]
    return tuple(out)


def _pick(*gaps):
    """Largest of the given gaps, ignoring ``None`` (no such path)."""
    best = None
    for gap in gaps:
        if gap is not None and (best is None or gap.cycles > best.cycles):
            best = gap
    return best


def _chain(*gaps):
    """Concatenate gaps into one path; ``None`` if any leg is missing."""
    total = 0.0
    witness = []
    for gap in gaps:
        if gap is None:
            return None
        total += gap.cycles
        witness.extend(gap.witness)
    return Gap(total, _squeeze(witness))


class PathSummary:
    """Gap summary of a single-entry region (see module docstring)."""

    __slots__ = ("entry", "exit", "internal", "through")

    def __init__(self, entry=None, exit=None, internal=None, through=None):
        self.entry = entry
        self.exit = exit
        self.internal = internal
        self.through = through

    @property
    def always_fires(self):
        """True when every traversal of the region fires a probe."""
        return self.through is None

    def __repr__(self):
        def show(gap):
            return "-" if gap is None else "{:.1f}".format(gap.cycles)

        return "PathSummary(entry={}, exit={}, internal={}, through={})".format(
            show(self.entry), show(self.exit), show(self.internal),
            show(self.through),
        )


def _identity():
    return PathSummary(through=Gap(0.0))


def _cost(cycles, tag=None):
    return PathSummary(through=Gap(cycles, (tag,) if tag else ()))


def _seq(a, b):
    """Summary of region ``a`` followed by region ``b``."""
    return PathSummary(
        entry=_pick(a.entry, _chain(a.through, b.entry)),
        exit=_pick(b.exit, _chain(a.exit, b.through)),
        internal=_pick(a.internal, b.internal, _chain(a.exit, b.entry)),
        through=_chain(a.through, b.through),
    )


def _alt(a, b):
    """Summary of either region ``a`` or region ``b`` (path join)."""
    if a is None:
        return b
    if b is None:
        return a
    return PathSummary(
        entry=_pick(a.entry, b.entry),
        exit=_pick(a.exit, b.exit),
        internal=_pick(a.internal, b.internal),
        through=_pick(a.through, b.through),
    )


# -- elements ----------------------------------------------------------------------


def _probe_element(instr, tag):
    """Summary of one probe site, honouring period/threshold semantics."""
    attrs = instr.attrs
    threshold = attrs.get("threshold")
    if threshold is not None:
        # rdtsc style: a cheap counter visit always happens; the full check
        # fires only once the interval elapsed — so the probe may stay
        # silent (modelled by ``through``) and the loop-level threshold
        # inflation bounds how long.
        visit = float(attrs.get("visit_cost", 0))
        return PathSummary(
            entry=Gap(visit + attrs["cost"], (tag + " probe(rdtsc)",)),
            exit=Gap(0.0),
            through=Gap(visit),
        )
    period = int(attrs.get("period", 1))
    fire = Gap(float(attrs["cost"]), (tag + " probe",))
    if period > 1:
        # Unrolled back-edge probe: silent on up to period-1 consecutive
        # visits (free of charge), accounted for by the loop inflation.
        return PathSummary(entry=fire, exit=Gap(0.0), through=Gap(0.0))
    return PathSummary(entry=fire, exit=Gap(0.0), through=None)


def _block_summary(function, block, callee_summaries):
    """Summary of one basic block, terminator cost included."""
    tag = "{}.{}".format(function.name, block.label)
    summary = _identity()
    pending = 0.0

    def flush():
        nonlocal summary, pending
        if pending:
            summary = _seq(summary, _cost(pending, tag))
            pending = 0.0

    for instr in block.instrs:
        op = instr.op
        if op == "probe":
            flush()
            summary = _seq(summary, _probe_element(instr, tag))
        elif op == "ext_call":
            pending += float(instr.attrs["cost"])
        elif op == "call":
            pending += float(OP_CYCLES["call"])
            flush()
            callee = callee_summaries.get(instr.args[0])
            if callee is None:
                raise CertificationError(
                    "{}: call to unanalyzed function {!r}".format(
                        tag, instr.args[0]
                    )
                )
            summary = _seq(summary, callee)
        else:
            cost = OP_CYCLES[op]
            discount = instr.attrs.get("discount") if instr.attrs else None
            pending += cost / discount if discount else float(cost)
    terminator = block.terminator
    t_discount = terminator.attrs.get("discount")
    pending += 1.0 / t_discount if t_discount else 1.0
    flush()
    return summary


# -- loop nest ---------------------------------------------------------------------


class _Loop:
    __slots__ = ("header", "latches", "body", "children", "parent")

    def __init__(self, header):
        self.header = header
        self.latches = []
        self.body = set()
        self.children = []
        self.parent = None


def _loop_forest(function, cfg, reachable):
    """Natural loops merged by header and nested into a forest.

    Returns ``(top_level_loops, owner)`` where ``owner`` maps each block
    label to its innermost containing loop (or None).
    """
    merged = {}
    for loop in cfg.natural_loops():
        if loop.header not in reachable:
            continue
        entry = merged.get(loop.header)
        if entry is None:
            entry = merged[loop.header] = _Loop(loop.header)
        entry.latches.append(loop.latch)
        entry.body.update(loop.body)

    loops = sorted(merged.values(), key=lambda l: len(l.body))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1:]:
            if outer is inner or inner.header not in outer.body:
                continue
            if not inner.body <= outer.body:
                raise CertificationError(
                    "{}: loops at {!r} and {!r} overlap without nesting "
                    "(irreducible control flow)".format(
                        function.name, inner.header, outer.header
                    )
                )
            inner.parent = outer
            outer.children.append(inner)
            break

    owner = {}
    for loop in loops:  # innermost first: first owner assignment wins
        for label in loop.body:
            owner.setdefault(label, loop)
    top = [loop for loop in loops if loop.parent is None]
    return top, owner


def _eval_dag(nodes, start, edges, elements, context):
    """Propagate path summaries over an acyclic region graph.

    Returns ``out`` summaries per node (``None`` for nodes no region path
    reaches).  Raises on a cycle: with back edges removed and loops
    collapsed, a residual cycle means irreducible control flow.
    """
    indegree = {node: 0 for node in nodes}
    for node in nodes:
        for succ in edges[node]:
            indegree[succ] += 1
    ready = [node for node in nodes if indegree[node] == 0]
    incoming = {node: None for node in nodes}
    incoming[start] = _identity()
    out = {}
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        arrived = incoming[node]
        out[node] = (
            None if arrived is None else _seq(arrived, elements[node])
        )
        for succ in edges[node]:
            if out[node] is not None:
                incoming[succ] = _alt(incoming[succ], out[node])
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if seen != len(nodes):
        raise CertificationError(
            "{}: irreducible control flow (cycle not headed by a natural "
            "loop)".format(context)
        )
    return out


def _latch_inflation(function, loop, iteration_through):
    """Gap a loop's silent back-edge probes can accumulate.

    ``iteration_through`` is the worst firing-free cost of one iteration
    (``None`` when every iteration fires, making inflation moot).  Each
    back edge contributes according to its latch block's probes: a
    ``period=k`` probe stays silent for at most ``k - 1`` iterations, an
    rdtsc probe for at most ``threshold`` accumulated cycles, and a latch
    with *no* probe admits an unbounded probe-free cycle.
    """
    if iteration_through is None:
        return Gap(0.0)
    c = iteration_through
    total = Gap(0.0)
    for latch in loop.latches:
        probes = [i for i in function.block(latch).instrs if i.is_probe]
        if not probes:
            return Gap(
                INFINITE,
                (
                    "probe-free cycle: loop at {!r} (latch {!r}, "
                    "{:.1f} cycles/iteration)".format(
                        loop.header, latch, c.cycles
                    ),
                )
                + c.witness,
            )
        best = None
        for probe in probes:
            threshold = probe.attrs.get("threshold")
            if threshold is not None:
                candidate = Gap(
                    threshold + c.cycles,
                    ("loop {!r}: rdtsc threshold {} + iteration".format(
                        loop.header, threshold
                    ),) + c.witness,
                )
            else:
                period = int(probe.attrs.get("period", 1))
                if period <= 1:
                    candidate = Gap(0.0)
                else:
                    candidate = Gap(
                        (period - 1) * c.cycles,
                        ("loop {!r}: {} silent iterations "
                         "(probe period {})".format(
                             loop.header, period - 1, period
                         ),) + c.witness,
                    )
            if best is None or candidate.cycles < best.cycles:
                best = candidate
        total = _chain(total, best)
    return total


def _loop_summary(function, cfg, loop, callee_summaries, reachable):
    """Summary of a whole loop, from header entry to any exit edge."""
    child_of = {}
    for child in loop.children:
        for label in child.body:
            child_of[label] = child

    nodes = []
    for label in loop.body:
        if label not in reachable:
            continue
        child = child_of.get(label)
        if child is None:
            nodes.append(label)
        elif child.header == label:
            nodes.append(label)  # the child loop, represented by its header

    def represent(label):
        child = child_of.get(label)
        return child.header if child is not None else label

    elements = {}
    edges = {node: [] for node in nodes}
    back_edge_nodes = set()
    latch_blocks = set()
    exit_nodes = set()

    def successors_of(node):
        child = child_of.get(node)
        if child is not None:
            return [
                (source, succ)
                for source in child.body
                for succ in cfg.successors[source]
                if succ not in child.body
            ]
        return [(node, succ) for succ in cfg.successors[node]]

    for node in nodes:
        child = child_of.get(node)
        if child is not None:
            elements[node] = _loop_summary(
                function, cfg, child, callee_summaries, reachable
            )
        else:
            elements[node] = _block_summary(
                function, function.block(node), callee_summaries
            )
        for source, succ in successors_of(node):
            if succ == loop.header:
                back_edge_nodes.add(node)
                latch_blocks.add(source)
            elif succ in loop.body:
                target = represent(succ)
                if target not in edges[node]:
                    edges[node].append(target)
            else:
                exit_nodes.add(node)

    out = _eval_dag(
        nodes, loop.header, edges, elements,
        "{} loop {!r}".format(function.name, loop.header),
    )

    iteration = None
    for node in sorted(back_edge_nodes):
        iteration = _alt(iteration, out[node])
    exits = None
    for node in sorted(exit_nodes):
        exits = _alt(exits, out[node])

    if iteration is None:  # pragma: no cover - loops always have back edges
        return exits if exits is not None else PathSummary()

    inflate = _latch_inflation(
        function, _LoopLatches(loop, latch_blocks), iteration.through
    )

    first_fire = _pick(
        iteration.entry, exits.entry if exits is not None else None
    )
    return PathSummary(
        entry=_chain(inflate, first_fire) if first_fire is not None else None,
        exit=_pick(
            exits.exit if exits is not None else None,
            _chain(iteration.exit, inflate, exits.through)
            if exits is not None else None,
        ),
        internal=_pick(
            iteration.internal,
            exits.internal if exits is not None else None,
            _chain(iteration.exit, inflate, iteration.entry),
            _chain(iteration.exit, inflate, exits.entry)
            if exits is not None else None,
        ),
        through=(
            _chain(inflate, exits.through) if exits is not None else None
        ),
    )


class _LoopLatches:
    """Adapter presenting the *actual* back-edge source blocks as latches
    (a back edge can originate inside a nested loop)."""

    __slots__ = ("header", "latches")

    def __init__(self, loop, latch_blocks):
        self.header = loop.header
        self.latches = sorted(latch_blocks)


# -- functions and modules ---------------------------------------------------------


def analyze_function(function, callee_summaries=None, cfg=None):
    """Compute the probe-gap :class:`PathSummary` of one function.

    ``callee_summaries`` maps already-analyzed callee names to their
    summaries (see :func:`analyze_module` for the call-graph ordering).
    """
    callee_summaries = callee_summaries or {}
    cfg = cfg or ControlFlowGraph(function)
    reachable = cfg.reachable()
    top_loops, owner = _loop_forest(function, cfg, reachable)

    nodes = []
    elements = {}
    for label in function.block_order:
        if label not in reachable:
            continue
        loop = owner.get(label)
        if loop is None:
            nodes.append(label)
            elements[label] = _block_summary(
                function, function.block(label), callee_summaries
            )
    for loop in top_loops:
        root = loop
        while root.parent is not None:  # pragma: no cover - already top
            root = root.parent
        nodes.append(root.header)
        elements[root.header] = _loop_summary(
            function, cfg, root, callee_summaries, reachable
        )

    def represent(label):
        loop = owner.get(label)
        if loop is None:
            return label
        while loop.parent is not None:
            loop = loop.parent
        return loop.header

    edges = {node: [] for node in nodes}
    for node in nodes:
        loop = owner.get(node)
        if loop is not None:
            outgoing = {
                succ
                for source in loop.body
                for succ in cfg.successors[source]
                if succ not in loop.body and succ in reachable
            }
        else:
            outgoing = [s for s in cfg.successors[node] if s in reachable]
        for succ in sorted(outgoing):
            target = represent(succ)
            if target != node and target not in edges[node]:
                edges[node].append(target)

    out = _eval_dag(
        nodes, represent(function.entry), edges, elements, function.name
    )

    returning = None
    deepest_entry = None
    deepest_internal = None
    for node in nodes:
        summary = out.get(node)
        if summary is None:
            continue
        deepest_entry = _pick(deepest_entry, summary.entry)
        deepest_internal = _pick(deepest_internal, summary.internal)
        loop = owner.get(node)
        block = function.blocks.get(node)
        if loop is None and block.terminator.op == "ret":
            returning = _alt(returning, summary)

    if returning is None:
        # The function never returns; its gaps still count for callers
        # that get stuck inside it, but nothing flows past the call.
        return PathSummary(entry=deepest_entry, internal=deepest_internal)
    return PathSummary(
        entry=_pick(returning.entry, deepest_entry),
        exit=returning.exit,
        internal=_pick(returning.internal, deepest_internal),
        through=returning.through,
    )


def _call_graph_order(module):
    """Functions in callee-before-caller order; rejects recursion."""
    DONE, ACTIVE = 1, 0
    state = {}
    order = []

    def visit(name, chain):
        if state.get(name) is DONE:
            return
        if state.get(name) is ACTIVE:
            raise CertificationError(
                "recursive call cycle: {}".format(
                    " -> ".join(chain + [name])
                ),
                witness=tuple(chain + [name]),
            )
        function = module.functions.get(name)
        if function is None:
            raise CertificationError(
                "call to unknown function {!r}".format(name)
            )
        state[name] = ACTIVE
        for block in function.iter_blocks():
            for instr in block.instrs:
                if instr.op == "call":
                    visit(instr.args[0], chain + [name])
        state[name] = DONE
        order.append(name)

    for name in module.functions:
        visit(name, [])
    return order


def analyze_module(module):
    """Summaries for every function, resolved in call-graph order."""
    summaries = {}
    for name in _call_graph_order(module):
        summaries[name] = analyze_function(
            module.functions[name], summaries
        )
    return summaries


class GapCertificate:
    """The certified probe-gap bounds of one module.

    ``gap_bound`` is the headline number: the worst uninstrumented cycle
    stretch anywhere in a run of the entry function — between two probe
    firings, before the first, after the last, or (for probe-free code)
    wall to wall.  ``internal_bound`` restricts to gaps between two
    consecutive firings, the quantity the interpreter's probe timeline
    measures, so ``internal_bound >= max(dynamic gaps)`` always.
    """

    def __init__(self, module_name, entry_function, summaries):
        self.module_name = module_name
        self.entry_function = entry_function
        self.summaries = summaries
        summary = summaries[entry_function]
        worst = _pick(
            summary.entry, summary.exit, summary.internal, summary.through
        )
        self.gap_bound = worst.cycles if worst is not None else 0.0
        self.witness = worst.witness if worst is not None else ()
        self.internal_bound = (
            summary.internal.cycles if summary.internal is not None else 0.0
        )

    @property
    def certified(self):
        """True when a finite probe-gap bound exists."""
        return self.gap_bound < INFINITE

    def check(self, max_gap_cycles=None):
        """Raise :class:`CertificationError` unless the bound is finite
        and (when given) within ``max_gap_cycles``."""
        if not self.certified:
            raise CertificationError(
                "{!r} admits an unbounded probe-free path".format(
                    self.module_name
                ),
                witness=self.witness,
            )
        if max_gap_cycles is not None and self.gap_bound > max_gap_cycles:
            raise CertificationError(
                "{!r}: certified probe gap {:.0f} cycles exceeds the "
                "configured bound {:.0f}".format(
                    self.module_name, self.gap_bound, max_gap_cycles
                ),
                witness=self.witness,
            )
        return True

    def __repr__(self):
        bound = (
            "unbounded" if not self.certified
            else "{:.0f}cyc".format(self.gap_bound)
        )
        return "GapCertificate({!r}, {})".format(self.module_name, bound)


def certify_module(module, max_gap_cycles=None):
    """Certify a module's worst probe-free stretch.

    Always returns a :class:`GapCertificate`; when ``max_gap_cycles`` is
    given, additionally enforces it via :meth:`GapCertificate.check`.
    """
    summaries = analyze_module(module)
    certificate = GapCertificate(
        module.name, module.entry_function().name, summaries
    )
    if max_gap_cycles is not None:
        certificate.check(max_gap_cycles)
    return certificate
