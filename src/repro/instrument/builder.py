"""Fluent construction API for the IR, plus loop helpers used by the
Table-1 kernels."""

from repro.instrument.ir import Function, Instr, Terminator

__all__ = ["FunctionBuilder"]


class FunctionBuilder:
    """Builds a :class:`~repro.instrument.ir.Function` incrementally.

    >>> b = FunctionBuilder("double_n", params=["n"])
    >>> b.li("two", 2)
    'two'
    >>> b.emit("mul", "result", "n", "two")
    'result'
    >>> b.ret("result")
    >>> fn = b.function
    >>> fn.instruction_count
    2
    """

    def __init__(self, name, params=()):
        self.function = Function(name, params)
        self._current = self.function.add_block("entry")
        self._temp = 0

    # -- blocks ------------------------------------------------------------------

    def block(self, label):
        """Create a block and make it current."""
        self._current = self.function.add_block(label)
        return label

    def switch_to(self, label):
        """Make an existing block current (to fill it in later)."""
        self._current = self.function.block(label)
        return label

    @property
    def current_label(self):
        return self._current.label

    # -- instructions ---------------------------------------------------------------

    def fresh(self, prefix="t"):
        """A fresh temporary register name."""
        self._temp += 1
        return "{}{}".format(prefix, self._temp)

    def emit(self, op, dst, *args, **attrs):
        """Append ``op dst, args`` to the current block; returns ``dst``."""
        self._current.append(Instr(op, dst, tuple(args), dict(attrs)))
        return dst

    def li(self, dst, value):
        """Load an immediate."""
        return self.emit("li", dst, value)

    def ext_call(self, dst, name, cost_cycles):
        """Call un-instrumented external code costing ``cost_cycles``."""
        self._current.append(
            Instr("ext_call", dst, (name,), {"cost": int(cost_cycles)})
        )
        return dst

    def call(self, dst, callee, *args):
        """Call another function in the module."""
        return self.emit("call", dst, callee, *args)

    # -- terminators -----------------------------------------------------------------

    def jump(self, label):
        self._current.terminate(Terminator("jump", (label,)))

    def br(self, cond, then_label, else_label):
        self._current.terminate(Terminator("br", (cond, then_label, else_label)))

    def ret(self, value=None):
        args = (value,) if value is not None else ()
        self._current.terminate(Terminator("ret", args))

    # -- structured helpers ----------------------------------------------------------

    def counted_loop(self, name, trip_reg_or_imm, body):
        """Emit ``for i in range(trip): body(i_reg)`` and return the loop's
        induction register.

        ``body`` is called once, with the builder positioned inside the loop
        body block and the induction register name as argument; it must not
        add terminators.  Control continues in the ``<name>.exit`` block.
        """
        i = "{}_i".format(name)
        trip = "{}_n".format(name)
        header = "{}.header".format(name)
        body_label = "{}.body".format(name)
        latch = "{}.latch".format(name)
        exit_label = "{}.exit".format(name)

        if isinstance(trip_reg_or_imm, str):
            self.emit("mov", trip, trip_reg_or_imm)
        else:
            self.li(trip, trip_reg_or_imm)
        self.li(i, 0)
        self.jump(header)

        self.block(header)
        cond = self.fresh("cond")
        self.emit("cmp_lt", cond, i, trip)
        self.br(cond, body_label, exit_label)

        self.block(body_label)
        body(i)
        self.jump(latch)

        self.block(latch)
        one = self.fresh("one")
        self.li(one, 1)
        self.emit("add", i, i, one)
        self.jump(header)

        self.block(exit_label)
        return i
