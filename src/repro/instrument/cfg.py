"""Control-flow analysis: successors/predecessors, dominators, natural loops.

The probe-insertion pass needs back edges (to probe loop iterations) and the
unroll pass needs loop bodies with their sizes; both come from the classic
dominator-based natural-loop construction.
"""

__all__ = ["ControlFlowGraph", "NaturalLoop"]


class NaturalLoop:
    """A natural loop: header block plus the body reachable backwards from
    the back edge's source (the latch)."""

    def __init__(self, header, latch, body):
        self.header = header
        self.latch = latch
        self.body = frozenset(body)

    def __repr__(self):
        return "NaturalLoop(header={!r}, latch={!r}, |body|={})".format(
            self.header, self.latch, len(self.body)
        )


class ControlFlowGraph:
    """CFG over a :class:`~repro.instrument.ir.Function`."""

    def __init__(self, function):
        self.function = function
        self.successors = {}
        self.predecessors = {label: [] for label in function.blocks}
        for label, block in function.blocks.items():
            if block.terminator is None:
                raise ValueError(
                    "block {!r} in {!r} lacks a terminator".format(
                        label, function.name
                    )
                )
            succs = block.terminator.successors()
            for succ in succs:
                if succ not in function.blocks:
                    raise ValueError(
                        "block {!r} jumps to unknown label {!r}".format(label, succ)
                    )
            self.successors[label] = succs
            for succ in succs:
                self.predecessors[succ].append(label)

    # -- reachability ------------------------------------------------------------

    def reachable(self):
        """Labels reachable from the entry block."""
        seen = set()
        stack = [self.function.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.successors[label])
        return seen

    # -- dominators ---------------------------------------------------------------

    def dominators(self):
        """Mapping label -> set of labels dominating it (iterative data-flow,
        entry dominates everything it reaches)."""
        reachable = self.reachable()
        entry = self.function.entry
        dom = {label: set(reachable) for label in reachable}
        dom[entry] = {entry}
        order = [l for l in self.function.block_order if l in reachable]
        changed = True
        while changed:
            changed = False
            for label in order:
                if label == entry:
                    continue
                preds = [p for p in self.predecessors[label] if p in reachable]
                if not preds:
                    continue
                new = set.intersection(*(dom[p] for p in preds))
                new.add(label)
                if new != dom[label]:
                    dom[label] = new
                    changed = True
        return dom

    # -- loops ------------------------------------------------------------------------

    def back_edges(self):
        """Edges (latch -> header) where the header dominates the latch."""
        dom = self.dominators()
        edges = []
        for label in dom:
            for succ in self.successors[label]:
                if succ in dom.get(label, ()):
                    edges.append((label, succ))
        return edges

    def natural_loops(self):
        """All natural loops, one per back edge."""
        loops = []
        for latch, header in self.back_edges():
            body = {header, latch}
            stack = [latch]
            while stack:
                label = stack.pop()
                if label == header:
                    continue
                for pred in self.predecessors[label]:
                    if pred not in body:
                        body.add(pred)
                        stack.append(pred)
            loops.append(NaturalLoop(header, latch, body))
        return loops

    def loop_body_instruction_count(self, loop):
        """Non-probe instructions executed per iteration of ``loop`` (its
        body blocks, excluding inner-loop multiplicities)."""
        return sum(
            self.function.block(label).instruction_count for label in loop.body
        )
