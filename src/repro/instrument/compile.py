"""Compiled fast-path for the instrumentation IR.

Lowers a :class:`~repro.instrument.ir.Module` to generated Python code
(one closure per IR function, built with ``exec``), executing 5-10x
faster than the tree-walking interpreter while producing **bit-identical**
results: the same return value, cycle count, instruction count, probe
firings, and probe timeline.

How fidelity is kept:

* Registers become Python locals, block labels become integer states in a
  ``while``/``elif`` dispatch loop, and probes are inlined as
  cycle-counter compares — but every cycle charge appears as a float
  addition in exactly the interpreter's order.  When any effective cost
  in the module is fractional (loop-unroll discounts produce ``1/k``
  charges), float addition is non-associative, so no folding happens at
  all; only when every cost module-wide is an integer (partial sums stay
  exact below 2**53) are consecutive charges folded into one constant.
* Periodic probes keep their visit counter in the probe's own ``attrs``
  dict — the same slot the interpreter mutates — so interleaving
  interpreted and compiled runs of one module stays in phase.
* The instruction-budget counter is folded per straight-line segment and
  checked at segment boundaries: a program that exhausts its budget
  raises the same :class:`~repro.instrument.interp.InterpreterError`, at
  slightly coarser granularity (the check never under-fires, because the
  segment's increment lands before the check).

Constructs the generator cannot express raise :class:`CompileUnsupported`
and the caller falls back to the interpreter — :func:`executor_for` does
this automatically, honouring ``REPRO_IR_BACKEND`` (``auto`` | ``compiled``
| ``interp``).

The IR is snapshotted at compile time: mutating a module after compiling
it (e.g. re-running instrumentation passes) requires a fresh
:class:`CompiledModule`.
"""

import os

from repro.instrument.interp import (
    ExecutionResult,
    Interpreter,
    InterpreterError,
    _RunState,
)
from repro.instrument.ir import OP_CYCLES

__all__ = [
    "CompileUnsupported",
    "CompiledModule",
    "executor_for",
    "resolve_ir_backend",
]

_BACKENDS = ("auto", "compiled", "interp")

#: Opcodes lowered as plain binary expressions: (template, cost).
_BINOPS = {
    "add": ("{x} + {y}", 1),
    "sub": ("{x} - {y}", 1),
    "mul": ("{x} * {y}", 3),
    "fadd": ("{x} + {y}", 3),
    "fsub": ("{x} - {y}", 3),
    "fmul": ("{x} * {y}", 4),
    "cmp_lt": ("1 if {x} < {y} else 0", 1),
    "cmp_le": ("1 if {x} <= {y} else 0", 1),
    "cmp_eq": ("1 if {x} == {y} else 0", 1),
    "cmp_ne": ("1 if {x} != {y} else 0", 1),
    "and": ("int({x}) & int({y})", 1),
    "or": ("int({x}) | int({y})", 1),
    "xor": ("int({x}) ^ int({y})", 1),
    "shl": ("int({x}) << int({y})", 1),
    "shr": ("int({x}) >> int({y})", 1),
}


def resolve_ir_backend(backend=None):
    """Normalize an IR-backend name: explicit argument, else
    ``$REPRO_IR_BACKEND``, else ``auto`` (compiled with interpreter
    fallback).  Backends are bit-identical, so the choice never changes
    results — only wall-clock speed."""
    if backend is None:
        # Backend selection only: compiled and interpreted execution are
        # proven bit-identical (tests/test_instrument_compile.py).
        backend = os.environ.get("REPRO_IR_BACKEND", "").strip() or "auto"  # repro-san: ignore[DET005] -- IR backend selection; backends are proven bit-identical, so this ambient read cannot change results
    if backend not in _BACKENDS:
        raise ValueError(
            "unknown IR backend {!r}; known: {}".format(
                backend, ", ".join(_BACKENDS)
            )
        )
    return backend


def executor_for(module, memory_words=1 << 16, record_probes=True,
                 backend=None):
    """Build the fastest available executor for ``module``.

    Returns a :class:`CompiledModule` when the module compiles (or an
    :class:`~repro.instrument.interp.Interpreter` otherwise); both expose
    the same ``run(args, function, max_instructions, preempt_check)``
    API.  ``backend="compiled"`` propagates :class:`CompileUnsupported`
    instead of falling back; ``backend="interp"`` skips compilation.
    """
    backend = resolve_ir_backend(backend)
    if backend != "interp":
        try:
            return CompiledModule(
                module, memory_words=memory_words,
                record_probes=record_probes,
            )
        except CompileUnsupported:
            if backend == "compiled":
                raise
    return Interpreter(
        module, memory_words=memory_words, record_probes=record_probes
    )


class CompileUnsupported(Exception):
    """The module uses a construct the code generator cannot express."""


class CompiledModule:
    """Drop-in replacement for :class:`~repro.instrument.interp.Interpreter`
    backed by generated Python code.  Same constructor, same ``run``
    signature, bit-identical :class:`ExecutionResult`."""

    MAX_DEPTH = Interpreter.MAX_DEPTH

    def __init__(self, module, memory_words=1 << 16, record_probes=True):
        self.module = module
        self.memory = [0.0] * memory_words
        self._memory_mask = memory_words - 1
        if memory_words & self._memory_mask:
            raise ValueError("memory_words must be a power of two")
        self.record_probes = record_probes
        self._fn_names = {}
        namespace = {
            "InterpreterError": InterpreterError,
            "_mem": self.memory,
        }
        integral = _module_is_integral(module)
        source = []
        for index, (name, function) in enumerate(
            sorted(module.functions.items())
        ):
            self._fn_names[name] = "_fn{}".format(index)
        for name, function in sorted(module.functions.items()):
            source.append(
                _generate_function(
                    function, self._fn_names, module, integral,
                    self._memory_mask, namespace,
                )
            )
        code = "\n".join(source)
        self._source = code
        exec(compile(code, "<ir:{}>".format(module.name), "exec"), namespace)
        self._functions = {
            name: namespace[pyname] for name, pyname in self._fn_names.items()
        }

    def run(self, args=(), function=None, max_instructions=50_000_000,
            preempt_check=None):
        """Execute ``function`` (default: the module entry) with ``args``;
        mirrors :meth:`Interpreter.run` exactly."""
        if function is None:
            function = self.module.entry_function()
        compiled = self._functions[function.name]
        if len(args) != len(function.params):
            raise InterpreterError(
                "{!r} expects {} args, got {}".format(
                    function.name, len(function.params), len(args)
                )
            )
        state = _RunState(max_instructions, preempt_check, self.record_probes)
        value = compiled(state, 0, *args)
        return ExecutionResult(
            value=value,
            cycles=int(round(state.cycles)),
            instructions=state.instructions,
            probes_fired=state.probes_fired,
            probe_times=state.probe_times,
        )


def _module_is_integral(module):
    """True when every cycle charge in the module is a whole number, in
    which case float addition is exact and charges may be folded."""
    for function in module.functions.values():
        for block in function.iter_blocks():
            for instr in block.instrs:
                for value in _instr_costs(instr):
                    if not float(value).is_integer():
                        return False
            t_attrs = block.terminator.attrs
            if "discount" in t_attrs:
                if not (1.0 / t_attrs["discount"]).is_integer():
                    return False
    return True


def _instr_costs(instr):
    if instr.op == "probe":
        yield instr.attrs.get("visit_cost", 0)
        yield instr.attrs["cost"]
        return
    if instr.op == "ext_call":
        yield instr.attrs["cost"]
        return
    if instr.op == "call":
        yield OP_CYCLES["call"]
        return
    cost = OP_CYCLES[instr.op]
    discount = instr.attrs.get("discount") if instr.attrs else None
    yield cost / discount if discount else cost


def _literal(value):
    """Source form of an immediate operand; exact for ints/floats."""
    if value is None or value is True or value is False:
        return repr(value)
    if type(value) is int:
        return repr(value)
    if type(value) is float:
        # repr() round-trips floats exactly on CPython.
        return repr(value)
    raise CompileUnsupported(
        "immediate of type {} cannot be compiled".format(type(value).__name__)
    )


class _FunctionWriter:
    """Accumulates generated lines with indentation, folding the cycle and
    instruction counters per straight-line segment when allowed."""

    def __init__(self, integral):
        self.lines = []
        self.integral = integral
        self._pending_cycles = 0.0
        self._pending_instrs = 0

    def emit(self, indent, text):
        self.lines.append("    " * indent + text)

    def charge(self, indent, value):
        """Charge ``value`` cycles.  Folds into the running segment total
        when the module is integral; otherwise emits the add immediately,
        preserving the interpreter's exact float-addition order."""
        if self.integral:
            self._pending_cycles += value
        elif value:
            self.emit(indent, "_cycles += {}".format(_literal(float(value))))

    def count_instr(self):
        self._pending_instrs += 1

    def flush(self, indent, func_name):
        """Close a straight-line segment: apply folded counters and the
        budget check before the next barrier (probe, call, terminator)."""
        if self._pending_instrs:
            self.emit(
                indent, "_ic += {}".format(self._pending_instrs)
            )
            self.emit(indent, "if _ic > _max_ic:")
            self.emit(
                indent + 1,
                "raise InterpreterError({!r})".format(
                    "instruction budget exhausted in {!r}".format(func_name)
                ),
            )
            self._pending_instrs = 0
        if self.integral and self._pending_cycles:
            self.emit(
                indent,
                "_cycles += {}".format(_literal(float(self._pending_cycles))),
            )
            self._pending_cycles = 0.0


def _generate_function(function, fn_names, module, integral, mask, namespace):
    regs = {}

    def reg(name):
        if name not in regs:
            regs[name] = "_r{}".format(len(regs))
        return regs[name]

    def operand(x):
        return reg(x) if type(x) is str else _literal(x)

    for param in function.params:
        reg(param)

    labels = {label: i for i, label in enumerate(function.block_order)}
    w = _FunctionWriter(integral)
    pyname = fn_names[function.name]
    params = "".join(", " + reg(p) for p in function.params)
    w.emit(0, "def {}(_state, _depth{}):".format(pyname, params))
    w.emit(1, "if _depth > {}:".format(CompiledModule.MAX_DEPTH))
    w.emit(2, "raise InterpreterError({!r})".format(
        "call depth exceeded in {!r}".format(function.name)))
    w.emit(1, "_cycles = _state.cycles")
    w.emit(1, "_ic = _state.instructions")
    w.emit(1, "_pf = _state.probes_fired")
    w.emit(1, "_lf = _state.last_fire")
    w.emit(1, "_max_ic = _state.max_instructions")
    w.emit(1, "_pt = _state.probe_times")
    w.emit(1, "_pc = _state.preempt_check")
    w.emit(1, "_rec = _state.record")
    w.emit(1, "_L = {}".format(labels[function.entry]))
    w.emit(1, "while True:")

    for bi, label in enumerate(function.block_order):
        block = function.blocks[label]
        branch = "if" if bi == 0 else "elif"
        w.emit(2, "{} _L == {}:".format(branch, labels[label]))
        ind = 3
        for instr in block.instrs:
            _generate_instr(
                w, ind, instr, function, fn_names, module, operand, mask,
                namespace,
            )
        w.flush(ind, function.name)
        _generate_terminator(w, ind, block.terminator, labels, operand)
    return "\n".join(w.lines) + "\n"


def _generate_instr(w, ind, instr, function, fn_names, module, operand,
                    mask, namespace):
    op = instr.op
    if op == "probe":
        attrs = instr.attrs
        w.count_instr()
        w.flush(ind, function.name)
        threshold = attrs.get("threshold")
        if threshold is not None:
            visit = attrs.get("visit_cost", 0)
            if visit:
                w.emit(ind, "_cycles += {}".format(_literal(float(visit))))
            w.emit(ind, "if _cycles - _lf >= {}:".format(_literal(threshold)))
            w.emit(ind + 1, "_lf = _cycles")
            w.emit(ind + 1, "_cycles += {}".format(
                _literal(float(attrs["cost"]))))
            w.emit(ind + 1, "_pf += 1")
            w.emit(ind + 1, "if _rec:")
            w.emit(ind + 2, "_pt.append(_cycles)")
            w.emit(ind + 1, "if _pc is not None:")
            w.emit(ind + 2, "_pc(_cycles)")
            return
        period = attrs.get("period", 1)
        if period > 1:
            # The visit counter lives in the probe's attrs dict — the
            # same slot the interpreter mutates — so compiled and
            # interpreted runs of one module share periodic phase.
            aname = "_attrs{}".format(len(namespace))
            namespace[aname] = attrs
            w.emit(ind, '_n = {}["_count"] = {}.get("_count", 0) + 1'.format(
                aname, aname))
            w.emit(ind, "if not _n % {}:".format(_literal(period)))
            w.emit(ind + 1, "_cycles += {}".format(
                _literal(float(attrs["cost"]))))
            w.emit(ind + 1, "_pf += 1")
            w.emit(ind + 1, "if _rec:")
            w.emit(ind + 2, "_pt.append(_cycles)")
            w.emit(ind + 1, "if _pc is not None:")
            w.emit(ind + 2, "_pc(_cycles)")
            return
        w.emit(ind, "_cycles += {}".format(_literal(float(attrs["cost"]))))
        w.emit(ind, "_pf += 1")
        w.emit(ind, "if _rec:")
        w.emit(ind + 1, "_pt.append(_cycles)")
        w.emit(ind, "if _pc is not None:")
        w.emit(ind + 1, "_pc(_cycles)")
        return

    if op == "ext_call":
        w.count_instr()
        w.charge(ind, instr.attrs["cost"])
        if instr.dst is not None:
            w.emit(ind, "{} = 0".format(operand(instr.dst)))
        return

    if op == "call":
        callee_name = instr.args[0]
        w.count_instr()
        w.flush(ind, function.name)
        callee = module.functions.get(callee_name)
        if callee is None:
            w.emit(ind, "raise InterpreterError({!r})".format(
                "call to unknown function {!r}".format(callee_name)))
            return
        w.emit(ind, "_cycles += {}".format(
            _literal(float(OP_CYCLES["call"]))))
        if len(instr.args) - 1 != len(callee.params):
            w.emit(ind, "raise InterpreterError({!r})".format(
                "{!r} expects {} args, got {}".format(
                    callee.name, len(callee.params), len(instr.args) - 1)))
            return
        w.emit(ind, "_state.cycles = _cycles")
        w.emit(ind, "_state.instructions = _ic")
        w.emit(ind, "_state.probes_fired = _pf")
        w.emit(ind, "_state.last_fire = _lf")
        call_args = "".join(
            ", " + operand(x) for x in instr.args[1:]
        )
        target = operand(instr.dst) if instr.dst is not None else "_d"
        w.emit(ind, "{} = {}(_state, _depth + 1{})".format(
            target, fn_names[callee_name], call_args))
        w.emit(ind, "_cycles = _state.cycles")
        w.emit(ind, "_ic = _state.instructions")
        w.emit(ind, "_pf = _state.probes_fired")
        w.emit(ind, "_lf = _state.last_fire")
        return

    w.count_instr()
    a = instr.args
    discount = instr.attrs.get("discount") if instr.attrs else None
    if op in ("li", "mov"):
        w.emit(ind, "{} = {}".format(operand(instr.dst), operand(a[0])))
        cost = 1
    elif op in _BINOPS:
        template, cost = _BINOPS[op]
        w.emit(ind, "{} = {}".format(
            operand(instr.dst),
            template.format(x=operand(a[0]), y=operand(a[1])),
        ))
    elif op == "div" or op == "fdiv":
        cost = OP_CYCLES[op]
        w.emit(ind, "_d = {}".format(operand(a[1])))
        w.emit(ind, "{} = {} / _d if _d else 0.0".format(
            operand(instr.dst), operand(a[0])))
    elif op == "load":
        w.emit(ind, "{} = _mem[int({}) & {}]".format(
            operand(instr.dst), operand(a[0]), mask))
        cost = 2
    elif op == "store":
        w.emit(ind, "_mem[int({}) & {}] = {}".format(
            operand(a[1]), mask, operand(a[0])))
        cost = 2
    else:
        raise CompileUnsupported("unhandled opcode {!r}".format(op))
    w.charge(ind, cost / discount if discount else cost)


def _generate_terminator(w, ind, terminator, labels, operand):
    t_attrs = terminator.attrs
    t_cost = 1.0 / t_attrs["discount"] if "discount" in t_attrs else 1.0
    w.emit(ind, "_cycles += {}".format(_literal(t_cost)))
    op = terminator.op
    if op == "jump":
        w.emit(ind, "_L = {}".format(labels[terminator.args[0]]))
        w.emit(ind, "continue")
        return
    if op == "br":
        cond = terminator.args[0]
        w.emit(ind, "_L = {} if {} else {}".format(
            labels[terminator.args[1]], operand(cond),
            labels[terminator.args[2]]))
        w.emit(ind, "continue")
        return
    # ret
    w.emit(ind, "_state.cycles = _cycles")
    w.emit(ind, "_state.instructions = _ic")
    w.emit(ind, "_state.probes_fired = _pf")
    w.emit(ind, "_state.last_fire = _lf")
    if terminator.args:
        w.emit(ind, "return {}".format(operand(terminator.args[0])))
    else:
        w.emit(ind, "return None")
