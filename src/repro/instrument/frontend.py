"""A Python-function frontend for the instrumentation IR.

The Concord compiler consumes LLVM IR produced from C/C++.  Our analogue
lets users write kernels as a *restricted subset of Python* and compiles
them — via the ``ast`` module — into the instrumentation IR, where the
probe-insertion and unrolling passes, the interpreter, and the profiling
pipeline treat them exactly like the built-in Table-1 kernels.

Supported subset (enough to express Table-1-style kernels):

* integer/float literals; local variables; function parameters
* ``+ - * / // % << >> & | ^`` and comparisons ``< <= == != > >=``
* ``for i in range(stop)`` / ``range(start, stop)`` / ``range(start, stop, step)``
  with positive literal/variable bounds
* ``while cond:`` loops
* ``if / elif / else``
* ``mem[index]`` loads and stores over the interpreter's flat memory
* calls to other compiled functions in the same module
* ``extern("name", cost)`` — a call into un-instrumented code
* ``return expr``

Example::

    from repro.instrument.frontend import compile_module, extern, mem

    def dot(n):
        acc = 0.0
        for i in range(n):
            acc = acc + mem[i] * mem[i + 1024]
        extern("prefetch", 120)
        return acc

    module = compile_module([dot], name="user")
"""

import ast
import inspect
import textwrap

from repro.instrument.builder import FunctionBuilder
from repro.instrument.ir import Module

__all__ = ["CompileError", "compile_function", "compile_module", "extern",
           "mem"]


class CompileError(ValueError):
    """The Python source uses a construct outside the supported subset."""


def extern(name, cost):  # pragma: no cover - marker, never executed
    """Marker for calls into un-instrumented code; only meaningful inside
    functions passed to :func:`compile_function`."""
    raise RuntimeError("extern() is a compile-time marker")


class _Mem:  # pragma: no cover - marker, never executed
    """Marker object for flat-memory access inside compiled kernels."""

    def __getitem__(self, index):
        raise RuntimeError("mem[] is a compile-time marker")

    def __setitem__(self, index, value):
        raise RuntimeError("mem[] is a compile-time marker")


mem = _Mem()

_BINOPS = {
    ast.Add: ("add", "fadd"),
    ast.Sub: ("sub", "fsub"),
    ast.Mult: ("mul", "fmul"),
    ast.Div: ("fdiv", "fdiv"),
    ast.FloorDiv: ("div", "fdiv"),
    ast.Mod: ("div", "fdiv"),  # costed like a division
    ast.LShift: ("shl", "shl"),
    ast.RShift: ("shr", "shr"),
    ast.BitAnd: ("and", "and"),
    ast.BitOr: ("or", "or"),
    ast.BitXor: ("xor", "xor"),
}

_CMPOPS = {
    ast.Lt: "cmp_lt",
    ast.LtE: "cmp_le",
    ast.Eq: "cmp_eq",
    ast.NotEq: "cmp_ne",
}


class _FunctionCompiler(ast.NodeVisitor):
    """Compiles one Python function body into IR."""

    def __init__(self, func_def, known_functions):
        self.name = func_def.name
        params = [arg.arg for arg in func_def.args.args]
        self.builder = FunctionBuilder(self.name, params=params)
        self.known_functions = known_functions
        self._loop_counter = 0
        self._returned = False

    # -- entry ------------------------------------------------------------------

    def compile(self, body):
        for statement in body:
            if self._returned:
                raise CompileError(
                    "{}: unreachable code after return".format(self.name)
                )
            self.visit(statement)
        if not self._returned:
            self.builder.ret()
        return self.builder.function

    def _fail(self, node, message):
        raise CompileError(
            "{} (in {!r}, line {})".format(
                message, self.name, getattr(node, "lineno", "?")
            )
        )

    def _fresh_loop(self):
        self._loop_counter += 1
        return "L{}".format(self._loop_counter)

    # -- expressions --------------------------------------------------------------

    def _expr(self, node):
        """Compile an expression; returns a register name or a literal."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return 1 if node.value else 0
            if isinstance(node.value, (int, float)):
                return node.value
            self._fail(node, "unsupported literal {!r}".format(node.value))
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                value = self._expr(node.operand)
                if isinstance(value, (int, float)):
                    return -value
                dst = self.builder.fresh("neg")
                self.builder.emit("sub", dst, 0, value)
                return dst
            if isinstance(node.op, ast.Not):
                value = self._expr(node.operand)
                dst = self.builder.fresh("not")
                self.builder.emit("cmp_eq", dst, value, 0)
                return dst
            self._fail(node, "unsupported unary operator")
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.Subscript):
            if not _is_mem(node.value):
                self._fail(node, "only mem[...] subscripts are supported")
            address = self._expr(node.slice)
            dst = self.builder.fresh("ld")
            self.builder.emit("load", dst, address)
            return dst
        if isinstance(node, ast.Call):
            return self._call(node)
        self._fail(node, "unsupported expression {}".format(type(node).__name__))

    def _binop(self, node):
        left = self._expr(node.left)
        right = self._expr(node.right)
        ops = _BINOPS.get(type(node.op))
        if ops is None:
            self._fail(node, "unsupported operator {}".format(
                type(node.op).__name__))
        int_op, float_op = ops
        # Pick the float form when either operand is a float literal; for
        # registers the interpreter's Python semantics cover both, so the
        # choice only affects the cycle cost model.
        use_float = any(
            isinstance(v, float) for v in (left, right)
        ) or type(node.op) is ast.Div
        dst = self.builder.fresh("t")
        self.builder.emit(float_op if use_float else int_op, dst, left, right)
        return dst

    def _compare(self, node):
        if len(node.ops) != 1:
            self._fail(node, "chained comparisons are not supported")
        op = type(node.ops[0])
        left = self._expr(node.left)
        right = self._expr(node.comparators[0])
        dst = self.builder.fresh("c")
        if op in _CMPOPS:
            self.builder.emit(_CMPOPS[op], dst, left, right)
        elif op is ast.Gt:
            self.builder.emit("cmp_lt", dst, right, left)
        elif op is ast.GtE:
            self.builder.emit("cmp_le", dst, right, left)
        else:
            self._fail(node, "unsupported comparison")
        return dst

    def _call(self, node):
        if not isinstance(node.func, ast.Name):
            self._fail(node, "only direct calls are supported")
        callee = node.func.id
        if callee == "extern":
            if (
                len(node.args) != 2
                or not isinstance(node.args[0], ast.Constant)
                or not isinstance(node.args[1], ast.Constant)
            ):
                self._fail(node, 'extern() needs literal ("name", cost)')
            dst = self.builder.fresh("ext")
            self.builder.ext_call(dst, node.args[0].value,
                                  int(node.args[1].value))
            return dst
        if callee in self.known_functions:
            args = [self._expr(arg) for arg in node.args]
            dst = self.builder.fresh("call")
            self.builder.call(dst, callee, *args)
            return dst
        self._fail(node, "call to unknown function {!r}".format(callee))

    # -- statements -----------------------------------------------------------------

    def visit_Assign(self, node):
        if len(node.targets) != 1:
            self._fail(node, "multiple assignment targets not supported")
        target = node.targets[0]
        value = self._expr(node.value)
        if isinstance(target, ast.Name):
            self.builder.emit("mov", target.id, value)
            return
        if isinstance(target, ast.Subscript):
            if not _is_mem(target.value):
                self._fail(node, "only mem[...] stores are supported")
            address = self._expr(target.slice)
            self.builder.emit("store", None, value, address)
            return
        self._fail(node, "unsupported assignment target")

    def visit_AugAssign(self, node):
        if not isinstance(node.target, ast.Name):
            self._fail(node, "augmented assignment needs a plain name")
        synthetic = ast.BinOp(
            left=ast.Name(id=node.target.id, ctx=ast.Load()),
            op=node.op,
            right=node.value,
        )
        ast.copy_location(synthetic, node)
        ast.fix_missing_locations(synthetic)
        value = self._binop(synthetic)
        self.builder.emit("mov", node.target.id, value)

    def visit_Return(self, node):
        value = self._expr(node.value) if node.value is not None else None
        self.builder.ret(value)
        self._returned = True

    def visit_Expr(self, node):
        # Expression statements: extern(...) and bare calls for effect.
        self._expr(node.value)

    def visit_For(self, node):
        if node.orelse:
            self._fail(node, "for/else is not supported")
        if not isinstance(node.target, ast.Name):
            self._fail(node, "loop target must be a plain name")
        if not (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
        ):
            self._fail(node, "only range() loops are supported")
        args = [self._expr(a) for a in node.iter.args]
        if len(args) == 1:
            start, stop, step = 0, args[0], 1
        elif len(args) == 2:
            start, stop, step = args[0], args[1], 1
        elif len(args) == 3:
            start, stop, step = args
        else:
            self._fail(node, "range() takes 1-3 arguments")

        b = self.builder
        name = self._fresh_loop()
        induction = node.target.id
        header = "{}.header".format(name)
        body_label = "{}.body".format(name)
        latch = "{}.latch".format(name)
        exit_label = "{}.exit".format(name)

        b.emit("mov", induction, start)
        stop_reg = b.fresh("stop")
        b.emit("mov", stop_reg, stop)
        step_reg = b.fresh("step")
        b.emit("mov", step_reg, step)
        b.jump(header)

        b.block(header)
        cond = b.fresh("cond")
        b.emit("cmp_lt", cond, induction, stop_reg)
        b.br(cond, body_label, exit_label)

        b.block(body_label)
        for statement in node.body:
            self.visit(statement)
        b.jump(latch)

        b.block(latch)
        b.emit("add", induction, induction, step_reg)
        b.jump(header)

        b.block(exit_label)

    def visit_While(self, node):
        if node.orelse:
            self._fail(node, "while/else is not supported")
        b = self.builder
        name = self._fresh_loop()
        header = "{}.header".format(name)
        body_label = "{}.body".format(name)
        exit_label = "{}.exit".format(name)

        b.jump(header)
        b.block(header)
        cond = self._expr(node.test)
        b.br(cond, body_label, exit_label)

        b.block(body_label)
        for statement in node.body:
            self.visit(statement)
        b.jump(header)

        b.block(exit_label)

    def visit_If(self, node):
        b = self.builder
        name = self._fresh_loop()
        then_label = "{}.then".format(name)
        else_label = "{}.else".format(name)
        join_label = "{}.join".format(name)

        cond = self._expr(node.test)
        b.br(cond, then_label, else_label if node.orelse else join_label)

        b.block(then_label)
        returned_then = False
        for statement in node.body:
            self.visit(statement)
            returned_then = self._returned
        self._returned = False
        if not returned_then:
            b.jump(join_label)

        returned_else = False
        if node.orelse:
            b.block(else_label)
            for statement in node.orelse:
                self.visit(statement)
                returned_else = self._returned
            self._returned = False
            if not returned_else:
                b.jump(join_label)

        b.block(join_label)
        self._returned = returned_then and returned_else
        if self._returned:
            # Both arms returned: the join block is unreachable but must be
            # well-formed.
            b.ret()

    def generic_visit(self, node):
        self._fail(node, "unsupported statement {}".format(type(node).__name__))


def _is_mem(node):
    return isinstance(node, ast.Name) and node.id == "mem"


def _parse_function(func):
    source = textwrap.dedent(inspect.getsource(func))
    tree = ast.parse(source)
    func_def = tree.body[0]
    if not isinstance(func_def, ast.FunctionDef):
        raise CompileError("expected a plain function definition")
    if func_def.args.kwonlyargs or func_def.args.vararg or func_def.args.kwarg:
        raise CompileError(
            "{}: only positional parameters are supported".format(func.__name__)
        )
    return func_def


def compile_function(func, known_functions=()):
    """Compile one Python function to an IR Function."""
    func_def = _parse_function(func)
    names = set(known_functions) | {func_def.name}
    compiler = _FunctionCompiler(func_def, names)
    return compiler.compile(func_def.body)


def compile_module(funcs, name="compiled"):
    """Compile Python functions into one IR module.

    Functions may call each other; the entry point is the one named
    ``main`` (or the single function).
    """
    if not funcs:
        raise CompileError("no functions to compile")
    known = {f.__name__ for f in funcs}
    module = Module(name)
    for func in funcs:
        module.add(compile_function(func, known_functions=known))
    return module
