"""A cycle-counting interpreter for the instrumentation IR.

Executes a module's entry function, charging each opcode its cost from
:data:`repro.instrument.ir.OP_CYCLES` and each probe its style-dependent
cost, honouring the unroll pass's periods and discounts.  The probe
*timeline* (cumulative cycle time of every fired probe) is the raw material
for instrumentation profiles: probe gaps bound preemption timeliness.
"""

from repro.instrument.ir import OP_CYCLES

__all__ = ["ExecutionResult", "Interpreter", "InterpreterError"]


class InterpreterError(RuntimeError):
    """Raised on invalid programs or runaway execution."""


class ExecutionResult:
    """Outcome of one interpretation."""

    __slots__ = (
        "value",
        "cycles",
        "instructions",
        "probes_fired",
        "probe_times",
    )

    def __init__(self, value, cycles, instructions, probes_fired, probe_times):
        self.value = value
        self.cycles = cycles
        self.instructions = instructions
        self.probes_fired = probes_fired
        self.probe_times = probe_times

    def probe_gaps(self):
        """Cycle gaps between consecutive fired probes."""
        times = self.probe_times
        return [times[i + 1] - times[i] for i in range(len(times) - 1)]

    def __repr__(self):
        return (
            "ExecutionResult(cycles={}, instructions={}, probes={})".format(
                self.cycles, self.instructions, self.probes_fired
            )
        )


class Interpreter:
    """Interprets one module.

    Parameters
    ----------
    module:
        The :class:`~repro.instrument.ir.Module` to execute.
    memory_words:
        Size of the flat data memory (addresses wrap modulo this size, so
        kernels cannot escape it).
    record_probes:
        Keep the full probe timeline (needed for profiles; small overhead).
    """

    MAX_DEPTH = 64

    def __init__(self, module, memory_words=1 << 16, record_probes=True):
        self.module = module
        self.memory = [0.0] * memory_words
        self._memory_mask = memory_words - 1
        if memory_words & self._memory_mask:
            raise ValueError("memory_words must be a power of two")
        self.record_probes = record_probes

    def run(self, args=(), function=None, max_instructions=50_000_000,
            preempt_check=None):
        """Execute ``function`` (default: the module entry) with ``args``.

        ``preempt_check``, if given, is called as ``preempt_check(cycles)``
        at every fired probe — the hook the runtime uses to poll the
        dispatcher's cache line.
        """
        if function is None:
            function = self.module.entry_function()
        state = _RunState(max_instructions, preempt_check, self.record_probes)
        value = self._call(function, tuple(args), state, depth=0)
        return ExecutionResult(
            value=value,
            cycles=int(round(state.cycles)),
            instructions=state.instructions,
            probes_fired=state.probes_fired,
            probe_times=state.probe_times,
        )

    # -- execution --------------------------------------------------------------------

    def _call(self, function, args, state, depth):
        if depth > self.MAX_DEPTH:
            raise InterpreterError(
                "call depth exceeded in {!r}".format(function.name)
            )
        if len(args) != len(function.params):
            raise InterpreterError(
                "{!r} expects {} args, got {}".format(
                    function.name, len(function.params), len(args)
                )
            )
        regs = dict(zip(function.params, args))
        memory = self.memory
        mask = self._memory_mask
        label = function.entry
        blocks = function.blocks

        def value_of(x):
            return regs[x] if type(x) is str else x

        while True:
            block = blocks[label]
            for instr in block.instrs:
                state.instructions += 1
                if state.instructions > state.max_instructions:
                    raise InterpreterError(
                        "instruction budget exhausted in {!r}".format(
                            function.name
                        )
                    )
                op = instr.op
                a = instr.args
                if op == "probe":
                    attrs = instr.attrs
                    threshold = attrs.get("threshold")
                    if threshold is not None:
                        # Compiler-Interrupts semantics: a cheap counter
                        # update on every visit; the expensive rdtsc() check
                        # fires only once the interval threshold elapses.
                        state.cycles += attrs.get("visit_cost", 0)
                        if state.cycles - state.last_fire < threshold:
                            continue
                        state.last_fire = state.cycles
                    else:
                        period = attrs.get("period", 1)
                        if period > 1:
                            # Unrolled loop: the probe exists once per
                            # unrolled body, i.e. every k logical iterations.
                            count = attrs["_count"] = attrs.get("_count", 0) + 1
                            if count % period:
                                continue
                    state.cycles += attrs["cost"]
                    state.probes_fired += 1
                    if state.record:
                        state.probe_times.append(state.cycles)
                    if state.preempt_check is not None:
                        state.preempt_check(state.cycles)
                    continue
                discount = instr.attrs.get("discount") if instr.attrs else None
                if op == "li" or op == "mov":
                    regs[instr.dst] = value_of(a[0])
                    cost = 1
                elif op == "add":
                    regs[instr.dst] = value_of(a[0]) + value_of(a[1])
                    cost = 1
                elif op == "sub":
                    regs[instr.dst] = value_of(a[0]) - value_of(a[1])
                    cost = 1
                elif op == "mul":
                    regs[instr.dst] = value_of(a[0]) * value_of(a[1])
                    cost = 3
                elif op == "div":
                    divisor = value_of(a[1])
                    regs[instr.dst] = value_of(a[0]) / divisor if divisor else 0.0
                    cost = 20
                elif op == "fadd" or op == "fsub":
                    x, y = value_of(a[0]), value_of(a[1])
                    regs[instr.dst] = x + y if op == "fadd" else x - y
                    cost = 3
                elif op == "fmul":
                    regs[instr.dst] = value_of(a[0]) * value_of(a[1])
                    cost = 4
                elif op == "fdiv":
                    divisor = value_of(a[1])
                    regs[instr.dst] = value_of(a[0]) / divisor if divisor else 0.0
                    cost = 14
                elif op == "cmp_lt":
                    regs[instr.dst] = 1 if value_of(a[0]) < value_of(a[1]) else 0
                    cost = 1
                elif op == "cmp_le":
                    regs[instr.dst] = 1 if value_of(a[0]) <= value_of(a[1]) else 0
                    cost = 1
                elif op == "cmp_eq":
                    regs[instr.dst] = 1 if value_of(a[0]) == value_of(a[1]) else 0
                    cost = 1
                elif op == "cmp_ne":
                    regs[instr.dst] = 1 if value_of(a[0]) != value_of(a[1]) else 0
                    cost = 1
                elif op == "and":
                    regs[instr.dst] = int(value_of(a[0])) & int(value_of(a[1]))
                    cost = 1
                elif op == "or":
                    regs[instr.dst] = int(value_of(a[0])) | int(value_of(a[1]))
                    cost = 1
                elif op == "xor":
                    regs[instr.dst] = int(value_of(a[0])) ^ int(value_of(a[1]))
                    cost = 1
                elif op == "shl":
                    regs[instr.dst] = int(value_of(a[0])) << int(value_of(a[1]))
                    cost = 1
                elif op == "shr":
                    regs[instr.dst] = int(value_of(a[0])) >> int(value_of(a[1]))
                    cost = 1
                elif op == "load":
                    regs[instr.dst] = memory[int(value_of(a[0])) & mask]
                    cost = 2
                elif op == "store":
                    memory[int(value_of(a[1])) & mask] = value_of(a[0])
                    cost = 2
                elif op == "ext_call":
                    state.cycles += instr.attrs["cost"]
                    if instr.dst is not None:
                        regs[instr.dst] = 0
                    continue
                elif op == "call":
                    callee = self.module.functions.get(a[0])
                    if callee is None:
                        raise InterpreterError(
                            "call to unknown function {!r}".format(a[0])
                        )
                    state.cycles += OP_CYCLES["call"]
                    call_args = tuple(value_of(x) for x in a[1:])
                    regs[instr.dst] = self._call(
                        callee, call_args, state, depth + 1
                    )
                    continue
                else:  # pragma: no cover - opcode set is closed
                    raise InterpreterError("unhandled opcode {!r}".format(op))
                state.cycles += cost / discount if discount else cost

            terminator = block.terminator
            t_attrs = terminator.attrs
            t_cost = 1.0 / t_attrs["discount"] if "discount" in t_attrs else 1.0
            state.cycles += t_cost
            op = terminator.op
            if op == "jump":
                label = terminator.args[0]
            elif op == "br":
                cond = terminator.args[0]
                taken = regs[cond] if type(cond) is str else cond
                label = terminator.args[1] if taken else terminator.args[2]
            else:  # ret
                if terminator.args:
                    x = terminator.args[0]
                    return regs[x] if type(x) is str else x
                return None


class _RunState:
    __slots__ = (
        "cycles",
        "instructions",
        "probes_fired",
        "probe_times",
        "max_instructions",
        "preempt_check",
        "record",
        "last_fire",
    )

    def __init__(self, max_instructions, preempt_check, record):
        self.cycles = 0.0
        self.instructions = 0
        self.probes_fired = 0
        self.probe_times = []
        self.max_instructions = max_instructions
        self.preempt_check = preempt_check
        self.record = record
        # Cycle timestamp of the last threshold-style (rdtsc) probe firing.
        self.last_fire = 0.0
