"""A small typed IR in the spirit of LLVM's, sufficient to reproduce the
Concord compiler's behaviour.

Programs are modules of functions; functions are CFGs of basic blocks; each
block holds straight-line instructions and ends in exactly one terminator.
Every opcode carries a cycle cost so the interpreter can attribute time the
way the paper's overhead measurements do.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Instr", "Terminator", "BasicBlock", "Function", "Module",
           "OP_CYCLES", "PROBE_CACHELINE_CYCLES", "PROBE_RDTSC_CYCLES"]

#: Cycle cost of each straight-line opcode (rough Skylake-class latencies,
#: treating loads/stores as L1 hits — the same idealization the paper's
#: "~200 LLVM IR instructions per probe" rule rests on).
OP_CYCLES = {
    "li": 1,
    "mov": 1,
    "add": 1,
    "sub": 1,
    "and": 1,
    "or": 1,
    "xor": 1,
    "shl": 1,
    "shr": 1,
    "mul": 3,
    "div": 20,
    "fadd": 3,
    "fsub": 3,
    "fmul": 4,
    "fdiv": 14,
    "cmp_lt": 1,
    "cmp_le": 1,
    "cmp_eq": 1,
    "cmp_ne": 1,
    "load": 2,
    "store": 2,
    "call": 5,       # plus the callee's own cycles
    "ext_call": 0,   # cost carried per-site (the external code's runtime)
    "probe": 0,      # cost depends on probe style; see passes
}

#: Cost of one Concord cache-line probe: L1 hit + compare (section 3.1).
PROBE_CACHELINE_CYCLES = 2

#: Cost of one rdtsc() probe (section 2.2.1).
PROBE_RDTSC_CYCLES = 30

_TERMINATOR_OPS = {"jump", "br", "ret"}


@dataclass
class Instr:
    """One straight-line instruction.

    ``op`` selects behaviour; ``dst`` names the destination register (or
    None); ``args`` are register names, immediates, or — for calls — the
    callee name.  ``attrs`` carries pass-added metadata (probe style/period,
    external-call cost, unroll discounts).
    """

    op: str
    dst: Optional[str] = None
    args: Tuple = ()
    attrs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.op not in OP_CYCLES:
            raise ValueError("unknown opcode {!r}".format(self.op))

    @property
    def is_probe(self):
        return self.op == "probe"

    @property
    def is_ext_call(self):
        return self.op == "ext_call"

    def __repr__(self):
        return "Instr({} {} {})".format(
            self.op, self.dst or "_", ", ".join(map(str, self.args))
        )


@dataclass
class Terminator:
    """Block terminator: ``jump label``, ``br cond then else``, or ``ret``."""

    op: str
    args: Tuple = ()
    attrs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.op not in _TERMINATOR_OPS:
            raise ValueError("unknown terminator {!r}".format(self.op))

    def successors(self):
        if self.op == "jump":
            return [self.args[0]]
        if self.op == "br":
            return [self.args[1], self.args[2]]
        return []

    def __repr__(self):
        return "Terminator({} {})".format(self.op, ", ".join(map(str, self.args)))


class BasicBlock:
    """A label, straight-line instructions, and one terminator."""

    def __init__(self, label):
        self.label = label
        self.instrs: List[Instr] = []
        self.terminator: Optional[Terminator] = None

    def append(self, instr):
        if self.terminator is not None:
            raise ValueError(
                "block {!r} already terminated".format(self.label)
            )
        self.instrs.append(instr)
        return instr

    def terminate(self, terminator):
        if self.terminator is not None:
            raise ValueError(
                "block {!r} already terminated".format(self.label)
            )
        self.terminator = terminator

    @property
    def instruction_count(self):
        """Instructions excluding probes — what the '200 LLVM IR
        instructions' rule counts."""
        return sum(1 for i in self.instrs if not i.is_probe)

    def __repr__(self):
        return "BasicBlock({!r}, {} instrs)".format(
            self.label, len(self.instrs)
        )


class Function:
    """A named CFG with an entry block and parameter registers."""

    def __init__(self, name, params=()):
        self.name = name
        self.params = tuple(params)
        self.blocks = {}
        self.block_order = []
        self.entry = None

    def add_block(self, label):
        if label in self.blocks:
            raise ValueError("duplicate block label {!r}".format(label))
        block = BasicBlock(label)
        self.blocks[label] = block
        self.block_order.append(label)
        if self.entry is None:
            self.entry = label
        return block

    def block(self, label):
        return self.blocks[label]

    def iter_blocks(self):
        """Blocks in insertion order."""
        return (self.blocks[label] for label in self.block_order)

    @property
    def instruction_count(self):
        return sum(b.instruction_count for b in self.iter_blocks())

    def probe_count(self):
        return sum(
            1 for b in self.iter_blocks() for i in b.instrs if i.is_probe
        )

    def __repr__(self):
        return "Function({!r}, {} blocks, {} instrs)".format(
            self.name, len(self.blocks), self.instruction_count
        )


class Module:
    """A set of functions; ``main`` (or the single function) is the entry."""

    def __init__(self, name="module"):
        self.name = name
        self.functions = {}

    def add(self, function):
        if function.name in self.functions:
            raise ValueError("duplicate function {!r}".format(function.name))
        self.functions[function.name] = function
        return function

    def entry_function(self):
        if "main" in self.functions:
            return self.functions["main"]
        if len(self.functions) == 1:
            return next(iter(self.functions.values()))
        raise ValueError(
            "module {!r} has no 'main' and multiple functions".format(self.name)
        )

    def __repr__(self):
        return "Module({!r}, functions={})".format(
            self.name, sorted(self.functions)
        )
