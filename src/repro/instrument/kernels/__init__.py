"""Benchmark kernels standing in for the 24 Splash-2 / Phoenix / Parsec
programs of Table 1.

Each kernel is a factory returning a fresh IR module whose loop structure
mimics its namesake's character — tight streaming loops (radix, histogram,
linear_regression), nested numeric loops (water, lu, fft), call-heavy code
(raytrace, volrend), and loops dominated by calls into un-instrumented
library code (ocean's boundary exchange, dedup's hashing).  Those
structural properties — not the actual physics — are what determine
instrumentation overhead and preemption timeliness.
"""

from repro.instrument.kernels.registry import (
    KERNELS,
    KernelSpec,
    kernel_by_name,
)

__all__ = ["KERNELS", "KernelSpec", "kernel_by_name"]
