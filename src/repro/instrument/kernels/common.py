"""Shared code-generation idioms for the benchmark kernels."""

__all__ = ["emit_flops", "emit_stream_step", "emit_int_mix"]


def emit_flops(b, acc, count, seed_reg=None):
    """Emit ``count`` dependent floating-point operations accumulating into
    register ``acc`` (which must already hold a value).  Returns ``acc``."""
    operand = seed_reg or acc
    for i in range(count):
        op = ("fadd", "fmul", "fsub")[i % 3]
        b.emit(op, acc, acc, operand)
    return acc


def emit_stream_step(b, base_addr, index_reg, work_ops):
    """Emit one streaming-array step: load a[base+i], do ``work_ops``
    arithmetic ops, store back.  Returns the value register."""
    addr = b.fresh("addr")
    b.emit("add", addr, base_addr, index_reg)
    value = b.fresh("v")
    b.emit("load", value, addr)
    for i in range(work_ops):
        op = ("fadd", "fmul")[i % 2]
        b.emit(op, value, value, 1.0009 if i % 2 else 0.5)
    b.emit("store", None, value, addr)
    return value


def emit_int_mix(b, reg, count):
    """Emit ``count`` integer ops (shift/mask/add) on ``reg``."""
    for i in range(count):
        op = ("add", "xor", "shr", "and", "shl")[i % 5]
        operand = (1, 0x5BD1E995, 1, 0xFFFF, 1)[i % 5]
        b.emit(op, reg, reg, operand)
    return reg
