"""Parsec kernel stand-ins (6 programs)."""

from repro.instrument.builder import FunctionBuilder
from repro.instrument.ir import Module
from repro.instrument.kernels.common import emit_flops, emit_int_mix

__all__ = [
    "blackscholes", "fluidanimate", "swaptions", "canneal", "streamcluster",
    "dedup",
]


def blackscholes(scale=1.0):
    """Option pricing: a large float body with opaque exp/log per option."""
    module = Module("blackscholes")
    b = FunctionBuilder("main")
    b.li("price", 0.0)

    def per_option(i):
        s = b.fresh("s")
        b.emit("fmul", s, i, 0.01)
        b.emit("fadd", s, s, 100.0)
        d1 = b.fresh("d1")
        b.emit("fdiv", d1, s, 95.0)
        b.ext_call(b.fresh("lg"), "libm_log", 55)
        emit_flops(b, "price", 60, seed_reg=d1)
        b.ext_call(b.fresh("ex"), "libm_exp", 60)
        b.emit("fadd", "price", "price", d1)

    b.counted_loop("options", int(1600 * scale), per_option)
    b.ret("price")
    module.add(b.function)
    return module


def fluidanimate(scale=1.0):
    """SPH fluid step: per-particle neighbor loop with a ~50-op body."""
    module = Module("fluidanimate")
    b = FunctionBuilder("main")
    b.li("density", 0.0)

    def per_particle(p):
        def per_neighbor(nb):
            r2 = b.fresh("r2")
            b.emit("fsub", r2, p, nb)
            b.emit("fmul", r2, r2, r2)
            b.emit("fadd", r2, r2, 0.04)
            w = b.fresh("w")
            b.emit("fdiv", w, 1.0, r2)
            emit_flops(b, "density", 44, seed_reg=w)

        b.counted_loop("nb{}".format(id(p)), int(24 * scale) or 2, per_neighbor)

    b.counted_loop("particles", int(130 * scale), per_particle)
    b.ret("density")
    module.add(b.function)
    return module


def swaptions(scale=1.0):
    """HJM Monte-Carlo: per-path loop with an opaque RNG call and a ~70-op
    simulation body."""
    module = Module("swaptions")
    b = FunctionBuilder("main")
    b.li("value", 0.0)

    def per_path(p):
        b.ext_call(b.fresh("rng"), "rng_gaussian", 48)
        rate = b.fresh("rate")
        b.emit("fmul", rate, p, 0.0001)
        b.emit("fadd", rate, rate, 0.03)
        emit_flops(b, "value", 66, seed_reg=rate)

    b.counted_loop("paths", int(2300 * scale), per_path)
    b.ret("value")
    module.add(b.function)
    return module


def canneal(scale=1.0):
    """Simulated annealing for routing: random element swaps with an opaque
    RNG call and a moderate evaluation body."""
    module = Module("canneal")
    b = FunctionBuilder("main")
    b.li("cost", 1000.0)

    def per_move(m):
        b.ext_call(b.fresh("rng"), "rng_next", 30)
        a = b.fresh("a")
        b.emit("and", a, m, 0x3FF)
        elem = b.fresh("e")
        b.emit("load", elem, a)
        delta = b.fresh("dl")
        b.emit("fsub", delta, elem, "cost")
        b.emit("fmul", delta, delta, 0.001)
        emit_flops(b, "cost", 26, seed_reg=delta)
        b.emit("store", None, "cost", a)

    b.counted_loop("moves", int(4200 * scale), per_move)
    b.ret("cost")
    module.add(b.function)
    return module


def streamcluster(scale=1.0):
    """Online clustering: distance evaluations in a ~25-op body."""
    module = Module("streamcluster")
    b = FunctionBuilder("main")
    b.li("opened", 0.0)

    def per_point(p):
        def per_center(c):
            d = b.fresh("d")
            b.emit("fsub", d, p, c)
            b.emit("fmul", d, d, d)
            emit_flops(b, "opened", 20, seed_reg=d)

        b.counted_loop("ctr{}".format(id(p)), int(18 * scale) or 2, per_center)

    b.counted_loop("pts", int(380 * scale), per_point)
    b.ret("opened")
    module.add(b.function)
    return module


def dedup(scale=1.0):
    """Chunking + dedup: per-chunk rolling fingerprint then an opaque SHA1
    over the chunk — long un-instrumented stretches."""
    module = Module("dedup")
    b = FunctionBuilder("main")
    b.li("unique", 0)

    def per_chunk(c):
        fp = b.fresh("fp")
        b.emit("mov", fp, c)
        emit_int_mix(b, fp, 30)
        b.ext_call(b.fresh("sha"), "sha1_block", 2600)
        bit = b.fresh("bit")
        b.emit("and", bit, fp, 1)
        b.emit("add", "unique", "unique", bit)

    b.counted_loop("chunks", int(280 * scale), per_chunk)
    b.ret("unique")
    module.add(b.function)
    return module
