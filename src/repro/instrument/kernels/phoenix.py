"""Phoenix kernel stand-ins (6 map-reduce style programs).

These are the tight, streaming loops where naive probe placement is most
expensive (Table 1: linear_regression costs Compiler Interrupts 37%).
"""

from repro.instrument.builder import FunctionBuilder
from repro.instrument.ir import Module
from repro.instrument.kernels.common import emit_flops, emit_int_mix

__all__ = [
    "histogram", "kmeans", "pca", "string_match", "linear_regression",
    "word_count",
]


def histogram(scale=1.0):
    """Pixel histogram: load, shift, bucket increment — an 8-op body."""
    module = Module("histogram")
    b = FunctionBuilder("main")
    b.li("count", 0)

    def per_pixel(i):
        pixel = b.fresh("px")
        b.emit("load", pixel, i)
        bucket = b.fresh("bk")
        b.emit("shr", bucket, i, 4)
        b.emit("and", bucket, bucket, 0xFF)
        old = b.fresh("old")
        b.emit("load", old, bucket)
        b.emit("add", old, old, 1)
        b.emit("store", None, old, bucket)
        b.emit("add", "count", "count", 1)

    b.counted_loop("pixels", int(20000 * scale), per_pixel)
    b.ret("count")
    module.add(b.function)
    return module


def kmeans(scale=1.0):
    """K-means assignment: per-point loop over clusters + opaque sqrt."""
    module = Module("kmeans")
    b = FunctionBuilder("main")
    b.li("inertia", 0.0)

    def per_point(p):
        best = b.fresh("best")
        b.li(best, 1e18)

        def per_cluster(c):
            d = b.fresh("d")
            b.emit("fsub", d, p, c)
            b.emit("fmul", d, d, d)
            b.emit("fadd", d, d, 0.5)
            emit_flops(b, best, 9, seed_reg=d)

        b.counted_loop("clu{}".format(id(p)), int(16 * scale) or 2, per_cluster)
        b.ext_call(b.fresh("sq"), "libm_sqrt", 45)
        b.emit("fadd", "inertia", "inertia", best)

    b.counted_loop("points", int(900 * scale), per_point)
    b.ret("inertia")
    module.add(b.function)
    return module


def pca(scale=1.0):
    """Covariance accumulation: nested dimension loops, ~20-op body."""
    module = Module("pca")
    b = FunctionBuilder("main")
    b.li("cov", 0.0)

    def per_row(r):
        def per_dim(d):
            x = b.fresh("x")
            b.emit("fmul", x, r, 0.013)
            y = b.fresh("y")
            b.emit("fmul", y, d, 0.007)
            prod = b.fresh("pr")
            b.emit("fmul", prod, x, y)
            emit_flops(b, "cov", 14, seed_reg=prod)

        b.counted_loop("dim{}".format(id(r)), int(48 * scale), per_dim)

    b.counted_loop("rowsp", int(130 * scale), per_row)
    b.ret("cov")
    module.add(b.function)
    return module


def string_match(scale=1.0):
    """Keyword scan: per-character compare loop, ~10-op body."""
    module = Module("string_match")
    b = FunctionBuilder("main")
    b.li("matches", 0)

    def per_char(i):
        ch = b.fresh("ch")
        b.emit("load", ch, i)
        key = b.fresh("key")
        b.emit("and", key, i, 0x7F)
        eq = b.fresh("eq")
        b.emit("cmp_eq", eq, ch, key)
        b.emit("add", "matches", "matches", eq)
        h = b.fresh("h")
        b.emit("xor", h, i, 0x45D9F3B)
        b.emit("shr", h, h, 3)
        b.emit("add", "matches", "matches", 0)

    b.counted_loop("chars", int(17000 * scale), per_char)
    b.ret("matches")
    module.add(b.function)
    return module


def linear_regression(scale=1.0):
    """Sum-of-products over samples: the tightest loop in the suite —
     7 ops per iteration, the worst case for naive probing."""
    module = Module("linear_regression")
    b = FunctionBuilder("main")
    b.li("sx", 0.0)
    b.li("sxx", 0.0)

    def per_sample(i):
        x = b.fresh("x")
        b.emit("load", x, i)
        b.emit("fadd", "sx", "sx", x)
        xx = b.fresh("xx")
        b.emit("fmul", xx, x, x)
        b.emit("fadd", "sxx", "sxx", xx)

    b.counted_loop("samples", int(26000 * scale), per_sample)
    b.emit("fadd", "sx", "sx", "sxx")
    b.ret("sx")
    module.add(b.function)
    return module


def word_count(scale=1.0):
    """Tokenize-and-count: branchy per-word body plus an opaque hash-table
    probe per word."""
    module = Module("word_count")
    b = FunctionBuilder("main")
    b.li("words", 0)

    def per_token(i):
        h = b.fresh("h")
        b.emit("mov", h, i)
        emit_int_mix(b, h, 10)
        b.ext_call(b.fresh("ht"), "hashtable_insert", 140)
        b.emit("add", "words", "words", 1)

    b.counted_loop("tokens", int(2600 * scale), per_token)
    b.ret("words")
    module.add(b.function)
    return module
