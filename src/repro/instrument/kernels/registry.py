"""Registry mapping Table 1's 24 benchmark names to kernel factories."""

from dataclasses import dataclass
from typing import Callable

from repro.instrument.kernels import parsec, phoenix, splash2

__all__ = ["KernelSpec", "KERNELS", "kernel_by_name"]


@dataclass(frozen=True)
class KernelSpec:
    """One Table-1 row: program name, suite, and module factory."""

    name: str
    suite: str
    factory: Callable

    def build(self, scale=1.0):
        return self.factory(scale=scale)


KERNELS = [
    KernelSpec("water-nsquared", "Splash-2", splash2.water_nsquared),
    KernelSpec("water-spatial", "Splash-2", splash2.water_spatial),
    KernelSpec("ocean-cp", "Splash-2", splash2.ocean_cp),
    KernelSpec("ocean-ncp", "Splash-2", splash2.ocean_ncp),
    KernelSpec("volrend", "Splash-2", splash2.volrend),
    KernelSpec("fmm", "Splash-2", splash2.fmm),
    KernelSpec("raytrace", "Splash-2", splash2.raytrace),
    KernelSpec("radix", "Splash-2", splash2.radix),
    KernelSpec("fft", "Splash-2", splash2.fft),
    KernelSpec("lu-c", "Splash-2", splash2.lu_contiguous),
    KernelSpec("lu-nc", "Splash-2", splash2.lu_noncontiguous),
    KernelSpec("cholesky", "Splash-2", splash2.cholesky),
    KernelSpec("histogram", "Phoenix", phoenix.histogram),
    KernelSpec("kmeans", "Phoenix", phoenix.kmeans),
    KernelSpec("pca", "Phoenix", phoenix.pca),
    KernelSpec("string_match", "Phoenix", phoenix.string_match),
    KernelSpec("linear_regression", "Phoenix", phoenix.linear_regression),
    KernelSpec("word_count", "Phoenix", phoenix.word_count),
    KernelSpec("blackscholes", "Parsec", parsec.blackscholes),
    KernelSpec("fluidanimate", "Parsec", parsec.fluidanimate),
    KernelSpec("swapoptions", "Parsec", parsec.swaptions),
    KernelSpec("canneal", "Parsec", parsec.canneal),
    KernelSpec("streamcluster", "Parsec", parsec.streamcluster),
    KernelSpec("dedup", "Parsec", parsec.dedup),
]

_BY_NAME = {spec.name: spec for spec in KERNELS}


def kernel_by_name(name):
    """Look up a Table-1 kernel by its program name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            "unknown kernel {!r}; known: {}".format(
                name, ", ".join(sorted(_BY_NAME))
            )
        ) from None
