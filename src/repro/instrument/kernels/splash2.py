"""Splash-2 kernel stand-ins (12 programs).

Sizes are chosen so each kernel runs roughly 0.4-1.5M cycles un-instrumented
— long enough for stable overhead and timeliness statistics, short enough to
interpret quickly.  ``scale`` shrinks trip counts for fast test/bench runs.
"""

from repro.instrument.builder import FunctionBuilder
from repro.instrument.ir import Module
from repro.instrument.kernels.common import emit_flops, emit_stream_step

__all__ = [
    "water_nsquared", "water_spatial", "ocean_cp", "ocean_ncp", "volrend",
    "fmm", "raytrace", "radix", "fft", "lu_contiguous", "lu_noncontiguous",
    "cholesky",
]


def water_nsquared(scale=1.0):
    """O(n^2) pairwise molecular forces: nested loops, ~45-op body."""
    module = Module("water-nsquared")
    b = FunctionBuilder("main")
    b.li("force", 1.0)

    def outer(i):
        def inner(j):
            dx = b.fresh("dx")
            b.emit("fsub", dx, i, j)
            b.emit("fmul", dx, dx, dx)
            b.emit("fadd", dx, dx, 0.001)
            inv = b.fresh("inv")
            b.emit("fdiv", inv, 1.0, dx)
            emit_flops(b, "force", 38, seed_reg=inv)

        b.counted_loop("inner{}".format(id(i)), int(90 * scale), inner)

    b.counted_loop("outer", int(90 * scale), outer)
    b.ret("force")
    module.add(b.function)
    return module


def water_spatial(scale=1.0):
    """Cell-list variant: outer cell loop, denser ~60-op body."""
    module = Module("water-spatial")
    b = FunctionBuilder("main")
    b.li("acc", 0.5)

    def per_cell(c):
        def per_mol(m):
            r = b.fresh("r")
            b.emit("fadd", r, c, m)
            b.emit("fmul", r, r, 0.25)
            emit_flops(b, "acc", 55, seed_reg=r)

        b.counted_loop("mol{}".format(id(c)), int(70 * scale), per_mol)

    b.counted_loop("cells", int(100 * scale), per_cell)
    b.ret("acc")
    module.add(b.function)
    return module


def ocean_cp(scale=1.0):
    """Grid relaxation with a per-row halo exchange into un-instrumented
    communication code — the long opaque calls that make its preemption
    timeliness the worst of the suite (1.8us in Table 1)."""
    module = Module("ocean-cp")
    b = FunctionBuilder("main")
    b.li("sum", 0.0)

    def per_row(r):
        b.ext_call(b.fresh("halo"), "halo_exchange", 15000)

        def per_col(c):
            addr = b.fresh("a")
            b.emit("mul", addr, r, 128)
            b.emit("add", addr, addr, c)
            v = b.fresh("v")
            b.emit("load", v, addr)
            emit_flops(b, "sum", 20, seed_reg=v)
            b.emit("store", None, "sum", addr)

        b.counted_loop("col{}".format(id(r)), int(120 * scale), per_col)

    b.counted_loop("rows", int(60 * scale), per_row)
    b.ret("sum")
    module.add(b.function)
    return module


def ocean_ncp(scale=1.0):
    """Non-contiguous-partition ocean: strided accesses, shorter halo."""
    module = Module("ocean-ncp")
    b = FunctionBuilder("main")
    b.li("sum", 0.0)

    def per_row(r):
        b.ext_call(b.fresh("halo"), "halo_exchange", 7500)

        def per_col(c):
            stride = b.fresh("s")
            b.emit("mul", stride, c, 64)
            b.emit("add", stride, stride, r)
            v = b.fresh("v")
            b.emit("load", v, stride)
            emit_flops(b, "sum", 16, seed_reg=v)

        b.counted_loop("col{}".format(id(r)), int(110 * scale), per_col)

    b.counted_loop("rows", int(65 * scale), per_row)
    b.ret("sum")
    module.add(b.function)
    return module


def volrend(scale=1.0):
    """Volume rendering: a per-ray helper call with a branchy body."""
    module = Module("volrend")

    shade = FunctionBuilder("shade", params=["sample"])
    shade.emit("fmul", "lit", "sample", 0.8)
    emit_flops(shade, "lit", 22, seed_reg="sample")
    shade.ret("lit")
    module.add(shade.function)

    b = FunctionBuilder("main")
    b.li("image", 0.0)

    def per_ray(ray):
        def per_sample(s):
            opacity = b.fresh("op")
            b.emit("mul", opacity, ray, 17)
            b.emit("add", opacity, opacity, s)
            b.emit("and", opacity, opacity, 0x3F)
            lit = b.fresh("lit")
            b.call(lit, "shade", opacity)
            b.emit("fadd", "image", "image", lit)

        b.counted_loop("samp{}".format(id(ray)), int(25 * scale), per_sample)

    b.counted_loop("rays", int(220 * scale), per_ray)
    b.ret("image")
    module.add(b.function)
    return module


def fmm(scale=1.0):
    """Fast multipole: hierarchical interactions via a helper per cell pair."""
    module = Module("fmm")

    interact = FunctionBuilder("interact", params=["a", "b"])
    interact.emit("fsub", "d", "a", "b")
    interact.emit("fmul", "d", "d", "d")
    interact.emit("fadd", "d", "d", 0.01)
    interact.emit("fdiv", "pot", 1.0, "d")
    emit_flops(interact, "pot", 30, seed_reg="d")
    interact.ret("pot")
    module.add(interact.function)

    b = FunctionBuilder("main")
    b.li("energy", 0.0)

    def per_cell(c):
        def per_neighbor(nb):
            p = b.fresh("p")
            b.call(p, "interact", c, nb)
            b.emit("fadd", "energy", "energy", p)

        b.counted_loop("nb{}".format(id(c)), int(27 * scale), per_neighbor)

    b.counted_loop("cells", int(170 * scale), per_cell)
    b.ret("energy")
    module.add(b.function)
    return module


def raytrace(scale=1.0):
    """Per-ray trace() call doing intersection tests — call-dominated."""
    module = Module("raytrace")

    trace = FunctionBuilder("trace", params=["ray"])
    trace.li("hit", 0.0)

    def per_object(obj):
        t = trace.fresh("t")
        trace.emit("fmul", t, "ray", 0.37)
        trace.emit("fsub", t, t, obj)
        trace.emit("fmul", t, t, t)
        emit_flops(trace, "hit", 8, seed_reg=t)

    trace.counted_loop("objs", int(14 * scale) or 1, per_object)
    trace.ret("hit")
    module.add(trace.function)

    b = FunctionBuilder("main")
    b.li("frame", 0.0)

    def per_ray(ray):
        color = b.fresh("c")
        b.call(color, "trace", ray)
        b.emit("fadd", "frame", "frame", color)

    b.counted_loop("rays", int(900 * scale), per_ray)
    b.ret("frame")
    module.add(b.function)
    return module


def radix(scale=1.0):
    """Radix sort counting pass: tight integer shift/mask/increment body —
    the kind of loop that must be unrolled to probe cheaply."""
    module = Module("radix")
    b = FunctionBuilder("main")
    b.li("checksum", 0)

    def per_key(i):
        key = b.fresh("k")
        b.emit("mul", key, i, 2654435761)
        b.emit("shr", key, key, 11)
        b.emit("and", key, key, 0xFF)
        slot = b.fresh("s")
        b.emit("load", slot, key)
        b.emit("add", slot, slot, 1)
        b.emit("store", None, slot, key)
        b.emit("add", "checksum", "checksum", key)

    b.counted_loop("keys", int(22000 * scale), per_key)
    b.ret("checksum")
    module.add(b.function)
    return module


def fft(scale=1.0):
    """Iterative FFT: log-passes over the array, butterfly body ~30 ops."""
    module = Module("fft")
    b = FunctionBuilder("main")
    b.li("acc", 1.0)

    def per_pass(p):
        def per_butterfly(k):
            tw = b.fresh("tw")
            b.emit("fmul", tw, p, 0.196)
            b.emit("fadd", tw, tw, k)
            even = emit_stream_step(b, 0, k, 8)
            odd = b.fresh("odd")
            b.emit("fmul", odd, even, tw)
            emit_flops(b, "acc", 12, seed_reg=odd)

        b.counted_loop("bf{}".format(id(p)), int(450 * scale), per_butterfly)

    b.counted_loop("passes", 12, per_pass)
    b.ret("acc")
    module.add(b.function)
    return module


def lu_contiguous(scale=1.0):
    """Blocked LU: helper daxpy over block rows, medium body."""
    module = Module("lu-c")

    daxpy = FunctionBuilder("daxpy", params=["alpha", "row"])
    daxpy.li("acc", 0.0)

    def per_elem(j):
        v = daxpy.fresh("v")
        daxpy.emit("fmul", v, "alpha", j)
        daxpy.emit("fadd", v, v, "row")
        emit_flops(daxpy, "acc", 5, seed_reg=v)

    daxpy.counted_loop("elems", int(24 * scale) or 1, per_elem)
    daxpy.ret("acc")
    module.add(daxpy.function)

    b = FunctionBuilder("main")
    b.li("det", 1.0)

    def per_pivot(k):
        def per_row(r):
            alpha = b.fresh("al")
            b.emit("fadd", alpha, k, r)
            b.emit("fmul", alpha, alpha, 0.031)
            contrib = b.fresh("ct")
            b.call(contrib, "daxpy", alpha, r)
            b.emit("fadd", "det", "det", contrib)

        b.counted_loop("rows{}".format(id(k)), int(45 * scale), per_row)

    b.counted_loop("pivots", int(45 * scale), per_pivot)
    b.ret("det")
    module.add(b.function)
    return module


def lu_noncontiguous(scale=1.0):
    """Unblocked LU: tighter inner body with strided loads."""
    module = Module("lu-nc")
    b = FunctionBuilder("main")
    b.li("det", 1.0)

    def per_pivot(k):
        def per_elem(j):
            addr = b.fresh("a")
            b.emit("mul", addr, j, 257)
            b.emit("add", addr, addr, k)
            v = b.fresh("v")
            b.emit("load", v, addr)
            b.emit("fmul", v, v, 0.999)
            b.emit("fadd", "det", "det", v)
            b.emit("store", None, v, addr)

        b.counted_loop("el{}".format(id(k)), int(260 * scale), per_elem)

    b.counted_loop("pivots", int(90 * scale), per_pivot)
    b.ret("det")
    module.add(b.function)
    return module


def cholesky(scale=1.0):
    """Sparse Cholesky: nested supernode loops + an opaque sqrt per column."""
    module = Module("cholesky")
    b = FunctionBuilder("main")
    b.li("acc", 1.0)

    def per_col(c):
        b.ext_call(b.fresh("sq"), "libm_sqrt", 45)

        def per_update(u):
            v = b.fresh("v")
            b.emit("fmul", v, c, 0.5)
            b.emit("fsub", v, v, u)
            emit_flops(b, "acc", 24, seed_reg=v)

        b.counted_loop("upd{}".format(id(c)), int(55 * scale), per_update)

    b.counted_loop("cols", int(120 * scale), per_col)
    b.ret("acc")
    module.add(b.function)
    return module
