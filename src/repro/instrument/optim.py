"""Classic scalar optimizations for the instrumentation IR.

The baseline the paper measures against is ``-O3`` code.  Beyond the loop
treatment in :class:`~repro.instrument.passes.BaselineOptimizePass`, real
compilers fold constants and delete dead code; these passes do the same on
our IR so hand-written or frontend-generated kernels aren't accidentally
penalized for redundancy the stock compiler would remove.

* :class:`ConstantFoldingPass` — evaluates instructions whose operands are
  all literals, propagates the results, and iterates to a fixed point
  within each block.
* :class:`DeadCodeEliminationPass` — removes instructions whose
  destinations are never read (liveness over the whole function,
  effect-free opcodes only).
* :func:`optimize_function` — the standard pipeline (fold, then DCE,
  repeated until nothing changes).
"""

__all__ = [
    "ConstantFoldingPass",
    "DeadCodeEliminationPass",
    "optimize_function",
]

#: Opcodes with no side effects: safe to fold and to delete when dead.
_PURE_OPS = {
    "li", "mov", "add", "sub", "mul", "div", "and", "or", "xor", "shl",
    "shr", "fadd", "fsub", "fmul", "fdiv", "cmp_lt", "cmp_le", "cmp_eq",
    "cmp_ne", "load",
}

#: Of the pure ops, those computable at compile time from literal operands
#: ("load" is excluded: memory contents are runtime state).
_FOLDABLE = _PURE_OPS - {"load"}


def _as_int(x):
    return int(x)


_EVALUATORS = {
    "li": lambda a: a[0],
    "mov": lambda a: a[0],
    "add": lambda a: a[0] + a[1],
    "sub": lambda a: a[0] - a[1],
    "mul": lambda a: a[0] * a[1],
    "div": lambda a: (a[0] / a[1]) if a[1] else 0.0,
    "and": lambda a: _as_int(a[0]) & _as_int(a[1]),
    "or": lambda a: _as_int(a[0]) | _as_int(a[1]),
    "xor": lambda a: _as_int(a[0]) ^ _as_int(a[1]),
    "shl": lambda a: _as_int(a[0]) << _as_int(a[1]),
    "shr": lambda a: _as_int(a[0]) >> _as_int(a[1]),
    "fadd": lambda a: a[0] + a[1],
    "fsub": lambda a: a[0] - a[1],
    "fmul": lambda a: a[0] * a[1],
    "fdiv": lambda a: (a[0] / a[1]) if a[1] else 0.0,
    "cmp_lt": lambda a: 1 if a[0] < a[1] else 0,
    "cmp_le": lambda a: 1 if a[0] <= a[1] else 0,
    "cmp_eq": lambda a: 1 if a[0] == a[1] else 0,
    "cmp_ne": lambda a: 1 if a[0] != a[1] else 0,
}


class ConstantFoldingPass:
    """Block-local constant folding and copy propagation.

    Registers assigned a literal by a pure instruction are tracked within
    the block; later uses are rewritten to the literal, and instructions
    whose operands all become literals are folded into ``li``.  Tracking
    resets at block boundaries (no dataflow join) and at any instruction
    that may write the register unpredictably (calls).
    """

    def run(self, function):
        folded = 0
        for block in function.iter_blocks():
            known = {}
            for instr in block.instrs:
                if instr.is_probe:
                    continue
                # Rewrite known-literal operands (not for calls: their
                # first arg is a callee name).
                if instr.op not in ("call", "ext_call"):
                    new_args = tuple(
                        known.get(a, a) if isinstance(a, str) else a
                        for a in instr.args
                    )
                    if new_args != instr.args:
                        instr.args = new_args
                        folded += 1
                if instr.op in _FOLDABLE and all(
                    not isinstance(a, str) for a in instr.args
                ):
                    value = _EVALUATORS[instr.op](instr.args)
                    if instr.op != "li":
                        instr.op = "li"
                        folded += 1
                    instr.args = (value,)
                    if instr.dst is not None:
                        known[instr.dst] = value
                elif instr.dst is not None:
                    known.pop(instr.dst, None)
            # Terminator condition may also be known.
            terminator = block.terminator
            if terminator is not None and terminator.op == "br":
                cond = terminator.args[0]
                if isinstance(cond, str) and cond in known:
                    terminator.args = (known[cond],) + terminator.args[1:]
                    folded += 1
        return folded


class DeadCodeEliminationPass:
    """Remove pure instructions whose destination is never read.

    Liveness is computed as the set of all register names appearing as
    operands anywhere in the function (arguments of instructions, calls,
    and terminators) — conservative and sound without SSA.
    """

    def run(self, function):
        removed = 0
        changed = True
        while changed:
            changed = False
            used = set(function.params)
            for block in function.iter_blocks():
                for instr in block.instrs:
                    args = instr.args
                    if instr.op in ("call", "ext_call"):
                        args = instr.args[1:]
                    for a in args:
                        if isinstance(a, str):
                            used.add(a)
                if block.terminator is not None:
                    for a in block.terminator.args:
                        if isinstance(a, str):
                            used.add(a)
            for block in function.iter_blocks():
                keep = []
                for instr in block.instrs:
                    dead = (
                        instr.op in _PURE_OPS
                        and instr.dst is not None
                        and instr.dst not in used
                    )
                    if dead:
                        removed += 1
                        changed = True
                    else:
                        keep.append(instr)
                block.instrs = keep
        return removed


def optimize_function(function, max_rounds=4):
    """Run fold + DCE to a fixed point; returns total changes."""
    total = 0
    for _ in range(max_rounds):
        changes = ConstantFoldingPass().run(function)
        changes += DeadCodeEliminationPass().run(function)
        total += changes
        if not changes:
            break
    return total
