"""The two Concord compiler passes (section 4.3) plus an IR verifier.

Probe placement reproduces the paper's rule: a probe at the beginning of
each function, before and after any call to un-instrumented code, and at
every loop back-edge.  Loop unrolling reproduces the paper's mitigation for
tight loops: "we unroll each loop body until it has at least 200 LLVM IR
instructions".  Rather than duplicating instructions, the unroll pass gives
the back-edge probe a *period* k — the probe (and the loop's compare/branch
bookkeeping) executes once every k iterations, which is precisely the
observable effect of k-fold unrolling and is also why Concord's measured
overhead can be negative (Table 1: "often negative due to its loop
unrolling").
"""

import math

from repro import constants
from repro.instrument.analysis.dataflow import ReachingDefinitions
from repro.instrument.cfg import ControlFlowGraph
from repro.instrument.ir import (
    Instr,
    PROBE_CACHELINE_CYCLES,
    PROBE_RDTSC_CYCLES,
)

__all__ = [
    "CACHELINE_STYLE",
    "RDTSC_STYLE",
    "ProbeInsertionPass",
    "LoopUnrollPass",
    "BaselineOptimizePass",
    "VerifyError",
    "verify_function",
]

#: Typical -O3 unroll factor: the *un-instrumented baseline* also has its
#: tight-loop control amortized by the stock compiler, which is why
#: Concord's additional unrolling only buys a small (sometimes negative)
#: delta rather than a dramatic speedup.
BASELINE_UNROLL_FACTOR = 4

CACHELINE_STYLE = "cacheline"
RDTSC_STYLE = "rdtsc"

_PROBE_COST = {
    CACHELINE_STYLE: PROBE_CACHELINE_CYCLES,
    RDTSC_STYLE: PROBE_RDTSC_CYCLES,
}

#: Per-visit cost of an rdtsc-style probe site: Compiler Interrupts keeps a
#: lightweight counter at every probe location and only calls rdtsc() when
#: the interval threshold has elapsed — the counter update + compare still
#: cost a couple of cycles on *every* visit.
RDTSC_COUNTER_VISIT_CYCLES = 2

#: Cycle interval between full rdtsc() checks (the CI interval target;
#: roughly the paper's "every ~200 LLVM IR instructions").
RDTSC_FIRE_THRESHOLD_CYCLES = 260

_PROBE_VISIT_COST = {
    CACHELINE_STYLE: 0,
    RDTSC_STYLE: RDTSC_COUNTER_VISIT_CYCLES,
}


class VerifyError(ValueError):
    """The function violates an IR structural invariant."""


def verify_function(function):
    """Check IR invariants: an entry block exists, every block is
    terminated, every jump target names a real block, every ``ext_call``
    carries a cycle cost, and — via the reaching-definitions analysis —
    every register read in reachable code has a definition on at least
    one path from the entry (parameters count as definitions).  Raises
    :class:`VerifyError` on the first violation; returns True otherwise.
    """
    if function.entry is None:
        raise VerifyError("{!r} has no entry block".format(function.name))
    if not function.blocks:
        raise VerifyError("{!r} has no blocks".format(function.name))
    for label, block in function.blocks.items():
        if block.terminator is None:
            raise VerifyError(
                "{}.{} lacks a terminator".format(function.name, label)
            )
        for succ in block.terminator.successors():
            if succ not in function.blocks:
                raise VerifyError(
                    "{}.{} jumps to unknown block {!r}".format(
                        function.name, label, succ
                    )
                )
        for instr in block.instrs:
            if instr.is_ext_call and "cost" not in instr.attrs:
                raise VerifyError(
                    "{}.{}: ext_call without a cost".format(function.name, label)
                )
    undefined = ReachingDefinitions().undefined_uses(function)
    if undefined:
        label, index, register = undefined[0]
        where = (
            "terminator" if index is None else "instruction {}".format(index)
        )
        raise VerifyError(
            "{}.{}: register {!r} read at {} but never defined on any "
            "path from the entry".format(function.name, label, register, where)
        )
    return True


def _make_probe(style, period=1):
    attrs = {"style": style, "period": int(period),
             "cost": _PROBE_COST[style],
             "visit_cost": _PROBE_VISIT_COST[style]}
    if style == RDTSC_STYLE:
        attrs["threshold"] = RDTSC_FIRE_THRESHOLD_CYCLES
    return Instr("probe", None, (), attrs)


class ProbeInsertionPass:
    """Insert preemption probes (section 4.3).

    Placement: function entry; before and after each ``ext_call``; at each
    loop back-edge (in the latch block, just before its terminator).
    """

    def __init__(self, style=CACHELINE_STYLE):
        if style not in _PROBE_COST:
            raise ValueError("unknown probe style {!r}".format(style))
        self.style = style

    def run(self, function):
        """Instrument ``function`` in place; returns the probe count."""
        verify_function(function)
        cfg = ControlFlowGraph(function)
        inserted = 0

        # Function entry.
        entry_block = function.block(function.entry)
        entry_block.instrs.insert(0, _make_probe(self.style))
        inserted += 1

        # Around calls to un-instrumented code.
        for block in function.iter_blocks():
            new_instrs = []
            for instr in block.instrs:
                if instr.is_ext_call:
                    new_instrs.append(_make_probe(self.style))
                    new_instrs.append(instr)
                    new_instrs.append(_make_probe(self.style))
                    inserted += 2
                else:
                    new_instrs.append(instr)
            block.instrs = new_instrs

        # Loop back-edges: probe in the latch, before the branch back.
        for loop in cfg.natural_loops():
            latch = function.block(loop.latch)
            latch.instrs.append(_make_probe(self.style))
            inserted += 1
        return inserted


class LoopUnrollPass:
    """Set back-edge probe periods so probes sit >= ``min_instructions``
    apart (section 4.3's unrolling rule), and discount the loop's control
    bookkeeping accordingly.

    Must run *after* :class:`ProbeInsertionPass`.  For a loop whose body
    executes ``b`` instructions per iteration, the pass picks
    ``k = ceil(min_instructions / b)`` and:

    * marks the latch probe with ``period=k`` (it fires every k-th
      iteration, as it would in a k-fold unrolled body), and
    * marks the latch's compare/branch bookkeeping with a ``discount`` so
      the interpreter charges it once per k iterations — the genuine
      speedup real unrolling buys, the source of Table 1's negative
      overheads.

    Loops containing ``ext_call`` sites are skipped (the external code
    dominates their runtime and LLVM would not unroll across opaque calls).
    """

    def __init__(self, min_instructions=constants.LOOP_UNROLL_MIN_INSTRUCTIONS,
                 discount=True):
        self.min_instructions = min_instructions
        #: When True (Concord), the loop's branch bookkeeping is amortized
        #: by the unrolling — the source of Table 1's negative overheads.
        #: Compiler Interrupts only periodizes its checks without
        #: transforming the loop, so its variant passes discount=False.
        self.discount = discount

    def run(self, function):
        """Returns the number of loops whose period was raised above 1."""
        cfg = ControlFlowGraph(function)
        unrolled = 0
        for loop in cfg.natural_loops():
            if self._loop_has_ext_call(function, loop):
                continue
            body_size = cfg.loop_body_instruction_count(loop)
            if body_size <= 0 or body_size >= self.min_instructions:
                continue
            period = int(math.ceil(self.min_instructions / body_size))
            latch = function.block(loop.latch)
            found_probe = False
            for instr in latch.instrs:
                if instr.is_probe:
                    instr.attrs["period"] = period
                    found_probe = True
            if not found_probe:
                continue
            if self.discount:
                # Unrolling k-fold leaves one latch/header branch pair per k
                # logical iterations.  (Only the control *terminators* are
                # discounted: an -O3 baseline has already strength-reduced
                # the arithmetic, so branches are what unrolling removes.)
                # Concord never unrolls less than the stock compiler would.
                factor = max(period, BASELINE_UNROLL_FACTOR)
                latch.terminator.attrs["discount"] = factor
                function.block(loop.header).terminator.attrs["discount"] = factor
            unrolled += 1
        return unrolled

    @staticmethod
    def _loop_has_ext_call(function, loop):
        return any(
            instr.is_ext_call
            for label in loop.body
            for instr in function.block(label).instrs
        )


class BaselineOptimizePass:
    """Model the stock compiler's -O3 loop unrolling on *un-instrumented*
    code: tight loops (body below ``min_instructions``) get their control
    terminators amortized by up to ``max_factor``.

    Applied to the baseline build before measuring instrumentation overhead
    — otherwise Concord's unrolling would be credited with speedups the
    stock compiler already delivers, inflating Table 1's negative entries
    far beyond the paper's -0.2%..-3.7% range.  Also applied to the
    Compiler-Interrupts build, which compiles with the same -O3 pipeline.
    """

    def __init__(self, max_factor=BASELINE_UNROLL_FACTOR,
                 min_instructions=constants.LOOP_UNROLL_MIN_INSTRUCTIONS):
        self.max_factor = max_factor
        self.min_instructions = min_instructions

    def run(self, function):
        cfg = ControlFlowGraph(function)
        optimized = 0
        for loop in cfg.natural_loops():
            if LoopUnrollPass._loop_has_ext_call(function, loop):
                continue
            body_size = cfg.loop_body_instruction_count(loop)
            if body_size <= 0 or body_size >= self.min_instructions:
                continue
            period = int(math.ceil(self.min_instructions / body_size))
            factor = min(self.max_factor, period)
            if factor <= 1:
                continue
            latch = function.block(loop.latch)
            header = function.block(loop.header)
            latch.terminator.attrs.setdefault("discount", factor)
            header.terminator.attrs.setdefault("discount", factor)
            optimized += 1
        return optimized
