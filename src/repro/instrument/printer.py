"""Textual form for the instrumentation IR: dump and parse.

A human-readable dump makes pass behaviour inspectable (`print(dump(fn))`
after probe insertion shows exactly where probes landed), and the parser
round-trips it so IR fixtures can live in text.

Format::

    func @main(n) {
    entry:
      li acc, 0
      jump L1.header
    L1.header:
      cmp_lt c1, L1_i, L1_n
      br c1, L1.body, L1.exit
    ...
    }
"""

from repro.instrument.ir import Function, Instr, Module, Terminator

__all__ = ["dump_function", "dump_module", "parse_module", "ParseError"]


class ParseError(ValueError):
    """The textual IR is malformed."""


def _fmt_value(value):
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _fmt_attrs(attrs):
    public = {k: v for k, v in attrs.items() if not k.startswith("_")}
    if not public:
        return ""
    parts = ",".join(
        "{}={}".format(key, _fmt_value(public[key])) for key in sorted(public)
    )
    return "  !{" + parts + "}"


def dump_function(function):
    """Render one function as text."""
    lines = ["func @{}({}) {{".format(function.name,
                                      ", ".join(function.params))]
    for label in function.block_order:
        block = function.blocks[label]
        lines.append("{}:".format(label))
        for instr in block.instrs:
            operands = ", ".join(_fmt_value(a) for a in instr.args)
            dst = "{}, ".format(instr.dst) if instr.dst is not None else ""
            body = "  {} {}{}".format(instr.op, dst, operands).rstrip()
            # Normalize 'op dst, ' with no operands to 'op dst'.
            if body.endswith(","):
                body = body[:-1]
            lines.append(body + _fmt_attrs(instr.attrs))
        terminator = block.terminator
        if terminator is not None:
            operands = ", ".join(_fmt_value(a) for a in terminator.args)
            lines.append(
                "  {} {}".format(terminator.op, operands).rstrip()
                + _fmt_attrs(terminator.attrs)
            )
    lines.append("}")
    return "\n".join(lines)


def dump_module(module):
    """Render every function in the module."""
    return "\n\n".join(
        dump_function(module.functions[name])
        for name in sorted(module.functions)
    )


def _parse_value(token):
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _parse_attrs(text):
    attrs = {}
    for pair in text.strip()[1:-1].split(","):
        if not pair:
            continue
        key, _eq, value = pair.partition("=")
        attrs[key.strip()] = _parse_value(value)
    return attrs


def parse_module(text, name="parsed"):
    """Parse text produced by :func:`dump_module` back into a Module."""
    module = Module(name)
    function = None
    block = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("func @"):
            header = line[len("func @"):]
            func_name, _paren, rest = header.partition("(")
            params_text = rest.split(")")[0]
            params = [p.strip() for p in params_text.split(",") if p.strip()]
            function = Function(func_name.strip(), params)
            module.add(function)
            block = None
            continue
        if line == "}":
            function = None
            continue
        if function is None:
            raise ParseError("statement outside a function: {!r}".format(line))
        if line.endswith(":") and " " not in line:
            block = function.add_block(line[:-1])
            continue
        if block is None:
            raise ParseError("instruction outside a block: {!r}".format(line))

        attrs = {}
        if "!{" in line:
            line, _bang, attr_text = line.partition("!{")
            attrs = _parse_attrs("{" + attr_text)
            line = line.strip()
        op, _space, operand_text = line.partition(" ")
        operands = [
            _parse_value(tok) for tok in operand_text.split(",") if tok.strip()
        ]
        if op in ("jump", "br", "ret"):
            block.terminate(Terminator(op, tuple(operands), attrs))
            continue
        dst = None
        if op not in ("store", "probe") and operands:
            dst = operands[0]
            operands = operands[1:]
        if op == "ext_call" and dst is None:
            raise ParseError("ext_call needs a destination")
        try:
            block.append(Instr(op, dst, tuple(operands), attrs))
        except ValueError as exc:
            raise ParseError(str(exc)) from exc
    return module
