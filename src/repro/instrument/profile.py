"""Instrumentation profiles: the bridge from the compiler substrate to the
scheduler simulation.

Running an instrumented kernel yields three quantities the paper reports or
relies on:

* the **overhead fraction** — instrumented vs baseline cycles (Table 1's
  "Concord overhead" / "CI overhead" columns);
* the **probe-gap distribution** — how far apart consecutive probes fire,
  which is exactly the notice latency of compiler-enforced cooperation
  (section 3.1);
* the **preemption-timeliness sigma** — the standard deviation of achieved
  scheduling quanta around the target (Table 1's last column, Fig. 5's
  abstraction).
"""

import bisect
import math
import random

from repro.hardware.cpu import CycleClock
from repro.instrument.compile import executor_for
from repro.instrument.optim import optimize_function
from repro.instrument.passes import (
    BaselineOptimizePass,
    CACHELINE_STYLE,
    LoopUnrollPass,
    ProbeInsertionPass,
)

__all__ = ["InstrumentationProfile", "profile_kernel"]

_MAX_STORED_GAPS = 4096


class InstrumentationProfile:
    """Summary of one instrumented program's probe behaviour.

    Implements ``sample_gap_cycles`` so it can plug straight into
    :class:`repro.core.preemption.UniformProbeGapNotice`.
    """

    def __init__(self, name, style, base_cycles, instrumented_cycles,
                 probe_times, probes_fired):
        if base_cycles <= 0:
            raise ValueError("baseline run must consume cycles")
        self.name = name
        self.style = style
        self.base_cycles = base_cycles
        self.instrumented_cycles = instrumented_cycles
        self.probes_fired = probes_fired
        self.total_cycles = instrumented_cycles
        self.probe_times = probe_times
        gaps = [
            probe_times[i + 1] - probe_times[i]
            for i in range(len(probe_times) - 1)
        ]
        if len(gaps) > _MAX_STORED_GAPS:
            stride = len(gaps) / _MAX_STORED_GAPS
            gaps = [gaps[int(i * stride)] for i in range(_MAX_STORED_GAPS)]
        self.gaps = gaps

    # -- headline numbers -------------------------------------------------------

    @property
    def overhead_fraction(self):
        """Instrumented slowdown vs the un-instrumented baseline; negative
        when unrolling more than pays for the probes (Table 1)."""
        return self.instrumented_cycles / self.base_cycles - 1.0

    @property
    def mean_gap_cycles(self):
        if not self.gaps:
            return float(self.total_cycles)
        return sum(self.gaps) / len(self.gaps)

    @property
    def max_gap_cycles(self):
        return max(self.gaps) if self.gaps else float(self.total_cycles)

    def sample_gap_cycles(self, rng):
        """Draw from the empirical probe-gap distribution."""
        if not self.gaps:
            return float(self.total_cycles)
        return self.gaps[rng.randrange(len(self.gaps))]

    # -- preemption timeliness (Table 1 last column) ---------------------------------

    def preemption_deviations_cycles(self, quantum_cycles, samples=400,
                                     seed=0xC0C0):
        """Deviation of each achieved quantum from the target.

        Walks the probe timeline (wrapping around, as a long-running request
        would loop through the same code): after each yield the next target
        is one quantum later; the worker actually yields at the first probe
        at or after the target.  Deviations are one-sided by construction —
        Concord never preempts early (section 3.1).

        Several short walks with random starting phases are averaged: real
        programs drift in and out of phase with the quantum clock, and a
        single walk over a perfectly periodic kernel would phase-lock.
        """
        if quantum_cycles <= 0:
            raise ValueError("quantum must be positive")
        times = self.probe_times
        if not times:
            return [0.0] * samples
        rng = random.Random(seed)
        span = float(self.total_cycles)
        walks = 20
        per_walk = max(1, samples // walks)
        deviations = []
        for _ in range(walks):
            yield_at = rng.uniform(0.0, span)
            for _ in range(per_walk):
                target = yield_at + quantum_cycles
                lap = math.floor(target / span)
                within = target - lap * span
                idx = bisect.bisect_left(times, within)
                if idx == len(times):
                    lap += 1
                    probe = lap * span + times[0]
                else:
                    probe = lap * span + times[idx]
                deviations.append(probe - target)
                yield_at = probe
        return deviations

    def timeliness_std_us(self, quantum_us, clock=None, samples=400):
        """Standard deviation (µs) of achieved quanta around the target —
        the paper keeps this under 2 µs for all 24 benchmarks."""
        clock = clock or CycleClock()
        quantum_cycles = clock.us_to_cycles(quantum_us)
        deviations = self.preemption_deviations_cycles(quantum_cycles, samples)
        mean = sum(deviations) / len(deviations)
        var = sum((d - mean) ** 2 for d in deviations) / len(deviations)
        return clock.cycles_to_us(math.sqrt(var))

    def __repr__(self):
        return (
            "InstrumentationProfile({!r}, style={!r}, overhead={:.2%}, "
            "mean_gap={:.0f}cyc)".format(
                self.name, self.style, self.overhead_fraction,
                self.mean_gap_cycles,
            )
        )


def profile_kernel(kernel_factory, style=CACHELINE_STYLE, unroll=True,
                   discount=None, args=(), name=None):
    """Instrument and execute a kernel, returning its profile.

    ``kernel_factory`` builds a fresh :class:`~repro.instrument.ir.Module`
    each call (instrumentation mutates the IR).  ``discount`` defaults to
    True for the cache-line style (Concord genuinely unrolls) and False for
    rdtsc (Compiler Interrupts only periodizes its counters).
    """
    if discount is None:
        discount = style == CACHELINE_STYLE

    # The baseline is -O3 code: constants folded, dead code removed, and
    # tight-loop control already amortized.
    base_module = kernel_factory()
    baseline_pass = BaselineOptimizePass()
    for function in base_module.functions.values():
        optimize_function(function)
        baseline_pass.run(function)
    base = executor_for(base_module, record_probes=False).run(args=args)

    # The instrumented build goes through the same scalar optimizations
    # before probes are inserted (Concord instruments optimized IR).
    module = kernel_factory()
    for function in module.functions.values():
        optimize_function(function)
    probe_pass = ProbeInsertionPass(style)
    for function in module.functions.values():
        probe_pass.run(function)
    if style == CACHELINE_STYLE:
        if unroll:
            # Concord's own unrolling: periodizes back-edge probes and
            # supersedes the stock compiler's control amortization.
            unroll_pass = LoopUnrollPass(discount=discount)
            for function in module.functions.values():
                unroll_pass.run(function)
    else:
        # Compiler Interrupts relies on cycle thresholds, not unrolling,
        # and compiles through the same -O3 pipeline as the baseline.
        for function in module.functions.values():
            baseline_pass.run(function)
    # The compiled fast-path (bit-identical; REPRO_IR_BACKEND selects).
    run = executor_for(module).run(args=args)

    return InstrumentationProfile(
        name=name or base_module.name,
        style=style,
        base_cycles=base.cycles,
        instrumented_cycles=run.cycles,
        probe_times=run.probe_times,
        probes_fired=run.probes_fired,
    )
