"""A LevelDB-like in-memory key-value store (section 5.3's application).

The paper serves Google LevelDB with memory-mapped plain tables, 15,000
keys, and four request kinds: GET (~600 ns), PUT/DELETE (~2.3 µs), and
full-database SCAN (~500 µs).  This package implements the store for real —
skiplist memtable, immutable sorted tables, write batches, merged iterators,
compaction — plus a calibrated cost model mapping operations onto simulated
service times, and the safety-first preemption models of section 3.1 (the
4-line lock counter vs Shinjuku's API-window preemption disabling).
"""

from repro.kvstore.skiplist import SkipList
from repro.kvstore.memtable import MemTable, ValueKind
from repro.kvstore.table import SortedTable
from repro.kvstore.batch import WriteBatch
from repro.kvstore.db import DB, DBOptions
from repro.kvstore.costs import LevelDBCostModel, leveldb_workload
from repro.kvstore.app import (
    LevelDBApp,
    concord_lock_counter_safety,
    shinjuku_api_window_safety,
)

__all__ = [
    "SkipList",
    "MemTable",
    "ValueKind",
    "SortedTable",
    "WriteBatch",
    "DB",
    "DBOptions",
    "LevelDBCostModel",
    "leveldb_workload",
    "LevelDBApp",
    "concord_lock_counter_safety",
    "shinjuku_api_window_safety",
]
