"""The LevelDB server application (section 5.3) and its safety models.

:class:`LevelDBApp` implements the Concord API (section 4.1) over a real
:class:`~repro.kvstore.db.DB` instance: requests are dictionaries like
``{"op": "GET", "key": b"user42"}`` and are actually executed.  The two
safety-model constructors encode the paper's comparison:

* Concord adds a 4-line lock counter around the write mutex, so preemption
  is deferred only while a lock is genuinely held (microseconds at most);
* the Shinjuku prototype disables preemption for *entire* LevelDB API
  calls, which for a pathological long-running call (the paper's 100 µs GET
  microbenchmark, section 3.1) delays preemption by the whole call.
"""

from repro.core.api import Application
from repro.core.config import ApiWindowSafety, LockCounterSafety
from repro.kvstore.costs import LevelDBCostModel
from repro.kvstore.db import DB

__all__ = [
    "LevelDBApp",
    "concord_lock_counter_safety",
    "shinjuku_api_window_safety",
]


class LevelDBApp(Application):
    """Serves GET/PUT/DELETE/SCAN requests against a real store."""

    def __init__(self, db=None, num_keys=15_000):
        self.db = db if db is not None else DB()
        self.cost_model = LevelDBCostModel(num_keys)
        self.num_keys = num_keys
        self.requests_handled = 0
        self.workers_seen = set()

    # -- Concord API (section 4.1) ------------------------------------------------

    def setup(self):
        """Populate the database as the paper does: 15,000 unique keys."""
        for i in range(self.num_keys):
            self.db.put(self._key(i), b"value-%d" % i)

    def setup_worker(self, core_num):
        self.workers_seen.add(core_num)

    def handle_request(self, request):
        payload = request if isinstance(request, dict) else request.payload
        op = payload["op"]
        self.requests_handled += 1
        if op == "GET":
            return {"op": op, "value": self.db.get(payload["key"])}
        if op == "PUT":
            self.db.put(payload["key"], payload["value"])
            return {"op": op, "ok": True}
        if op == "DELETE":
            self.db.delete(payload["key"])
            return {"op": op, "ok": True}
        if op == "SCAN":
            rows = self.db.scan(
                payload.get("start"), payload.get("end"),
                payload.get("limit"),
            )
            return {"op": op, "rows": rows}
        raise KeyError("unknown LevelDB op {!r}".format(op))

    def service_time_us(self, kind, sampled_us, rng):
        """Trust the workload's calibrated per-kind times."""
        return sampled_us

    def _key(self, i):
        return ("key%08d" % i).encode()

    def key_for(self, i):
        """Deterministic key naming used by examples and tests."""
        return self._key(i)


def concord_lock_counter_safety(write_critical_us=0.4, held_fraction=0.25):
    """Concord's LevelDB integration (section 3.1): 4 added lines maintain
    a counter around mutex acquire/release; preemption is deferred only
    while the counter is non-zero.  GETs in this setup take read-side
    locks briefly too; SCANs are lock-free snapshots.
    """
    return LockCounterSafety(
        critical_us={
            "PUT": write_critical_us,
            "DELETE": write_critical_us,
            "GET": 0.2,
        },
        held_fraction={
            "PUT": held_fraction,
            "DELETE": held_fraction,
            "GET": 0.1,
        },
    )


def shinjuku_api_window_safety(get_call_us=0.6, write_call_us=2.3,
                               scan_segment_us=2.0):
    """The Shinjuku prototype's approach (section 3.1): preemption disabled
    across whole LevelDB API calls.  SCANs iterate in ~2 µs iterator-API
    segments, so their no-preempt windows are short; GET/PUT windows span
    the entire call.
    """
    return ApiWindowSafety(
        {
            "GET": get_call_us,
            "PUT": write_call_us,
            "DELETE": write_call_us,
            "SCAN": scan_segment_us,
        }
    )
