"""Write batches: LevelDB's atomic multi-update unit."""

from repro.kvstore.memtable import ValueKind

__all__ = ["WriteBatch"]


class WriteBatch:
    """An ordered list of puts/deletes applied atomically by DB.write()."""

    def __init__(self):
        self._ops = []

    def put(self, key, value):
        self._ops.append((ValueKind.VALUE, key, value))
        return self

    def delete(self, key):
        self._ops.append((ValueKind.DELETION, key, None))
        return self

    def clear(self):
        self._ops.clear()

    def __len__(self):
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    def apply_to(self, memtable, first_sequence):
        """Apply all ops with consecutive sequence numbers; returns the
        next free sequence."""
        sequence = first_sequence
        for kind, key, value in self._ops:
            memtable.add(sequence, kind, key, value)
            sequence += 1
        return sequence
