"""Bloom filters for sorted-table lookups.

LevelDB attaches a bloom filter to each table so GETs for absent keys skip
the binary search.  We implement the same double-hashing construction
LevelDB uses (Kirsch-Mitzenmacher: h1 + i*h2) with ~10 bits per key,
giving a ~1% false-positive rate.
"""

import math

__all__ = ["BloomFilter"]


def _fnv1a(data, seed):
    value = (0xCBF29CE484222325 ^ seed) & ((1 << 64) - 1)
    for byte in data:
        value ^= byte
        value = (value * 0x100000001B3) & ((1 << 64) - 1)
    return value


class BloomFilter:
    """A fixed-size bloom filter over byte-string keys."""

    def __init__(self, expected_keys, bits_per_key=10):
        if expected_keys < 0:
            raise ValueError("expected_keys must be >= 0")
        if bits_per_key < 1:
            raise ValueError("bits_per_key must be >= 1")
        self.bits = max(64, expected_keys * bits_per_key)
        # Optimal hash count: ln(2) * bits/keys, clamped like LevelDB does.
        self.num_hashes = max(1, min(30, int(round(bits_per_key * 0.69))))
        self._words = bytearray((self.bits + 7) // 8)
        self.added = 0

    def _positions(self, key):
        h1 = _fnv1a(key, 0x9747B28C)
        h2 = _fnv1a(key, 0x5BD1E995) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.bits

    def add(self, key):
        for position in self._positions(key):
            self._words[position >> 3] |= 1 << (position & 7)
        self.added += 1

    def may_contain(self, key):
        """False means definitely absent; True means probably present."""
        for position in self._positions(key):
            if not self._words[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def __contains__(self, key):
        return self.may_contain(key)

    def false_positive_rate(self):
        """Theoretical FP rate for the current fill level."""
        if self.added == 0:
            return 0.0
        k = self.num_hashes
        fill = 1.0 - math.exp(-k * self.added / self.bits)
        return fill ** k

    @classmethod
    def from_keys(cls, keys, bits_per_key=10):
        keys = list(keys)
        bloom = cls(len(keys), bits_per_key)
        for key in keys:
            bloom.add(key)
        return bloom
