"""Service-time cost model for the LevelDB server (section 5.3).

The paper measures, with 15,000 keys in memory-mapped plain tables:
GET ~600 ns, PUT/DELETE ~2.3 µs, full-database SCAN ~500 µs.  The model
anchors those points and scales with database size (GET logarithmically via
the skiplist/binary search, SCAN linearly), so examples that populate
different key counts still get sensible timings.
"""

import math

from repro.workloads.distributions import ClassMix, Fixed, RequestClass
from repro.workloads.named import (
    LEVELDB_DELETE_US,
    LEVELDB_GET_US,
    LEVELDB_PUT_US,
    LEVELDB_SCAN_US,
)

__all__ = ["LevelDBCostModel", "leveldb_workload"]

#: Database size at which the paper's numbers were measured.
_REFERENCE_KEYS = 15_000


class LevelDBCostModel:
    """Maps store operations onto simulated service times (µs)."""

    def __init__(self, num_keys=_REFERENCE_KEYS):
        if num_keys < 1:
            raise ValueError("need at least one key")
        self.num_keys = num_keys
        self._log_scale = math.log2(max(2, num_keys)) / math.log2(
            _REFERENCE_KEYS
        )
        self._linear_scale = num_keys / _REFERENCE_KEYS

    def get_us(self):
        """Point lookup: log-factor of the reference 600 ns."""
        return LEVELDB_GET_US * self._log_scale

    def put_us(self):
        """Insert: skiplist insert + bookkeeping, log-scaled 2.3 µs."""
        return LEVELDB_PUT_US * self._log_scale

    def delete_us(self):
        return LEVELDB_DELETE_US * self._log_scale

    def scan_us(self, fraction=1.0):
        """Range scan covering ``fraction`` of the database; the paper's
        SCANs cover all of it (500 µs)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        return LEVELDB_SCAN_US * self._linear_scale * fraction

    def service_us(self, kind, fraction=1.0):
        """Service time for a request kind (GET/PUT/DELETE/SCAN)."""
        dispatch = {
            "GET": self.get_us,
            "PUT": self.put_us,
            "DELETE": self.delete_us,
        }
        if kind in dispatch:
            return dispatch[kind]()
        if kind == "SCAN":
            return self.scan_us(fraction)
        raise KeyError("unknown LevelDB request kind {!r}".format(kind))


def leveldb_workload(mix, num_keys=_REFERENCE_KEYS, name=None):
    """Build a :class:`~repro.workloads.distributions.ClassMix` from a
    ``{kind: probability}`` mapping using the cost model.

    >>> wl = leveldb_workload({"GET": 0.5, "SCAN": 0.5})
    >>> sorted(wl.class_probabilities())
    ['GET', 'SCAN']
    """
    model = LevelDBCostModel(num_keys)
    classes = [
        RequestClass(kind, prob, Fixed(model.service_us(kind), name=kind))
        for kind, prob in sorted(mix.items())
        if prob > 0
    ]
    return ClassMix(classes, name=name or "LevelDB(custom)")
