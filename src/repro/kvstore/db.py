"""The DB facade: LevelDB's public surface over memtable + sorted tables.

Reads consult the memtable first, then tables newest-to-oldest.  Writes go
through a mutex — the lock whose handling differentiates Concord's 4-line
lock counter from Shinjuku's whole-API-call preemption disabling
(section 3.1).  The lock counter is implemented here exactly as the paper
describes: incremented on acquire, decremented on release, readable by the
runtime to decide whether preemption is safe.
"""

import threading
from dataclasses import dataclass

from repro.kvstore.batch import WriteBatch
from repro.kvstore.memtable import MemTable, ValueKind
from repro.kvstore.table import SortedTable

__all__ = ["DB", "DBOptions"]


@dataclass(frozen=True)
class DBOptions:
    """Tuning knobs.

    memtable_flush_entries:
        Flush the memtable to an immutable sorted table once it holds this
        many entries (the analogue of LevelDB's write_buffer_size).
    max_tables_before_compaction:
        Run a full compaction when the table stack grows past this.
    """

    memtable_flush_entries: int = 4096
    max_tables_before_compaction: int = 4


class DB:
    """An in-memory LevelDB-alike."""

    def __init__(self, options=None, seed=0xDB):
        self.options = options or DBOptions()
        self._seed = seed
        self._memtable = MemTable(seed=seed)
        self._tables = []  # newest first
        self._sequence = 1
        self._mutex = threading.Lock()
        #: The paper's 4-line safety counter: >0 while application code
        #: holds the write mutex, so the runtime can defer preemption.
        self.lock_depth = 0
        self.flushes = 0
        self.compactions = 0

    # -- write path -----------------------------------------------------------------

    def _locked(self):
        db = self

        class _Guard:
            def __enter__(self):
                db._mutex.acquire()
                db.lock_depth += 1
                return db

            def __exit__(self, exc_type, exc, tb):
                db.lock_depth -= 1
                db._mutex.release()
                return False

        return _Guard()

    def put(self, key, value):
        with self._locked():
            self._memtable.add(self._sequence, ValueKind.VALUE, key, value)
            self._sequence += 1
            self._maybe_flush()

    def delete(self, key):
        with self._locked():
            self._memtable.add(self._sequence, ValueKind.DELETION, key)
            self._sequence += 1
            self._maybe_flush()

    def write(self, batch):
        """Apply a :class:`WriteBatch` atomically."""
        if not isinstance(batch, WriteBatch):
            raise TypeError("write() expects a WriteBatch")
        with self._locked():
            self._sequence = batch.apply_to(self._memtable, self._sequence)
            self._maybe_flush()

    def _maybe_flush(self):
        if (
            self._memtable.approximate_entries()
            >= self.options.memtable_flush_entries
        ):
            self._tables.insert(0, SortedTable.from_memtable(self._memtable))
            self._memtable = MemTable(seed=self._seed)
            self.flushes += 1
            if len(self._tables) > self.options.max_tables_before_compaction:
                self._tables = [SortedTable.merge(self._tables)]
                self.compactions += 1

    # -- read path --------------------------------------------------------------------

    def get(self, key, default=None):
        found, value = self._memtable.get(key)
        if found:
            return value if value is not None else default
        for table in self._tables:
            found, value = table.get(key)
            if found:
                return value if value is not None else default
        return default

    def __contains__(self, key):
        return self.get(key, default=_MISSING) is not _MISSING

    def scan(self, start_key=None, end_key=None, limit=None):
        """Ordered range scan merging memtable and all tables.

        Returns a list of (key, value) pairs with start <= key < end,
        newest version winning, tombstones excluded.
        """
        winners = {}
        sources = [
            ((key, kind, value) for key, kind, value
             in self._memtable.iter_latest())
        ]
        sources.extend(iter(t) for t in self._tables)
        # Visit newest source first; first writer wins.
        for source in sources:
            for key, kind, value in source:
                if start_key is not None and key < start_key:
                    continue
                if end_key is not None and key >= end_key:
                    continue
                if key not in winners:
                    winners[key] = (kind, value)
        result = [
            (key, value)
            for key, (kind, value) in sorted(winners.items())
            if kind != ValueKind.DELETION
        ]
        if limit is not None:
            result = result[:limit]
        return result

    def count(self):
        """Number of live keys (scan-based; O(n))."""
        return len(self.scan())

    @property
    def table_count(self):
        return len(self._tables)

    def stats(self):
        return {
            "memtable_entries": len(self._memtable),
            "tables": len(self._tables),
            "flushes": self.flushes,
            "compactions": self.compactions,
            "sequence": self._sequence,
        }


_MISSING = object()
