"""The memtable: a skiplist of versioned entries.

Like LevelDB, every mutation gets a monotonically increasing sequence
number and deletes are tombstones; the internal key orders by (user_key
ascending, sequence descending) so the freshest visible version of a key is
found first.
"""

from repro.kvstore.skiplist import SkipList

__all__ = ["MemTable", "ValueKind"]

_MAX_SEQUENCE = (1 << 56) - 1


class ValueKind:
    """Entry types, mirroring LevelDB's ValueType."""

    VALUE = 1
    DELETION = 0


def _internal_key(user_key, sequence):
    # Sequence is inverted so higher sequences sort first for equal keys.
    return (user_key, _MAX_SEQUENCE - sequence)


class MemTable:
    """Mutable in-memory table of versioned entries."""

    def __init__(self, seed=0xDB):
        self._list = SkipList(seed=seed)
        self.entries = 0

    def add(self, sequence, kind, user_key, value=None):
        """Record a PUT (kind=VALUE) or DELETE (kind=DELETION)."""
        if kind not in (ValueKind.VALUE, ValueKind.DELETION):
            raise ValueError("bad value kind {!r}".format(kind))
        self._list.insert(_internal_key(user_key, sequence), (kind, value))
        self.entries += 1

    def get(self, user_key, sequence=_MAX_SEQUENCE):
        """Look up the freshest version of ``user_key`` visible at
        ``sequence``.

        Returns (found, value): found=False means not present here (check
        older tables); found=True with value=None means a tombstone.
        """
        start = _internal_key(user_key, sequence)
        for (key, _inv_seq), (kind, value) in self._list.iterate_from(start):
            if key != user_key:
                break
            if kind == ValueKind.DELETION:
                return True, None
            return True, value
        return False, None

    def __len__(self):
        return self.entries

    def iter_versions(self):
        """All versions in internal-key order: yields
        (user_key, sequence, kind, value)."""
        for (key, inv_seq), (kind, value) in self._list:
            yield key, _MAX_SEQUENCE - inv_seq, kind, value

    def iter_latest(self):
        """The freshest version of each key, in key order, including
        tombstones: yields (user_key, kind, value)."""
        last_key = object()
        for key, _seq, kind, value in self.iter_versions():
            if key == last_key:
                continue
            last_key = key
            yield key, kind, value

    def approximate_entries(self):
        return self.entries
