"""A probabilistic skiplist — LevelDB's memtable structure.

Keys are arbitrary comparable values (the store uses bytes).  Seeking and
ordered iteration are O(log n) / O(1)-per-step, matching the asymptotics the
cost model assumes.
"""

import random

__all__ = ["SkipList"]

_MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key, value, height):
        self.key = key
        self.value = value
        self.next = [None] * height


class SkipList:
    """An ordered map with skiplist internals.

    A seeded RNG keeps tower heights — and therefore performance and
    iteration behaviour — deterministic across runs.
    """

    def __init__(self, seed=0xDB):
        self._head = _Node(None, None, _MAX_HEIGHT)
        self._height = 1
        self._rng = random.Random(seed)
        self._count = 0

    def _random_height(self):
        height = 1
        while height < _MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(self, key, prev_out=None):
        node = self._head
        level = self._height - 1
        while True:
            nxt = node.next[level]
            if nxt is not None and nxt.key < key:
                node = nxt
            else:
                if prev_out is not None:
                    prev_out[level] = node
                if level == 0:
                    return nxt
                level -= 1

    # -- map interface -------------------------------------------------------------

    def insert(self, key, value):
        """Insert or overwrite ``key``."""
        prev = [self._head] * _MAX_HEIGHT
        node = self._find_greater_or_equal(key, prev)
        if node is not None and node.key == key:
            node.value = value
            return
        height = self._random_height()
        if height > self._height:
            for level in range(self._height, height):
                prev[level] = self._head
            self._height = height
        node = _Node(key, value, height)
        for level in range(height):
            node.next[level] = prev[level].next[level]
            prev[level].next[level] = node
        self._count += 1

    def get(self, key, default=None):
        node = self._find_greater_or_equal(key)
        if node is not None and node.key == key:
            return node.value
        return default

    def __contains__(self, key):
        node = self._find_greater_or_equal(key)
        return node is not None and node.key == key

    def __len__(self):
        return self._count

    # -- ordered traversal --------------------------------------------------------------

    def __iter__(self):
        """Yield (key, value) in key order."""
        node = self._head.next[0]
        while node is not None:
            yield node.key, node.value
            node = node.next[0]

    def iterate_from(self, key):
        """Yield (key, value) pairs with key >= ``key``, in order."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.key, node.value
            node = node.next[0]

    def first_key(self):
        node = self._head.next[0]
        return node.key if node is not None else None

    def approximate_memory_entries(self):
        """Entry count, the measure the flush threshold uses."""
        return self._count
