"""Immutable sorted tables — the in-memory analogue of LevelDB's
memory-mapped plain tables (section 5.3's setup keeps all data resident).
"""

import bisect

from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import ValueKind

__all__ = ["SortedTable"]


class SortedTable:
    """An immutable, sorted array of (key, kind, value) entries.

    One entry per key (tables are built from the freshest version of each
    key at flush/compaction time); tombstones are retained so they can mask
    older tables until a full compaction drops them.  Like LevelDB, each
    table carries a bloom filter so lookups for absent keys skip the
    binary search.
    """

    def __init__(self, entries, bloom_bits_per_key=10):
        keys = [e[0] for e in entries]
        if keys != sorted(keys):
            raise ValueError("table entries must be sorted by key")
        if len(set(keys)) != len(keys):
            raise ValueError("table entries must have unique keys")
        self._keys = keys
        self._entries = list(entries)
        self._bloom = BloomFilter.from_keys(keys, bloom_bits_per_key)
        self.bloom_negatives = 0

    @classmethod
    def from_memtable(cls, memtable):
        """Flush a memtable: freshest version of each key, tombstones kept."""
        return cls(list(memtable.iter_latest()))

    # -- lookups -------------------------------------------------------------

    def get(self, user_key):
        """Returns (found, value); found=True, value=None is a tombstone."""
        if not self._bloom.may_contain(user_key):
            self.bloom_negatives += 1
            return False, None
        index = bisect.bisect_left(self._keys, user_key)
        if index < len(self._keys) and self._keys[index] == user_key:
            _key, kind, value = self._entries[index]
            if kind == ValueKind.DELETION:
                return True, None
            return True, value
        return False, None

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        """Yield (key, kind, value) in key order, tombstones included."""
        return iter(self._entries)

    def iterate_from(self, user_key):
        index = bisect.bisect_left(self._keys, user_key)
        for entry in self._entries[index:]:
            yield entry

    def key_range(self):
        if not self._entries:
            return None, None
        return self._keys[0], self._keys[-1]

    @staticmethod
    def merge(tables):
        """Compact ``tables`` (newest first) into one, dropping tombstones
        and shadowed versions — LevelDB's full compaction."""
        merged = {}
        for table in reversed(tables):  # oldest first; newer overwrite
            for key, kind, value in table:
                merged[key] = (kind, value)
        entries = [
            (key, kind, value)
            for key, (kind, value) in sorted(merged.items())
            if kind != ValueKind.DELETION
        ]
        return SortedTable(entries)
