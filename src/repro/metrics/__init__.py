"""Measurement utilities: percentiles, slowdown summaries, load sweeps."""

from repro.metrics.percentile import percentile, Histogram
from repro.metrics.slowdown import (
    SlowdownSummary, check_warmup_frac, summarize_slowdowns,
)
from repro.metrics.sweep import LoadSweep, SweepPoint, knee_load
from repro.metrics.report import format_table
from repro.metrics.plot import ascii_plot

__all__ = [
    "percentile",
    "Histogram",
    "SlowdownSummary",
    "summarize_slowdowns",
    "check_warmup_frac",
    "LoadSweep",
    "SweepPoint",
    "knee_load",
    "format_table",
    "ascii_plot",
]
