"""Percentile computation and a fixed-bucket histogram.

The paper reports the 99.9th percentile of slowdown (section 5.1); we use
the nearest-rank-with-interpolation definition, which matches numpy's
default ("linear") method without requiring numpy in the hot path.
"""

import math

__all__ = ["percentile", "Histogram"]


def percentile(values, p, presorted=False):
    """The ``p``-th percentile (0..100) of ``values`` with linear
    interpolation between order statistics.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be in [0, 100], got {}".format(p))
    data = values if presorted else sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * p / 100.0
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(data[low])
    frac = rank - low
    return data[low] + frac * (data[high] - data[low])


class Histogram:
    """A log-bucketed histogram for latency-like positive values.

    Buckets grow geometrically by ``growth`` from ``least``; quantile
    estimates are exact to within one bucket's relative width.  Useful when
    holding every sample would be too costly.
    """

    def __init__(self, least=0.001, growth=1.02):
        if least <= 0 or growth <= 1.0:
            raise ValueError("need least > 0 and growth > 1")
        self.least = least
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts = {}
        self.count = 0
        self.total = 0.0
        self.max_value = float("-inf")
        self.min_value = float("inf")

    def _bucket(self, value):
        if value <= self.least:
            return 0
        return 1 + int(math.log(value / self.least) / self._log_growth)

    def _bucket_value(self, index):
        if index == 0:
            return self.least
        return self.least * self.growth ** (index - 0.5)

    def add(self, value):
        if value < 0:
            raise ValueError("histogram values must be >= 0, got {}".format(value))
        index = self._bucket(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.max_value = max(self.max_value, value)
        self.min_value = min(self.min_value, value)

    def extend(self, values):
        for value in values:
            self.add(value)

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """Estimate the ``q``-quantile (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got {}".format(q))
        if self.count == 0:
            raise ValueError("quantile of empty histogram")
        if q >= 1.0:
            return self.max_value
        target = q * self.count
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= target:
                return min(self._bucket_value(index), self.max_value)
        return self.max_value

    def percentile(self, p):
        """Estimate the ``p``-th percentile (0..100)."""
        return self.quantile(p / 100.0)
