"""Dependency-free ASCII line plots for experiment output.

The CLI's ``--plot`` flag renders each "slowdown vs load" table as a
terminal chart so the figure's *shape* — knees, crossings, explosions — is
visible without leaving the shell.
"""

import math

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(series, width=64, height=16, title=None, x_label="x",
               y_label="y", log_y=False):
    """Render ``series`` — a mapping name -> [(x, y), ...] — as ASCII art.

    Points are scattered onto a character grid; each series gets a marker
    and a legend line.  ``log_y`` plots log10(y), useful for tail-latency
    explosions.
    """
    if not series:
        raise ValueError("nothing to plot")
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        raise ValueError("series contain no points")

    def transform(y):
        if not log_y:
            return y
        return math.log10(max(y, 1e-9))

    xs = [p[0] for p in points]
    ys = [transform(p[1]) for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in values:
            column = int((x - x_low) / x_span * (width - 1))
            row = int((transform(y) - y_low) / y_span * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = "10^{:.1f}".format(y_high) if log_y else "{:.3g}".format(y_high)
    y_bottom = "10^{:.1f}".format(y_low) if log_y else "{:.3g}".format(y_low)
    label_width = max(len(y_top), len(y_bottom), len(y_label))
    lines.append("{} |".format(y_top.rjust(label_width)))
    for i, row in enumerate(grid):
        prefix = y_label.rjust(label_width) if i == height // 2 else " " * label_width
        lines.append("{} |{}".format(prefix, "".join(row)))
    lines.append("{} +{}".format(y_bottom.rjust(label_width), "-" * width))
    x_axis = "{}{:<{}} {:>{}}".format(
        " " * (label_width + 2), "{:.3g}".format(x_low),
        width // 2 - 1, "{:.3g} {}".format(x_high, x_label), width // 2,
    )
    lines.append(x_axis)
    for index, name in enumerate(series):
        lines.append("  {} {}".format(_MARKERS[index % len(_MARKERS)], name))
    return "\n".join(lines)
