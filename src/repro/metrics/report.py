"""Plain-text tables for experiment output.

Experiments print the same rows/series the paper's figures plot; a fixed,
dependency-free formatter keeps that output stable and diffable.
"""

__all__ = ["format_table"]


def _cell(value):
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return "{:.0f}".format(value)
        return "{:.3g}".format(value)
    return str(value)


def format_table(headers, rows, title=None):
    """Render ``rows`` (sequences of cells) under ``headers`` as aligned,
    pipe-separated text."""
    table = [[_cell(h) for h in headers]]
    table.extend([_cell(c) for c in row] for row in rows)
    widths = [
        max(len(row[i]) for row in table) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        cell.ljust(width) for cell, width in zip(table[0], widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in table[1:]:
        lines.append(
            " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
