"""Slowdown summaries.

Slowdown — sojourn time divided by un-instrumented service time — is the
paper's primary metric (section 5.1): it lets workloads with wildly
different absolute latencies share one SLO (p99.9 slowdown <= 50x).
"""

from dataclasses import dataclass

from repro import constants
from repro.metrics.percentile import percentile

__all__ = ["SlowdownSummary", "summarize_slowdowns", "check_warmup_frac"]


def check_warmup_frac(warmup_frac):
    """Validate a measurement warmup fraction: ``0.0 <= frac < 1.0``.

    0.0 (keep everything) is legal; 1.0 would discard every sample and is
    almost always a unit-confusion bug (percent vs fraction), so it is
    rejected loudly along with anything negative.  Returns the value so
    accessors can validate inline.
    """
    if not 0.0 <= warmup_frac < 1.0:
        raise ValueError(
            "warmup_frac must be a fraction in [0.0, 1.0), got {!r} "
            "(1.0 or more would discard every sample)".format(warmup_frac)
        )
    return warmup_frac


@dataclass(frozen=True)
class SlowdownSummary:
    """Summary statistics over one run's slowdown samples."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    p999: float
    max: float

    def meets_slo(self, slo=constants.SLOWDOWN_SLO):
        """True when the tail percentile is within the slowdown SLO."""
        return self.p999 <= slo

    def as_dict(self):
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
            "max": self.max,
        }


def summarize_slowdowns(slowdowns):
    """Build a :class:`SlowdownSummary` from raw slowdown samples."""
    if not slowdowns:
        raise ValueError("no slowdown samples to summarize")
    data = sorted(slowdowns)
    return SlowdownSummary(
        count=len(data),
        mean=sum(data) / len(data),
        p50=percentile(data, 50, presorted=True),
        p90=percentile(data, 90, presorted=True),
        p99=percentile(data, 99, presorted=True),
        p999=percentile(data, constants.TAIL_PERCENTILE, presorted=True),
        max=float(data[-1]),
    )
