"""Load sweeps: the x-axis of every "slowdown vs load" figure.

A :class:`LoadSweep` runs one runtime configuration across a grid of offered
loads (fresh server per point, common random numbers across configurations)
and records the tail slowdown at each point.  :func:`knee_load` extracts the
paper's headline number — the maximum load sustained within the SLO — by
interpolating where the tail curve crosses the SLO.
"""

from dataclasses import dataclass
from typing import Optional

from repro import constants
from repro.core.server import Server
from repro.metrics.slowdown import summarize_slowdowns
from repro.workloads.arrivals import PoissonProcess

__all__ = ["SweepPoint", "LoadSweep", "knee_load", "run_sweep_point"]


@dataclass(frozen=True)
class SweepPoint:
    """One (offered load, tail behaviour) sample."""

    load_rps: float
    p50: float
    p99: float
    p999: float
    mean: float
    throughput_rps: float
    dispatcher_utilization: float
    worker_idle_fraction: float
    steals: int
    completed: int


def run_sweep_point(machine, config, workload, load_rps, num_requests,
                    seed=1, warmup_frac=0.1, profile=None,
                    arrival_factory=None):
    """Simulate one (config, offered load) point and return its
    :class:`SweepPoint`.

    This is the unit of work the parallel executor ships to worker
    processes; it is a pure function of its arguments (a fresh server is
    built from ``seed``), which is what makes parallel sweeps bit-identical
    to serial ones.
    """
    factory = arrival_factory or PoissonProcess
    server = Server(machine, config, seed=seed, profile=profile)
    result = server.run(workload, factory(load_rps), num_requests)
    summary = summarize_slowdowns(result.slowdowns(warmup_frac))
    return SweepPoint(
        load_rps=load_rps,
        p50=summary.p50,
        p99=summary.p99,
        p999=summary.p999,
        mean=summary.mean,
        throughput_rps=result.throughput_rps(),
        dispatcher_utilization=result.dispatcher_utilization(),
        worker_idle_fraction=result.worker_idle_fraction(),
        steals=result.dispatcher_stats["steals_started"],
        completed=len(result.records),
    )


class LoadSweep:
    """Sweep offered load for one configuration.

    Parameters
    ----------
    machine, config, workload:
        What to simulate.
    num_requests:
        Arrivals per load point.
    seed:
        Master seed; every load point derives its own streams, and two
        sweeps with the same seed see identical arrival randomness (common
        random numbers).
    warmup_frac:
        Fraction of early samples discarded, as in section 5.1.
    profile:
        Optional instrumentation profile forwarded to probe-based
        preemption mechanisms.
    """

    def __init__(self, machine, config, workload, num_requests=20000, seed=1,
                 warmup_frac=0.1, profile=None, arrival_factory=None):
        self.machine = machine
        self.config = config
        self.workload = workload
        self.num_requests = num_requests
        self.seed = seed
        self.warmup_frac = warmup_frac
        self.profile = profile
        #: Callable rate_rps -> ArrivalProcess; default open-loop Poisson
        #: (section 5.1).  Pass a MarkovModulatedPoisson factory to study
        #: burstier-than-Poisson traffic.
        self.arrival_factory = arrival_factory or PoissonProcess
        self.points = []

    def job(self, load_rps):
        """The picklable :class:`~repro.parallel.SimJob` for one load."""
        from repro.parallel import SimJob

        return SimJob(
            machine=self.machine,
            config=self.config,
            workload=self.workload,
            load_rps=load_rps,
            num_requests=self.num_requests,
            seed=self.seed,
            warmup_frac=self.warmup_frac,
            profile=self.profile,
            arrival_factory=self.arrival_factory,
        )

    def run_point(self, load_rps):
        """Simulate one offered load and append/return its SweepPoint."""
        point = run_sweep_point(
            self.machine, self.config, self.workload, load_rps,
            self.num_requests, seed=self.seed, warmup_frac=self.warmup_frac,
            profile=self.profile, arrival_factory=self.arrival_factory,
        )
        self.points.append(point)
        return point

    def run(self, loads_rps, runner=None):
        """Simulate every load in ``loads_rps`` (ascending recommended).

        With a :class:`~repro.parallel.ParallelRunner`, points are fanned
        out across worker processes (and/or served from the result cache);
        each point is an independent simulation seeded only by
        ``(seed, load)``, so results are bit-identical to the serial path.
        """
        loads_rps = list(loads_rps)
        if runner is None:
            for load in loads_rps:
                self.run_point(load)
        else:
            self.points.extend(runner.map([self.job(l) for l in loads_rps]))
        return self.points

    def knee(self, slo=constants.SLOWDOWN_SLO):
        """Maximum sustained load within the SLO; see :func:`knee_load`."""
        return knee_load(self.points, slo)


def knee_load(points, slo=constants.SLOWDOWN_SLO):
    """The highest offered load whose p99.9 slowdown is within ``slo``,
    linearly interpolated between the last point under the SLO and the
    first point over it.  Returns 0.0 if even the lightest load violates
    the SLO, and the highest measured load if none does.
    """
    ordered = sorted(points, key=lambda p: p.load_rps)
    if not ordered:
        raise ValueError("no sweep points")
    best: Optional[float] = None
    for i, point in enumerate(ordered):
        if point.p999 <= slo:
            best = point.load_rps
            continue
        if best is None:
            return 0.0
        prev = ordered[i - 1]
        # Interpolate the SLO crossing between prev (under) and point (over).
        span = point.p999 - prev.p999
        if span <= 0:
            return point.load_rps
        frac = (slo - prev.p999) / span
        return prev.load_rps + frac * (point.load_rps - prev.load_rps)
    return best if best is not None else 0.0
