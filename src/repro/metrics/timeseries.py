"""Windowed time series over a run's completed requests.

Aggregates per-request samples into fixed-width time windows so bursts,
warmup transients, and queue build-up are visible — the "slowdown over
time" view the load-vs-slowdown figures integrate away.
"""

from repro.metrics.percentile import percentile

__all__ = ["TimeSeries"]


class TimeSeries:
    """Bucket completed requests into fixed windows of simulated time."""

    def __init__(self, window_us, clock):
        if window_us <= 0:
            raise ValueError("window must be positive")
        self.window_us = float(window_us)
        self.clock = clock
        self._window_cycles = clock.us_to_cycles(window_us)
        self._buckets = {}

    @classmethod
    def from_result(cls, result, window_us=1000.0):
        """Build from a SimResult-shaped object."""
        series = cls(window_us, result.clock)
        for record in result.records:
            series.add(record)
        return series

    def add(self, record):
        index = record.completion_cycle // self._window_cycles
        self._buckets.setdefault(index, []).append(record)

    def windows(self):
        """Yield (window_start_us, records) in time order."""
        for index in sorted(self._buckets):
            yield index * self.window_us, self._buckets[index]

    def throughput_series(self):
        """[(window_start_us, completions_per_second)]."""
        return [
            (start, len(records) * 1e6 / self.window_us)
            for start, records in self.windows()
        ]

    def tail_slowdown_series(self, p=99.0):
        """[(window_start_us, p-th percentile slowdown in the window)]."""
        return [
            (start, percentile([r.slowdown() for r in records], p))
            for start, records in self.windows()
        ]

    def peak_to_mean_throughput(self):
        """Burstiness indicator over the observed windows."""
        series = [tp for _start, tp in self.throughput_series()]
        if not series:
            return 0.0
        mean = sum(series) / len(series)
        return max(series) / mean if mean else 0.0

    def __len__(self):
        return len(self._buckets)
