"""Analytical models: the throughput-overhead model of section 2 and
textbook queueing references used to sanity-check the simulator."""

from repro.models.overhead import (
    OverheadBreakdown,
    mechanism_overhead_curve,
    preemption_notification_overhead,
    system_overhead,
    worker_overhead,
)
from repro.models.queueing import mm1_mean_sojourn, mmk_mean_wait, mg1_mean_wait

__all__ = [
    "OverheadBreakdown",
    "mechanism_overhead_curve",
    "preemption_notification_overhead",
    "system_overhead",
    "worker_overhead",
    "mm1_mean_sojourn",
    "mmk_mean_wait",
    "mg1_mean_wait",
]
