"""The analytical throughput-overhead model of section 2 (Eqs. 1-4).

    Overhead_sys = (n * Overhead_w + Overhead_d) / (n + 1)            (1)
    Overhead_w   = (cproc + cpre + cfin) / S                          (2)
    cpre         = floor(S / q) * (cnotif + cswitch + cnext)          (3)
    cfin         = cswitch + cnext                                    (4)

The same model regenerates Fig. 2's mechanism comparison (cnotif/cproc only,
excluding switch and next-request costs, matching the paper's no-op-handler
methodology) and cross-checks the discrete-event simulator in tests.
"""

import math
from dataclasses import dataclass

from repro import constants

__all__ = [
    "OverheadBreakdown",
    "worker_overhead",
    "system_overhead",
    "preemption_notification_overhead",
    "mechanism_overhead_curve",
]


@dataclass(frozen=True)
class OverheadBreakdown:
    """Per-request wasted-cycle components for one worker (Eq. 2)."""

    service_cycles: int
    cproc: float
    cpre: float
    cfin: float

    @property
    def worker_overhead(self):
        return (self.cproc + self.cpre + self.cfin) / self.service_cycles

    @property
    def wasted_cycles(self):
        return self.cproc + self.cpre + self.cfin


def worker_overhead(service_cycles, quantum_cycles, cnotif, cswitch, cnext,
                    proc_fraction=0.0):
    """Eq. 2/3/4: the fraction of a worker's cycles that do not contribute
    to goodput for requests of ``service_cycles``.

    ``proc_fraction`` is cproc as a fraction of service time (runtime
    bookkeeping + instrumentation); ``quantum_cycles=None`` disables
    preemption.
    """
    if service_cycles <= 0:
        raise ValueError("service must be positive, got {}".format(service_cycles))
    cproc = proc_fraction * service_cycles
    if quantum_cycles is None or quantum_cycles <= 0:
        preemptions = 0
    else:
        preemptions = math.floor(service_cycles / quantum_cycles)
        # A request that is an exact multiple of the quantum completes at
        # its final boundary rather than being preempted there.
        if preemptions and service_cycles % quantum_cycles == 0:
            preemptions -= 1
    cpre = preemptions * (cnotif + cswitch + cnext)
    cfin = cswitch + cnext
    return OverheadBreakdown(
        service_cycles=service_cycles, cproc=cproc, cpre=cpre, cfin=cfin
    )


def system_overhead(num_workers, worker_overhead_fraction,
                    dispatcher_overhead=1.0):
    """Eq. 1: blend per-worker overhead with the dispatcher's.

    A dedicated dispatcher contributes Overhead_d = 1 (it never runs
    application logic, section 2.2.3); Concord's work-conserving dispatcher
    lowers that below 1.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    return (
        num_workers * worker_overhead_fraction + dispatcher_overhead
    ) / (num_workers + 1)


def preemption_notification_overhead(mechanism, quantum_us, clock,
                                     service_us=500.0):
    """Fig. 2 methodology: overhead of *only* the preemption mechanism —
    notification disruption plus instrumentation tax — for back-to-back
    ``service_us`` requests with no-op handlers (no context switch, no
    next-request wait).
    """
    service_cycles = clock.us_to_cycles(service_us)
    quantum_cycles = clock.us_to_cycles(quantum_us)
    breakdown = worker_overhead(
        service_cycles,
        quantum_cycles,
        cnotif=mechanism.worker_disruption_cycles,
        cswitch=0,
        cnext=0,
        proc_fraction=mechanism.proc_overhead
        + constants.RUNTIME_PROC_OVERHEAD_FRACTION * 0,
    )
    return breakdown.worker_overhead


def mechanism_overhead_curve(mechanism, quanta_us, clock, service_us=500.0):
    """Overhead percentage at each quantum — one line of Fig. 2 / Fig. 15."""
    return [
        100.0 * preemption_notification_overhead(
            mechanism, quantum, clock, service_us
        )
        for quantum in quanta_us
    ]
