"""Textbook queueing results used to validate the simulator.

With all mechanism costs zeroed (``RuntimeConfig(ideal=True)``) the
simulated server degenerates to an M/G/k queue with a central FIFO; these
closed forms give the expected behaviour the DES must match in tests.
"""

__all__ = ["mm1_mean_sojourn", "mmk_erlang_c", "mmk_mean_wait", "mg1_mean_wait"]


def mm1_mean_sojourn(arrival_rate, service_rate):
    """Mean sojourn time in an M/M/1 queue: 1 / (mu - lambda)."""
    if service_rate <= arrival_rate:
        raise ValueError(
            "unstable queue: lambda={} >= mu={}".format(arrival_rate, service_rate)
        )
    return 1.0 / (service_rate - arrival_rate)


def mmk_erlang_c(arrival_rate, service_rate, servers):
    """Erlang-C: probability an arrival waits in an M/M/k queue."""
    if servers < 1:
        raise ValueError("need at least one server")
    offered = arrival_rate / service_rate
    rho = offered / servers
    if rho >= 1.0:
        raise ValueError("unstable queue: rho={:.3f}".format(rho))
    # Sum_{i<k} a^i/i!  and the waiting term a^k/(k! (1-rho)).
    total = 0.0
    term = 1.0
    for i in range(servers):
        if i > 0:
            term *= offered / i
        total += term
    wait_term = term * offered / servers / (1.0 - rho)
    return wait_term / (total + wait_term)


def mmk_mean_wait(arrival_rate, service_rate, servers):
    """Mean queueing delay (excluding service) in an M/M/k queue."""
    pw = mmk_erlang_c(arrival_rate, service_rate, servers)
    return pw / (servers * service_rate - arrival_rate)


def mg1_mean_wait(arrival_rate, mean_service, scv):
    """Pollaczek-Khinchine mean wait for M/G/1 with squared coefficient of
    variation ``scv`` of the service distribution."""
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        raise ValueError("unstable queue: rho={:.3f}".format(rho))
    return rho * mean_service * (1.0 + scv) / (2.0 * (1.0 - rho))
