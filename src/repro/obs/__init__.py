"""Observability layer: probe bus, telemetry registry, flight recorder,
span reconstruction, and trace exporters.

The runtime half (:mod:`~repro.obs.events`, :mod:`~repro.obs.bus`,
:mod:`~repro.obs.registry`, :mod:`~repro.obs.recorder`,
:mod:`~repro.obs.session`, :mod:`~repro.obs.spans`) is sim-pure — it
stamps simulated time only and schedules nothing, so instrumented runs
are bit-identical to bare ones.  The export half
(:mod:`~repro.obs.export`) does the io, strictly after runs finish.
See ``docs/observability.md``.
"""

from repro.obs.bus import ProbeBus
from repro.obs.events import EVENT_KINDS, REQUEST_LIFECYCLE_KINDS, ProbeEvent
from repro.obs.export import (
    chrome_trace,
    tail_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import Counter, Gauge, Series, TelemetryRegistry
from repro.obs.session import (
    TraceConfig,
    TraceSession,
    active_session,
    resolve_probes,
    tracing,
)
from repro.obs.spans import ExecSlice, RequestSpan, build_spans

__all__ = [
    "ProbeBus",
    "ProbeEvent",
    "EVENT_KINDS",
    "REQUEST_LIFECYCLE_KINDS",
    "FlightRecorder",
    "Counter",
    "Gauge",
    "Series",
    "TelemetryRegistry",
    "TraceConfig",
    "TraceSession",
    "tracing",
    "active_session",
    "resolve_probes",
    "ExecSlice",
    "RequestSpan",
    "build_spans",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "tail_report",
]
