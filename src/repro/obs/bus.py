"""The probe bus: typed observation points the simulation emits into.

A :class:`ProbeBus` is the single object a server (or the rack balancer)
talks to while instrumented.  Components hold a ``probes`` attribute that
is ``None`` by default and guard every probe site with ``if probes is not
None`` — so the uninstrumented hot path costs one attribute load and a
falsy check per site, and the engine drain loop is not touched at all
(``benchmarks/test_bench_obs.py`` pins the overhead).

The bus fans each probe out three ways:

* an in-order **event log** (when ``record_events`` is on),
* the bounded **flight recorder** ring (when attached),
* the **telemetry registry** counters, plus piggybacked sim-time sampling
  of per-worker queue depth / busy state every ``sample_interval`` cycles.

Everything is keyed off simulated time and request/worker ids — the bus
never reads the wall clock, never does io, and never perturbs the
simulation (it schedules nothing and mutates no simulation state), which
is what keeps instrumented runs bit-identical to bare ones.
"""

from repro.obs import events as ev
from repro.obs.events import ProbeEvent
from repro.obs.registry import TelemetryRegistry

__all__ = ["ProbeBus"]


class ProbeBus:
    """Collects probe events for one server (or balancer); see module doc."""

    def __init__(self, label="server", record_events=True, recorder=None,
                 registry=None, sample_interval=0, engine_events=False):
        #: Human-readable name; becomes the process name in Chrome traces.
        self.label = label
        self.record_events = record_events
        #: Whether the owner should attach :meth:`sim_event` as the
        #: engine's per-event hook (raw feed; opt-in).
        self.engine_events = engine_events
        self.events = []
        self.recorder = recorder
        self.registry = registry if registry is not None else TelemetryRegistry()
        #: Sampling period in cycles (0 disables sampling).  Samples are
        #: taken opportunistically at probe instants, never via scheduled
        #: events, so sampling cannot change the event sequence.
        self.sample_interval = sample_interval
        self._next_sample = sample_interval if sample_interval else None
        self._server = None
        #: Clock used by exporters to render cycle stamps in microseconds;
        #: set by :meth:`bind_server` (or by the session when minting).
        self.clock = None
        #: Requests delivered but not completed, in arrival order (a dict,
        #: not a set: iteration order must be deterministic).
        self._inflight = {}

    # -- attachment ---------------------------------------------------------

    def bind_server(self, server):
        """Point the bus at the server whose workers it samples."""
        self._server = server
        self.clock = server.clock
        return self

    # -- core fan-out -------------------------------------------------------

    def _emit(self, event):
        if self.record_events:
            self.events.append(event)
        recorder = self.recorder
        if recorder is not None:
            recorder.record(event)
        t = event.t
        nxt = self._next_sample
        if nxt is not None and t >= nxt:
            self._sample(t)
            every = self.sample_interval
            self._next_sample = ((t // every) + 1) * every

    def _sample(self, t):
        server = self._server
        if server is None:
            return
        registry = self.registry
        registry.sample("server.inflight", t, server.inflight)
        for worker in server.workers:
            wid = worker.wid
            registry.sample(
                "worker.{}.outstanding".format(wid), t, worker.outstanding
            )
            registry.sample(
                "worker.{}.busy".format(wid), t,
                0 if worker.is_idle else 1,
            )

    # -- request lifecycle probes ------------------------------------------

    def request_arrival(self, t, request):
        self.registry.count("requests.arrived")
        self._inflight[request.rid] = request
        self._emit(ProbeEvent(
            t, ev.ARRIVAL, rid=request.rid,
            data={"request_kind": request.kind,
                  "service_cycles": request.service_cycles},
        ))

    def request_enqueued(self, t, request, requeued=False):
        self.registry.count(
            "queue.requeues" if requeued else "queue.pushes"
        )
        self._emit(ProbeEvent(
            t, ev.ENQUEUE, rid=request.rid,
            data={"requeued": requeued} if requeued else None,
        ))

    def request_dispatched(self, t, request, wid):
        self.registry.count("requests.dispatched")
        self._emit(ProbeEvent(t, ev.DISPATCH, rid=request.rid, wid=wid))

    def request_started(self, t, request, wid, run_start, resumed):
        self.registry.count(
            "requests.resumed" if resumed else "requests.started"
        )
        self._emit(ProbeEvent(
            t, ev.START, rid=request.rid, wid=wid,
            data={"run_start": run_start, "resumed": resumed},
        ))

    def request_preempted(self, t, request, wid):
        self.registry.count("requests.preempted")
        self._emit(ProbeEvent(
            t, ev.PREEMPT, rid=request.rid, wid=wid,
            data={"preemptions": request.preemptions},
        ))

    def request_completed(self, t, request):
        self.registry.count("requests.completed")
        self._inflight.pop(request.rid, None)
        slowdown = request.slowdown()
        wid = None if request.started_by_dispatcher else request.last_worker
        self._emit(ProbeEvent(
            t, ev.COMPLETE, rid=request.rid, wid=wid,
            data={
                "slowdown": slowdown,
                "preemptions": request.preemptions,
                "stolen": request.started_by_dispatcher,
            },
        ))
        recorder = self.recorder
        if recorder is not None:
            if recorder.maybe_trigger(t, request.rid, slowdown):
                self.registry.count("flight.triggers")

    # -- dispatcher probes --------------------------------------------------

    def dispatcher_action(self, t, name, cost):
        self.registry.count("dispatcher.actions.{}".format(name))
        self._emit(ProbeEvent(t, ev.ACTION, data={"name": name,
                                                  "cost": cost}))

    def steal_started(self, t, request, exec_start, completes):
        self.registry.count("steals.slices")
        self._emit(ProbeEvent(
            t, ev.STEAL, rid=request.rid,
            data={"exec_start": exec_start, "completes": completes},
        ))

    def steal_paused(self, t, request):
        self.registry.count("steals.pauses")
        self._emit(ProbeEvent(t, ev.STEAL_PAUSE, rid=request.rid))

    # -- worker probes ------------------------------------------------------

    def worker_went_idle(self, t, wid):
        self.registry.count("workers.idle_transitions")
        self._emit(ProbeEvent(t, ev.WORKER_IDLE, wid=wid))

    # -- rack probes --------------------------------------------------------

    def request_routed(self, t, request, server_index):
        self.registry.count("balancer.routed")
        self._emit(ProbeEvent(
            t, ev.ROUTE, rid=request.rid,
            data={"server": server_index},
        ))

    def reply_received(self, t, rid, server_index):
        self.registry.count("balancer.replies")
        self._emit(ProbeEvent(
            t, ev.REPLY, rid=rid, data={"server": server_index},
        ))

    # -- fault / resilience probes ------------------------------------------

    def server_crashed(self, t, server_index, lost):
        self.registry.count("faults.crashes")
        self._emit(ProbeEvent(
            t, ev.CRASH, data={"server": server_index, "lost": lost},
        ))

    def server_recovered(self, t, server_index):
        self.registry.count("faults.recoveries")
        self._emit(ProbeEvent(
            t, ev.RECOVER, data={"server": server_index},
        ))

    def request_retried(self, t, rid, attempt, server_index):
        self.registry.count("resilience.retries")
        self._emit(ProbeEvent(
            t, ev.RETRY, rid=rid,
            data={"attempt": attempt, "server": server_index},
        ))

    def request_hedged(self, t, rid, server_index):
        self.registry.count("resilience.hedges")
        self._emit(ProbeEvent(
            t, ev.HEDGE, rid=rid, data={"server": server_index},
        ))

    def request_shed(self, t, rid):
        self.registry.count("resilience.shed")
        self._emit(ProbeEvent(t, ev.SHED, rid=rid))

    # -- raw engine events --------------------------------------------------

    def sim_event(self, t, name):
        """Sink for the engine's per-event hook (voluminous; opt-in)."""
        self.registry.count("engine.events")
        self._emit(ProbeEvent(t, ev.SIM, data={"name": name}))

    # -- end of run ---------------------------------------------------------

    def finalize_run(self, server):
        """Absorb end-of-run engine/agent introspection into the registry
        and mark still-in-flight requests as dropped."""
        sim = server.sim
        t = sim.now
        registry = self.registry
        registry.record("engine.events_run", sim.events_run)
        registry.record("engine.events_cancelled", sim.events_cancelled)
        registry.record("engine.heap_size", sim.heap_size)
        registry.record("engine.dead_in_heap", sim.dead_in_heap)
        registry.record("engine.compactions", sim.compactions)
        d = server.dispatcher
        registry.record("dispatcher.busy_cycles", d.busy_cycles)
        registry.record("dispatcher.signals_sent", d.signals_sent)
        registry.record("dispatcher.stale_signals_skipped",
                        d.stale_signals_skipped)
        registry.record("dispatcher.steals_started", d.steals_started)
        registry.record("dispatcher.steal_completions", d.steal_completions)
        for worker in server.workers:
            prefix = "worker.{}.".format(worker.wid)
            registry.record(prefix + "idle_cycles", worker.idle_cycles)
            registry.record(prefix + "busy_cycles", worker.busy_cycles)
            registry.record(prefix + "work_cycles", worker.work_cycles)
            registry.record(prefix + "preemptions",
                            worker.preemptions_taken)
            registry.record(prefix + "completed",
                            worker.requests_completed)
        for rid in list(self._inflight):
            request = self._inflight.pop(rid)
            self.registry.count("requests.dropped")
            self._emit(ProbeEvent(
                t, ev.DROP, rid=rid,
                data={"remaining_cycles": request.remaining_cycles},
            ))

    def __repr__(self):
        return "ProbeBus({!r}, events={}, recorder={})".format(
            self.label, len(self.events), self.recorder is not None
        )
