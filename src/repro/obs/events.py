"""Typed probe events: the vocabulary of the observability layer.

Every probe the simulation emits is a :class:`ProbeEvent` — a flat,
allocation-cheap record stamped with **simulated** time (integer cycles)
and keyed by stable identifiers (request id, worker id).  Nothing here may
touch the wall clock, the filesystem, or process-global randomness: probe
events ride inside the simulation and the repro-san purity certificate
covers them (see ``docs/determinism.md``).

The request lifecycle is::

    ARRIVAL -> ENQUEUE -> DISPATCH -> START -> (PREEMPT -> ENQUEUE -> ...)*
            -> COMPLETE

with two side branches: the work-conserving dispatcher's ``STEAL`` /
``STEAL_PAUSE`` slices (section 3.3 of the paper) and ``DROP`` for
requests abandoned by a hard ``until_us`` stop.  ``WORKER_IDLE``,
``ACTION``, ``ROUTE``, ``REPLY``, and ``SIM`` cover worker, dispatcher,
balancer, and raw-engine state transitions.
"""

__all__ = [
    "ProbeEvent",
    "ARRIVAL",
    "ENQUEUE",
    "DISPATCH",
    "START",
    "PREEMPT",
    "STEAL",
    "STEAL_PAUSE",
    "COMPLETE",
    "DROP",
    "WORKER_IDLE",
    "ACTION",
    "ROUTE",
    "REPLY",
    "SIM",
    "CRASH",
    "RECOVER",
    "RETRY",
    "HEDGE",
    "SHED",
    "REQUEST_LIFECYCLE_KINDS",
    "EVENT_KINDS",
]

#: A request reached the server (the ``deliver`` seam).
ARRIVAL = "arrival"
#: The dispatcher pushed the request into the central queue (new or
#: preempted re-entry).
ENQUEUE = "enqueue"
#: The dispatcher's push action landed the request on a worker.
DISPATCH = "dispatch"
#: A worker began (or resumed) executing the request.
START = "start"
#: The request was preempted off its worker and yielded.
PREEMPT = "preempt"
#: The work-conserving dispatcher began a stolen execution slice.
STEAL = "steal"
#: The dispatcher paused its stolen slice to service other stimuli.
STEAL_PAUSE = "steal-pause"
#: The request finished (on a worker or in the dispatcher's steal buffer).
COMPLETE = "complete"
#: The run ended (``until_us``) with the request still in flight.
DROP = "drop"
#: A worker went idle (no local work; told the dispatcher).
WORKER_IDLE = "worker-idle"
#: One serialized dispatcher micro-action (d-rx, d-push, d-signal, ...).
ACTION = "action"
#: The rack balancer routed a request to a server.
ROUTE = "route"
#: A completion's reply landed back at the balancer.
REPLY = "reply"
#: A raw engine event fired (the deprecated ``trace`` callback's view).
SIM = "sim"
#: The fault injector crashed a server (data: server, lost count).
CRASH = "crash"
#: A crashed server came back up.
RECOVER = "recover"
#: The resilience manager re-launched a timed-out logical request.
RETRY = "retry"
#: The resilience manager launched a hedged duplicate attempt.
HEDGE = "hedge"
#: Admission control shed an arrival before routing.
SHED = "shed"

#: Kinds that carry a request id and together form one request's span.
#: RETRY/HEDGE/SHED deliberately stay out: they are balancer-lane events
#: about *logical* requests, not stations on one server-side span — span
#: assembly ignores unknown kinds by design, so traces stay well-formed.
REQUEST_LIFECYCLE_KINDS = (
    ARRIVAL, ENQUEUE, DISPATCH, START, PREEMPT, STEAL, STEAL_PAUSE,
    COMPLETE, DROP,
)

#: Every kind a :class:`ProbeEvent` may carry.
EVENT_KINDS = REQUEST_LIFECYCLE_KINDS + (
    WORKER_IDLE, ACTION, ROUTE, REPLY, SIM,
    CRASH, RECOVER, RETRY, HEDGE, SHED,
)


class ProbeEvent:
    """One observation: ``(t, kind, rid, wid, data)``.

    ``t`` is simulated cycles; ``rid``/``wid`` are None when the event is
    not about a specific request/worker; ``data`` is an optional dict of
    kind-specific details (service cycles, run-start cycle, ...).
    """

    __slots__ = ("t", "kind", "rid", "wid", "data")

    def __init__(self, t, kind, rid=None, wid=None, data=None):
        self.t = t
        self.kind = kind
        self.rid = rid
        self.wid = wid
        self.data = data

    def key(self):
        """A plain tuple capturing the full event (tests compare these)."""
        data = None
        if self.data is not None:
            data = tuple(sorted(self.data.items()))
        return (self.t, self.kind, self.rid, self.wid, data)

    def to_dict(self):
        out = {"t": self.t, "kind": self.kind}
        if self.rid is not None:
            out["rid"] = self.rid
        if self.wid is not None:
            out["wid"] = self.wid
        if self.data:
            out.update(self.data)
        return out

    def __eq__(self, other):
        if not isinstance(other, ProbeEvent):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        extra = ""
        if self.rid is not None:
            extra += ", rid={}".format(self.rid)
        if self.wid is not None:
            extra += ", wid={}".format(self.wid)
        if self.data:
            extra += ", {!r}".format(self.data)
        return "ProbeEvent(t={}, kind={!r}{})".format(self.t, self.kind, extra)
