"""Exporters: Chrome trace JSON, JSONL span dumps, and text tail reports.

This is the only observability module that touches the filesystem; it
runs strictly *after* a simulation finishes, so the purity certificate
over the sim-reachable closure is unaffected (see ``docs/determinism.md``).

The Chrome format is the ``trace_event`` JSON object form understood by
``chrome://tracing`` and https://ui.perfetto.dev: one process per probe
bus (a server or the rack balancer), thread 0 for the dispatcher's
actions and steal slices, thread ``wid + 1`` per worker, complete ("X")
events per execution slice with microsecond timestamps, and counter
("C") tracks for the sampled series.  :func:`validate_chrome_trace` is
the schema check CI runs against emitted files.
"""

import json

from repro.obs.spans import build_spans

__all__ = [
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "tail_report",
]

#: Chrome trace_event phases this exporter emits.
_PHASES = ("X", "M", "C")


def _slice_name(span):
    if span.kind is not None:
        return "r{} ({})".format(span.rid, span.kind)
    return "r{}".format(span.rid)


def chrome_trace(buses, clock, include_counters=True):
    """Build a Chrome ``trace_event`` JSON object from probe buses.

    ``clock`` converts cycle stamps to the microseconds the format wants;
    pass the machine clock the traced run used.
    """
    trace_events = []
    for pid, bus in enumerate(buses):
        trace_events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": bus.label},
        })
        trace_events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "thread_name",
            "args": {"name": "dispatcher"},
        })
        spans = build_spans(bus.events)
        wids = sorted({
            s.wid
            for span in spans
            for s in span.slices
            if s.wid is not None
        })
        for wid in wids:
            trace_events.append({
                "ph": "M", "pid": pid, "tid": wid + 1,
                "name": "thread_name",
                "args": {"name": "worker-{}".format(wid)},
            })
        for span in spans:
            for s in span.slices:
                if s.end is None or s.end <= s.start:
                    continue
                tid = 0 if s.stolen else s.wid + 1
                args = {"rid": span.rid, "preemptions": span.preemptions}
                if span.slowdown is not None:
                    args["slowdown"] = round(span.slowdown, 3)
                if s.stolen:
                    args["stolen"] = True
                trace_events.append({
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "name": _slice_name(span),
                    "cat": "request",
                    "ts": clock.cycles_to_us(s.start),
                    "dur": clock.cycles_to_us(s.end - s.start),
                    "args": args,
                })
        if include_counters:
            for name, series in bus.registry.series.items():
                for t, value in series.samples:
                    trace_events.append({
                        "ph": "C",
                        "pid": pid,
                        "tid": 0,
                        "name": name,
                        "ts": clock.cycles_to_us(t),
                        "args": {"value": value},
                    })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "concord-repro"},
    }


def validate_chrome_trace(payload):
    """Structural schema check for an emitted Chrome trace.

    Raises :class:`ValueError` on the first violation; returns the number
    of ``traceEvents`` when the payload is well-formed.  This is what the
    CI ``obs-smoke`` job runs against the artifact.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        raise ValueError("traceEvents must be a list")
    for index, event in enumerate(trace_events):
        where = "traceEvents[{}]".format(index)
        if not isinstance(event, dict):
            raise ValueError("{} is not an object".format(where))
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError(
                "{}: unknown phase {!r}".format(where, phase)
            )
        if not isinstance(event.get("name"), str):
            raise ValueError("{}: missing name".format(where))
        if not isinstance(event.get("pid"), int):
            raise ValueError("{}: missing integer pid".format(where))
        if phase in ("X", "C"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(
                    "{}: ts must be a non-negative number".format(where)
                )
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    "{}: dur must be a non-negative number".format(where)
                )
            if not isinstance(event.get("tid"), int):
                raise ValueError("{}: missing integer tid".format(where))
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(
                    "{}: counter events need non-empty args".format(where)
                )
    return len(trace_events)


def write_chrome_trace(path, payload):
    """Validate and write a Chrome trace JSON file."""
    validate_chrome_trace(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.write("\n")


def write_spans_jsonl(path, spans):
    """Dump spans as one JSON object per line (machine-diffable)."""
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")


def _format_timeline(span, clock):
    """Per-span event rows, microseconds relative to the span anchor."""
    anchor = span.start_cycle
    rows = []

    def add(t, text):
        rows.append((t, "    t=+{:9.2f}us  {}".format(
            clock.cycles_to_us(t - anchor), text
        )))

    if span.routed is not None:
        add(span.routed, "routed by balancer")
    if span.arrival is not None:
        add(span.arrival, "arrival at server")
    for t in span.queue_times:
        add(t, "entered central queue")
    for s in span.slices:
        where = "dispatcher (steal)" if s.stolen else "worker {}".format(s.wid)
        if s.end is not None:
            add(s.start, "ran on {} for {:.2f}us".format(
                where, clock.cycles_to_us(s.end - s.start)
            ))
        else:
            add(s.start, "started on {} (slice unclosed)".format(where))
    if span.completion is not None:
        add(span.completion, "complete (slowdown {:.1f}x)".format(
            span.slowdown if span.slowdown is not None else float("nan")
        ))
    if span.dropped:
        add(span.end_cycle, "DROPPED at end of run")
    rows.sort(key=lambda row: row[0])
    return [text for _t, text in rows]


def tail_report(spans, clock, k=10):
    """Text report naming the top-``k`` tail requests with timelines."""
    completed = [s for s in spans if s.slowdown is not None]
    completed.sort(key=lambda s: (-s.slowdown, s.rid))
    top = completed[:k]
    dropped = [s for s in spans if s.dropped]
    lines = [
        "Top {} tail requests (of {} completed, {} dropped):".format(
            len(top), len(completed), len(dropped)
        )
    ]
    for span in top:
        service = ""
        if span.service_cycles is not None:
            service = " service={:.2f}us".format(
                clock.cycles_to_us(span.service_cycles)
            )
        lines.append(
            "  rid={} kind={!r} slowdown={:.1f}x{} preemptions={}{}".format(
                span.rid, span.kind, span.slowdown, service,
                span.preemptions, " stolen" if span.stolen else "",
            )
        )
        lines.extend(_format_timeline(span, clock))
    if dropped:
        lines.append("  in-flight at end of run: {}".format(
            ", ".join("rid={}".format(s.rid) for s in dropped[:k])
        ))
    return "\n".join(lines)
