"""Flight recorder: a bounded ring of recent probe events plus triggers.

Recording whole runs is expensive and usually pointless — the interesting
requests are the handful in the tail.  The flight recorder keeps only the
last ``capacity`` events in a ring buffer and, when a *trigger* fires
(a request completing with slowdown above a threshold), snapshots the
ring into a bounded list of captures.  This gives "the last N events of
context around every tail anomaly" without unbounded memory.

Triggers are evaluated on completion probes only, using quantities that
are pure functions of the simulation (sim time, request ids, cycle
counts), so a flight-recorder-only run is bit-identical to an untraced
one (``tests/test_obs.py`` enforces this differentially).
"""

from collections import deque

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Ring buffer of :class:`~repro.obs.events.ProbeEvent` with triggers.

    Parameters
    ----------
    capacity:
        Maximum number of events retained in the ring at any instant.
    slowdown_trigger:
        Capture the ring whenever a request completes with
        ``slowdown >= slowdown_trigger``.  ``None`` disables triggering
        (the recorder then only offers :meth:`tail` for manual inspection).
    max_captures:
        Upper bound on retained captures; later triggers beyond the bound
        only bump ``triggers_fired`` so the memory stays bounded.
    """

    __slots__ = ("capacity", "slowdown_trigger", "max_captures",
                 "_ring", "captures", "triggers_fired", "events_seen")

    def __init__(self, capacity=512, slowdown_trigger=None, max_captures=32):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.slowdown_trigger = slowdown_trigger
        self.max_captures = max_captures
        self._ring = deque(maxlen=capacity)
        self.captures = []
        self.triggers_fired = 0
        self.events_seen = 0

    def record(self, event):
        """Append one probe event to the ring."""
        self.events_seen += 1
        self._ring.append(event)

    def maybe_trigger(self, t, rid, slowdown):
        """Evaluate the slowdown trigger for a just-completed request."""
        threshold = self.slowdown_trigger
        if threshold is None or slowdown < threshold:
            return False
        self.triggers_fired += 1
        if len(self.captures) < self.max_captures:
            self.captures.append({
                "rid": rid,
                "t": t,
                "slowdown": slowdown,
                "events": list(self._ring),
            })
        return True

    def tail(self):
        """The current ring contents, oldest first."""
        return list(self._ring)

    def __len__(self):
        return len(self._ring)

    def __repr__(self):
        return (
            "FlightRecorder(capacity={}, seen={}, captures={}, "
            "triggers={})".format(self.capacity, self.events_seen,
                                  len(self.captures), self.triggers_fired)
        )
