"""Telemetry registry: named counters, gauges, and sim-time series.

One :class:`TelemetryRegistry` rides along with each probe bus and holds
the run's aggregate instruments:

* **counters** — monotonically increasing event tallies (arrivals,
  dispatches, preemptions, steals, completions, cache hits, ...);
* **gauges** — last-value observations (engine heap size, dead entries,
  compactions — the introspection counters :class:`~repro.sim.engine.Simulator`
  grew in PR 4 land here at end of run);
* **series** — ``(sim_cycle, value)`` samples appended at deterministic
  simulated instants (per-worker utilization and queue depth).  Series are
  stamped with *simulated* time only; sampling is piggybacked on probe
  emissions rather than scheduled on the event heap, so an instrumented
  run executes the exact same event sequence as a bare one (the
  differential tests in ``tests/test_obs.py`` pin this).

Everything in this module is pure in the repro-san sense: no clock, no
filesystem, no ambient environment — the registry may be populated from
inside a simulation without breaking the purity certificate.
"""

__all__ = ["Counter", "Gauge", "Series", "TelemetryRegistry"]


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def __repr__(self):
        return "Counter({}={})".format(self.name, self.value)


class Gauge:
    """A last-value observation."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value

    def __repr__(self):
        return "Gauge({}={})".format(self.name, self.value)


class Series:
    """An append-only list of ``(sim_cycle, value)`` samples."""

    __slots__ = ("name", "samples")

    def __init__(self, name):
        self.name = name
        self.samples = []

    def append(self, t, value):
        self.samples.append((t, value))

    def __len__(self):
        return len(self.samples)

    def __repr__(self):
        return "Series({}, n={})".format(self.name, len(self.samples))


class TelemetryRegistry:
    """Get-or-create registry of named instruments.

    Instruments are stored in insertion order (plain dicts), so two runs
    that emit the same probes produce byte-identical snapshots.
    """

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.series = {}

    # -- get-or-create ------------------------------------------------------

    def counter(self, name):
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name):
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def time_series(self, name):
        instrument = self.series.get(name)
        if instrument is None:
            instrument = self.series[name] = Series(name)
        return instrument

    # -- convenience writers ------------------------------------------------

    def count(self, name, n=1):
        self.counter(name).inc(n)

    def record(self, name, value):
        self.gauge(name).set(value)

    def sample(self, name, t, value):
        self.time_series(name).append(t, value)

    # -- export -------------------------------------------------------------

    def snapshot(self):
        """A JSON-ready dict of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in self.counters.items()
            },
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "series": {
                name: [[t, v] for t, v in s.samples]
                for name, s in self.series.items()
            },
        }

    def merge_counts(self, other):
        """Fold another registry's counters into this one (used to pool
        per-run telemetry into a session-wide view)."""
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)

    def __repr__(self):
        return "TelemetryRegistry(counters={}, gauges={}, series={})".format(
            len(self.counters), len(self.gauges), len(self.series)
        )
