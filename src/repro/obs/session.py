"""Trace sessions: ambient wiring from "trace this run" to probe buses.

A :class:`TraceSession` is the per-process container for one traced
execution: it holds the :class:`TraceConfig`, mints one
:class:`~repro.obs.bus.ProbeBus` per instrumented component (each server
in a rack gets its own, plus one for the balancer), and collects them for
export.  Sessions are installed ambiently with :func:`tracing`::

    with tracing(TraceConfig.full()) as session:
        result = server.run(workload, arrival, 20000)
    payload = chrome_trace(session.buses, server.clock)

Components discover the active session through :func:`resolve_probes`
(called from ``Server.__init__``): no session -> ``probes`` stays ``None``
and every probe site short-circuits on one falsy check.  The ambient
global is process-local by design — traced runs execute serially
in-process (the CLI disables the parallel runner for them), so worker
processes of a :class:`~repro.parallel.runner.ParallelRunner` never
observe a session and cached/parallel results stay trace-free.
"""

from contextlib import contextmanager
from dataclasses import dataclass

from repro import constants
from repro.obs.bus import ProbeBus
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import TelemetryRegistry

__all__ = [
    "TraceConfig",
    "TraceSession",
    "tracing",
    "active_session",
    "resolve_probes",
]


@dataclass(frozen=True)
class TraceConfig:
    """What to capture during a traced run.

    ``record_events`` keeps the full in-order event log (timeline export
    needs it); ``flight_capacity`` > 0 attaches a bounded
    :class:`~repro.obs.recorder.FlightRecorder` whose ``slowdown_trigger``
    snapshots the ring around tail completions; ``engine_events`` opts
    into the raw per-event engine feed (voluminous); a positive
    ``sample_interval_us`` samples per-worker queue depth/busy state at
    that simulated period (piggybacked on probe instants — never via
    scheduled events).
    """

    record_events: bool = True
    engine_events: bool = False
    flight_capacity: int = 0
    slowdown_trigger: float = constants.SLOWDOWN_SLO
    max_captures: int = 32
    sample_interval_us: float = 0.0
    #: Full event logs are kept for at most this many buses per session
    #: (later runs keep counters + flight recorder only), bounding trace
    #: memory when a whole experiment sweep runs under one session.
    #: ``None`` removes the bound.
    max_recorded_runs: int = 8

    @classmethod
    def full(cls, sample_interval_us=25.0, flight_capacity=512,
             slowdown_trigger=constants.SLOWDOWN_SLO):
        """Everything on: event log, flight recorder, sampling."""
        return cls(
            record_events=True,
            flight_capacity=flight_capacity,
            slowdown_trigger=slowdown_trigger,
            sample_interval_us=sample_interval_us,
        )

    @classmethod
    def flight_only(cls, capacity=512,
                    slowdown_trigger=constants.SLOWDOWN_SLO):
        """Ring buffer + triggers only; no full event log (bounded memory
        for long runs)."""
        return cls(
            record_events=False,
            flight_capacity=capacity,
            slowdown_trigger=slowdown_trigger,
        )


class TraceSession:
    """One traced execution: a config plus the buses it minted."""

    def __init__(self, config=None):
        self.config = config if config is not None else TraceConfig()
        self.buses = []
        #: Session-wide registry (e.g. runner job telemetry folds in here).
        self.telemetry = TelemetryRegistry()

    def make_bus(self, label, clock=None):
        """Mint a bus configured per the session; labels are made unique
        (``concord``, ``concord#1``, ...) so rack members stay distinct."""
        config = self.config
        clashes = sum(
            1 for bus in self.buses
            if bus.label == label or bus.label.startswith(label + "#")
        )
        if clashes:
            label = "{}#{}".format(label, clashes)
        record_events = config.record_events
        if record_events and config.max_recorded_runs is not None:
            already = sum(1 for bus in self.buses if bus.record_events)
            if already >= config.max_recorded_runs:
                record_events = False
        recorder = None
        if config.flight_capacity > 0:
            recorder = FlightRecorder(
                capacity=config.flight_capacity,
                slowdown_trigger=config.slowdown_trigger,
                max_captures=config.max_captures,
            )
        interval = 0
        if clock is not None and config.sample_interval_us > 0:
            interval = clock.us_to_cycles(config.sample_interval_us)
        bus = ProbeBus(
            label,
            record_events=record_events,
            recorder=recorder,
            sample_interval=interval,
            engine_events=config.engine_events,
        )
        bus.clock = clock
        self.buses.append(bus)
        return bus

    def merged_counters(self):
        """Counters summed across every bus plus the session registry."""
        merged = TelemetryRegistry()
        for bus in self.buses:
            merged.merge_counts(bus.registry)
        merged.merge_counts(self.telemetry)
        return merged

    def __repr__(self):
        return "TraceSession(buses={}, config={!r})".format(
            len(self.buses), self.config
        )


_ACTIVE = None


def active_session():
    """The ambient :class:`TraceSession`, or None when untraced."""
    return _ACTIVE


@contextmanager
def tracing(config=None):
    """Install a :class:`TraceSession` ambiently for the ``with`` body."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a trace session is already active")
    session = TraceSession(config)
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None


def resolve_probes(server, probes):
    """The seam ``Server.__init__`` calls: explicit bus, ambient session,
    or None (the zero-overhead default)."""
    if probes is not None:
        return probes.bind_server(server)
    session = _ACTIVE
    if session is None:
        return None
    bus = session.make_bus(server.config.name, clock=server.clock)
    return bus.bind_server(server)
