"""Request spans: per-request timelines reconstructed from probe events.

A :class:`RequestSpan` folds one request's lifecycle events into a
timeline: arrival, queueing instants, execution *slices* (each a
``(start, end, wid, stolen)`` interval — one per worker occupancy or
dispatcher steal slice), and completion.  :func:`build_spans` performs
the fold over any in-order event sequence, including the *partial*
sequences a flight-recorder capture yields (a ring that starts mid-life
simply produces a span with a missing arrival or an unclosed slice —
never an error), so the same code renders full traces and tail captures.
"""

from repro.obs import events as ev

__all__ = ["ExecSlice", "RequestSpan", "build_spans"]


class ExecSlice:
    """One contiguous execution interval of a request."""

    __slots__ = ("start", "end", "wid", "stolen")

    def __init__(self, start, wid=None, stolen=False):
        self.start = start
        self.end = None
        self.wid = wid
        self.stolen = stolen

    def to_dict(self):
        return {
            "start": self.start,
            "end": self.end,
            "wid": self.wid,
            "stolen": self.stolen,
        }

    def __repr__(self):
        where = "dispatcher" if self.stolen else "w{}".format(self.wid)
        return "ExecSlice({}..{} on {})".format(self.start, self.end, where)


class RequestSpan:
    """Everything observed about one request, in timeline form."""

    __slots__ = (
        "rid", "kind", "arrival", "service_cycles", "completion",
        "slowdown", "preemptions", "dropped", "stolen", "slices",
        "queue_times", "routed", "first_seen",
    )

    def __init__(self, rid, first_seen):
        self.rid = rid
        self.kind = None
        self.arrival = None
        self.service_cycles = None
        self.completion = None
        self.slowdown = None
        self.preemptions = 0
        self.dropped = False
        self.stolen = False
        self.slices = []
        #: Instants the request (re-)entered the central queue.
        self.queue_times = []
        #: Balancer routing instant (rack traces only).
        self.routed = None
        #: First event timestamp — the span's anchor when the arrival was
        #: not captured (flight-recorder rings start mid-life).
        self.first_seen = first_seen

    @property
    def start_cycle(self):
        if self.routed is not None:
            return self.routed
        if self.arrival is not None:
            return self.arrival
        return self.first_seen

    @property
    def end_cycle(self):
        if self.completion is not None:
            return self.completion
        last = self.first_seen
        for s in self.slices:
            if s.end is not None and s.end > last:
                last = s.end
        return last

    def _open_slice(self):
        if self.slices and self.slices[-1].end is None:
            return self.slices[-1]
        return None

    def to_dict(self):
        return {
            "rid": self.rid,
            "kind": self.kind,
            "arrival": self.arrival,
            "routed": self.routed,
            "service_cycles": self.service_cycles,
            "completion": self.completion,
            "slowdown": self.slowdown,
            "preemptions": self.preemptions,
            "dropped": self.dropped,
            "stolen": self.stolen,
            "queue_times": list(self.queue_times),
            "slices": [s.to_dict() for s in self.slices],
        }

    def __repr__(self):
        return (
            "RequestSpan(rid={}, slices={}, slowdown={}, dropped={})".format(
                self.rid, len(self.slices), self.slowdown, self.dropped
            )
        )


def build_spans(probe_events):
    """Fold an in-order event sequence into spans, one per request id.

    Returns spans in first-seen order.  Tolerates partial sequences:
    unmatched closes are ignored, unclosed slices keep ``end=None``.
    """
    spans = {}

    def span_for(event):
        span = spans.get(event.rid)
        if span is None:
            span = spans[event.rid] = RequestSpan(event.rid, event.t)
        return span

    for event in probe_events:
        kind = event.kind
        if event.rid is None:
            continue
        span = span_for(event)
        data = event.data or {}
        if kind == ev.ARRIVAL:
            span.arrival = event.t
            span.kind = data.get("request_kind")
            span.service_cycles = data.get("service_cycles")
        elif kind == ev.ROUTE:
            span.routed = event.t
        elif kind == ev.ENQUEUE:
            span.queue_times.append(event.t)
        elif kind == ev.START:
            start = data.get("run_start", event.t)
            span.slices.append(ExecSlice(start, wid=event.wid))
        elif kind == ev.PREEMPT:
            span.preemptions = data.get("preemptions", span.preemptions)
            open_slice = span._open_slice()
            if open_slice is not None:
                open_slice.end = event.t
        elif kind == ev.STEAL:
            span.stolen = True
            start = data.get("exec_start", event.t)
            span.slices.append(ExecSlice(start, stolen=True))
        elif kind == ev.STEAL_PAUSE:
            open_slice = span._open_slice()
            if open_slice is not None:
                open_slice.end = event.t
        elif kind == ev.COMPLETE:
            span.completion = event.t
            span.slowdown = data.get("slowdown")
            span.preemptions = data.get("preemptions", span.preemptions)
            if data.get("stolen"):
                span.stolen = True
            open_slice = span._open_slice()
            if open_slice is not None:
                open_slice.end = event.t
        elif kind == ev.DROP:
            span.dropped = True
    return list(spans.values())
