"""Parallel sweep execution: process-pool fan-out of independent
simulation jobs with a content-addressed result cache.

Three layers:

* :mod:`repro.parallel.jobs` — picklable job specs (:class:`SimJob`,
  :class:`ServerJob`, :class:`RackJob`, :class:`FaultJob`) whose
  ``run()`` is a pure function
  of their fields;
* :mod:`repro.parallel.runner` — :class:`ParallelRunner`, which maps jobs
  across a process pool (or in-process when ``jobs=1`` / pickling fails)
  and returns results bit-identical to serial execution;
* :mod:`repro.parallel.cache` — :class:`ResultCache`, keyed by a stable
  hash of (machine, config, workload, arrival process, seed, request
  count, code version), so re-running ``run all`` only re-simulates what
  changed.
"""

from repro.parallel.cache import (
    ResultCache,
    UncacheableValue,
    code_fingerprint,
    default_cache_dir,
    stable_describe,
)
from repro.parallel.jobs import (
    FaultJob, RackJob, ServerJob, SimJob, execute_job,
)
from repro.parallel.runner import (
    ParallelRunner,
    get_default_runner,
    resolve_jobs,
    set_default_runner,
    using_runner,
)

__all__ = [
    "SimJob",
    "ServerJob",
    "RackJob",
    "FaultJob",
    "execute_job",
    "ParallelRunner",
    "resolve_jobs",
    "get_default_runner",
    "set_default_runner",
    "using_runner",
    "ResultCache",
    "UncacheableValue",
    "stable_describe",
    "code_fingerprint",
    "default_cache_dir",
]
