"""Parallel sweep execution: supervised process-pool fan-out of
independent simulation jobs with a content-addressed result cache and a
resumable checkpoint journal.

Four layers:

* :mod:`repro.parallel.jobs` — picklable job specs (:class:`SimJob`,
  :class:`ServerJob`, :class:`RackJob`, :class:`FaultJob`) whose
  ``run()`` is a pure function
  of their fields;
* :mod:`repro.parallel.runner` — :class:`ParallelRunner`, which maps jobs
  across a supervised process pool (or in-process when ``jobs=1`` /
  pickling fails) and returns results bit-identical to serial execution;
  hung jobs are watchdog-killed, retried, and finally quarantined
  (:class:`Quarantined`) without disturbing the rest of the sweep;
* :mod:`repro.parallel.cache` — :class:`ResultCache`, keyed by a stable
  hash of (machine, config, workload, arrival process, seed, request
  count, code version), so re-running ``run all`` only re-simulates what
  changed; corrupt entries self-heal into counted misses;
* :mod:`repro.parallel.checkpoint` — :class:`SweepCheckpoint`, an
  append-only CRC-verified journal of completed jobs, so an interrupted
  sweep (:class:`SweepInterrupted`) resumes bit-identically from the
  last completed job.
"""

from repro.parallel.cache import (
    ResultCache,
    UncacheableValue,
    code_fingerprint,
    default_cache_dir,
    stable_describe,
)
from repro.parallel.checkpoint import (
    SweepCheckpoint,
    checkpoint_job_key,
)
from repro.parallel.jobs import (
    FaultJob, RackJob, ServerJob, SimJob, execute_job,
)
from repro.parallel.runner import (
    ParallelRunner,
    Quarantined,
    SweepInterrupted,
    get_default_runner,
    resolve_jobs,
    set_default_runner,
    using_runner,
)

__all__ = [
    "SimJob",
    "ServerJob",
    "RackJob",
    "FaultJob",
    "execute_job",
    "ParallelRunner",
    "Quarantined",
    "SweepInterrupted",
    "resolve_jobs",
    "get_default_runner",
    "set_default_runner",
    "using_runner",
    "ResultCache",
    "UncacheableValue",
    "stable_describe",
    "code_fingerprint",
    "default_cache_dir",
    "SweepCheckpoint",
    "checkpoint_job_key",
]
