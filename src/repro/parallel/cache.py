"""Content-addressed on-disk cache for simulation results.

A cache key is a SHA-256 over (schema version, code fingerprint, job
description).  The job description is a *stable* structural encoding of the
job spec — machine spec, runtime config (including its preemption-factory
fields), workload, arrival process, seed, request count, warmup fraction —
produced by :func:`stable_describe`.  The code fingerprint hashes the source
of every ``repro`` package that participates in a simulation (``sim``,
``core``, ``workloads``, ...), so editing the simulator invalidates
everything while editing one experiment's parameters re-simulates only the
points whose parameters actually changed.

Values are pickled whole; entries are written atomically (tmp + rename) so
concurrent sweep processes can share one cache directory.
"""

import enum
import functools
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from dataclasses import fields, is_dataclass
from pathlib import Path

__all__ = [
    "ResultCache",
    "UncacheableValue",
    "stable_describe",
    "code_fingerprint",
    "default_cache_dir",
]

#: Bump when the key derivation or stored-value layout changes.
#: 3: fault-injection layer — FaultJob rows, Cluster fault_plan/resilience.
CACHE_SCHEMA_VERSION = 3

#: CPython's Py_TPFLAGS_HEAPTYPE: set for classes defined in Python.
_PY_TPFLAGS_HEAPTYPE = 1 << 9

#: repro subpackages whose source does NOT feed the code fingerprint:
#: ``experiments`` only choose parameters (already captured per-job) and
#: ``parallel`` is the orchestration layer (results are bit-identical
#: regardless of how jobs are executed).
_FINGERPRINT_EXCLUDED = ("experiments", "parallel")

_code_fingerprint = None


class UncacheableValue(TypeError):
    """The job spec contains something without a stable description
    (a lambda, closure, open file, ...); the job runs uncached."""


def stable_describe(obj, _seen=None):
    """A process-independent, JSON-ready structural description of ``obj``.

    Handles primitives, containers, dataclasses, functions/classes (by
    qualified name — lambdas and closures are rejected because their names
    do not identify their behaviour), and plain objects (class name plus
    recursively described attributes).  Raises :class:`UncacheableValue`
    for anything else.
    """
    if isinstance(obj, enum.Enum):
        # Before the primitive check: IntEnum/StrEnum members must encode
        # as their enum identity, not as a bare 2 or "fifo" that would
        # collide with a plain field holding the same value.
        return ["enum", _qualified_name(type(obj)), obj.name]
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly and distinguishes 1.0 from 1.
        return ["f", repr(obj)]
    if isinstance(obj, bytes):
        return ["b", hashlib.sha256(obj).hexdigest()]
    if _seen is None:
        _seen = set()
    marker = id(obj)
    if marker in _seen:
        raise UncacheableValue("cyclic object graph in job spec")
    _seen = _seen | {marker}
    if isinstance(obj, (list, tuple)):
        return ["l", [stable_describe(item, _seen) for item in obj]]
    if isinstance(obj, dict):
        items = [
            [stable_describe(k, _seen), stable_describe(v, _seen)]
            for k, v in obj.items()
        ]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["d", items]
    if isinstance(obj, (set, frozenset)):
        members = [stable_describe(item, _seen) for item in obj]
        members.sort(key=lambda m: json.dumps(m, sort_keys=True))
        return ["s", members]
    if isinstance(obj, type) or _is_plain_function(obj):
        return _describe_by_name(obj)
    if isinstance(obj, functools.partial):
        return [
            "partial",
            stable_describe(obj.func, _seen),
            stable_describe(list(obj.args), _seen),
            stable_describe(obj.keywords, _seen),
        ]
    if is_dataclass(obj):
        state = {
            f.name: stable_describe(getattr(obj, f.name), _seen)
            for f in fields(obj)
        }
        return ["obj", _qualified_name(type(obj)), ["d", sorted(state.items())]]
    if type(obj).__flags__ & _PY_TPFLAGS_HEAPTYPE:
        # A Python-defined class: __dict__ + __slots__ capture its whole
        # state, and the class identity (plus the code fingerprint) covers
        # its behaviour.  C-implemented objects fall through — their state
        # is invisible from here, and guessing risks false cache hits.
        return [
            "obj",
            _qualified_name(type(obj)),
            stable_describe(_object_state(obj), _seen),
        ]
    raise UncacheableValue(
        "no stable description for {!r} of type {}".format(obj, type(obj))
    )


def _is_plain_function(obj):
    import types

    return isinstance(
        obj, (types.FunctionType, types.BuiltinFunctionType, types.MethodType)
    )


def _describe_by_name(obj):
    name = _qualified_name(obj)
    if "<lambda>" in name or "<locals>" in name:
        raise UncacheableValue(
            "lambdas/closures have no stable identity: {}".format(name)
        )
    return ["ref", name]


def _qualified_name(obj):
    module = getattr(obj, "__module__", None) or "?"
    qualname = getattr(obj, "__qualname__", None) or getattr(
        obj, "__name__", repr(obj)
    )
    return "{}:{}".format(module, qualname)


def _object_state(obj):
    """Every data attribute of a plain object, from __dict__ and __slots__
    across the MRO."""
    state = {}
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if slot.startswith("__"):
                continue
            try:
                state.setdefault(slot, getattr(obj, slot))
            except AttributeError:
                pass
    state.update(getattr(obj, "__dict__", {}))
    return state


def code_fingerprint():
    """SHA-256 over the source of the simulation-relevant repro packages.
    Computed once per process."""
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            if rel.parts and rel.parts[0] in _FINGERPRINT_EXCLUDED:
                continue
            digest.update(str(rel).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def default_cache_dir():
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """Pickle-on-disk store addressed by stable job-content hashes.

    Layout: ``<dir>/<key[:2]>/<key>.pkl``.  The store is *self-healing*:
    a truncated, corrupted, or otherwise unreadable entry is a counted
    miss (``corrupt``) whose poison file is deleted so it can never be
    read — or crash a sweep — twice.  ``hits``/``misses``/``stores``
    count this instance's traffic.
    """

    def __init__(self, cache_dir=None):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self._warned_corrupt = False

    def key_for(self, job):
        """The cache key for ``job``, or None when the job has no stable
        description (and must always run)."""
        try:
            material = stable_describe(job)
        except UncacheableValue:
            return None
        payload = json.dumps(
            [CACHE_SCHEMA_VERSION, code_fingerprint(), material],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _path(self, key):
        return self.cache_dir / key[:2] / (key + ".pkl")

    def get(self, key):
        """``(True, value)`` on a hit, ``(False, None)`` otherwise.

        An entry that exists but cannot be read back because its *content*
        is bad (torn write, disk corruption, stale class layout)
        self-heals: it is deleted, counted under ``corrupt``, warned
        about once per cache, and reported as a plain miss — never an
        exception.  A transient I/O failure (EIO, permissions, an NFS
        hiccup) is just a miss: the entry may be perfectly valid, so it
        is never deleted."""
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except OSError:
            self.misses += 1
            return False, None
        except Exception:
            self.misses += 1
            self.corrupt += 1
            try:
                os.unlink(str(path))
            except OSError:
                pass
            if not self._warned_corrupt:
                self._warned_corrupt = True
                warnings.warn(
                    "result cache entry {} was unreadable (truncated or "
                    "corrupt); deleted it and treated the lookup as a "
                    "miss".format(path.name),
                    RuntimeWarning,
                    stacklevel=3,
                )
            return False, None
        self.hits += 1
        return True, value

    def put(self, key, value):
        """Store ``value`` under ``key`` (atomic; best-effort)."""
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, str(path))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError):
            return False
        self.stores += 1
        return True

    def __repr__(self):
        return (
            "ResultCache(dir={!r}, hits={}, misses={}, stores={}, "
            "corrupt={})".format(
                str(self.cache_dir), self.hits, self.misses, self.stores,
                self.corrupt,
            )
        )
