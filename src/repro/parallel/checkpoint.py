"""Append-only, CRC-verified journal of completed sweep jobs.

A long sweep is hours of compute assembled from seconds-sized jobs; the
checkpoint makes the assembly *killable*.  As each job finishes, the
runner appends one ``(job_key, result)`` record to the journal and
flushes it, so a SIGINT (or a crash, or an OOM kill) at hour two loses at
most the jobs still in flight.  Re-running the same sweep with the same
checkpoint path resumes: every journaled job is served from the file,
bit-identically, and only the remainder is simulated.

Resilience properties:

* **Torn tails are expected, not fatal.**  Every record carries its own
  CRC-32 and length; a record cut off mid-write by the kill is detected,
  counted (``dropped``), truncated away, and the journal appends from
  the last intact record.
* **Stale journals self-invalidate.**  The header stores the same code
  fingerprint the result cache uses; a journal written by different
  simulator code is discarded (with a warning) instead of resurrecting
  results the current code would not produce.
* **Keys are content-addressed when possible.**  A job with a stable
  description (see :func:`repro.parallel.cache.stable_describe`) is
  keyed by its content hash, so the resumed process does not need to
  replay the exact submission order.  Jobs without one (lambdas in the
  spec) fall back to their position in the sweep, which is deterministic
  because sweeps are constructed deterministically.

The journal is orchestration state, not simulation state: like the
result cache, it lives outside the code fingerprint and never changes
what a simulation computes — only whether it re-runs.
"""

import hashlib
import json
import os
import pickle
import struct
import warnings
import zlib
from pathlib import Path

__all__ = [
    "SweepCheckpoint",
    "checkpoint_job_key",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_SCHEMA_VERSION",
]

#: First bytes of every journal; refuse to touch files that lack it.
CHECKPOINT_MAGIC = b"REPROCKPT\x00"

#: Bump when the frame layout or key derivation changes.
CHECKPOINT_SCHEMA_VERSION = 1

#: Per-record frame: kind byte, payload length, CRC-32 of the payload.
_FRAME = struct.Struct("<cII")

_KIND_HEADER = b"H"
_KIND_RESULT = b"R"

#: Upper bound on a sane payload; a length field above this is garbage
#: (a torn frame whose length bytes landed mid-pickle), not a record.
_MAX_PAYLOAD = 1 << 30


def checkpoint_job_key(job, position):
    """The journal key for ``job``, the ``position``-th job this runner
    has seen.

    Content hash of the stable description when the spec has one (no
    code fingerprint — the journal header covers that file-wide), else
    ``"pos:<n>"``: re-running the same sweep rebuilds the same job list
    in the same order, so positions are reproducible identities too.
    """
    from repro.parallel.cache import UncacheableValue, stable_describe

    try:
        material = stable_describe(job)
    except UncacheableValue:
        return "pos:{:08d}".format(position)
    payload = json.dumps(
        [CHECKPOINT_SCHEMA_VERSION, material],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SweepCheckpoint:
    """Resumable journal of completed ``(job_key, result)`` pairs.

    Parameters
    ----------
    path:
        Journal file.  Created (with parents) if missing.
    fingerprint:
        Code-version stamp stored in the header.  Defaults to
        :func:`repro.parallel.cache.code_fingerprint`; an existing
        journal with a different stamp is discarded as stale.
    resume:
        When True (default), load every intact record from an existing
        journal before appending.  When False, an existing journal is
        overwritten — the sweep starts fresh.

    Counters: ``loaded`` (records recovered on open), ``appends``
    (records written by this instance), ``dropped`` (corrupt/torn
    frames discarded on open), ``skipped`` (results that could not be
    journaled — unpicklable, or lost to a write failure), plus the
    ``stale`` flag.
    """

    def __init__(self, path, fingerprint=None, resume=True):
        self.path = Path(path)
        if fingerprint is None:
            from repro.parallel.cache import code_fingerprint

            fingerprint = code_fingerprint()
        self.fingerprint = fingerprint
        self.entries = {}
        self.loaded = 0
        self.appends = 0
        self.dropped = 0
        self.skipped = 0
        self.stale = False
        self._warned_skip = False
        self._warned_write = False
        self._file = None
        valid_until = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            if resume:
                valid_until = self._load()
            else:
                # Starting fresh still must not clobber a file that was
                # never a checkpoint — only journals are ours to discard.
                self._check_magic()
        self.loaded = len(self.entries)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if valid_until:
            self._file = open(self.path, "r+b")
            # Drop any torn tail so the next append starts on a frame
            # boundary; everything before it was CRC-verified.
            self._file.truncate(valid_until)
            self._file.seek(valid_until)
        else:
            self._file = open(self.path, "wb")
            self._file.write(CHECKPOINT_MAGIC)
            header = json.dumps(
                {
                    "schema": CHECKPOINT_SCHEMA_VERSION,
                    "fingerprint": self.fingerprint,
                },
                sort_keys=True,
            ).encode("utf-8")
            self._write_frame(_KIND_HEADER, header)
            self._file.flush()

    # -- reading --------------------------------------------------------

    def _check_magic(self):
        with open(self.path, "rb") as f:
            if f.read(len(CHECKPOINT_MAGIC)) != CHECKPOINT_MAGIC:
                raise ValueError(
                    "{} is not a repro sweep checkpoint (bad magic); "
                    "refusing to resume from or overwrite it".format(
                        self.path
                    )
                )

    def _load(self):
        """Recover every intact record; returns the byte offset of the
        last verified frame (0 when the journal is foreign or stale)."""
        with open(self.path, "rb") as f:
            magic = f.read(len(CHECKPOINT_MAGIC))
            if magic != CHECKPOINT_MAGIC:
                raise ValueError(
                    "{} is not a repro sweep checkpoint (bad magic); "
                    "refusing to resume from or overwrite it".format(
                        self.path
                    )
                )
            offset = len(CHECKPOINT_MAGIC)
            saw_header = False
            while True:
                frame = f.read(_FRAME.size)
                if len(frame) < _FRAME.size:
                    if frame:
                        self.dropped += 1
                    break
                kind, length, crc = _FRAME.unpack(frame)
                if kind not in (_KIND_HEADER, _KIND_RESULT) or (
                    length > _MAX_PAYLOAD
                ):
                    self.dropped += 1
                    break
                payload = f.read(length)
                if len(payload) < length or (
                    zlib.crc32(payload) & 0xFFFFFFFF
                ) != crc:
                    self.dropped += 1
                    break
                if kind == _KIND_HEADER:
                    if not self._header_matches(payload):
                        self.stale = True
                        self.entries.clear()
                        warnings.warn(
                            "checkpoint {} was written by a different "
                            "code version; its results are not "
                            "reusable — starting fresh".format(self.path),
                            RuntimeWarning,
                            stacklevel=4,
                        )
                        return 0
                    saw_header = True
                else:
                    try:
                        key, value = pickle.loads(payload)
                    except Exception:
                        self.dropped += 1
                        break
                    self.entries[key] = value
                offset += _FRAME.size + length
            if not saw_header:
                self.entries.clear()
                return 0
            return offset

    def _header_matches(self, payload):
        try:
            header = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return False
        if header.get("schema") != CHECKPOINT_SCHEMA_VERSION:
            return False
        stamp = header.get("fingerprint")
        # A None on either side opts out of fingerprint checking (tests
        # and tools that journal non-simulation payloads).
        if stamp is None or self.fingerprint is None:
            return True
        return stamp == self.fingerprint

    # -- writing --------------------------------------------------------

    def _write_frame(self, kind, payload):
        self._file.write(
            _FRAME.pack(kind, len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        )
        self._file.write(payload)

    def record(self, key, value):
        """Journal one completed job; flushed immediately so a kill
        right after loses nothing.  Journaling is never fatal:
        unpicklable results are counted and skipped (they simply re-run
        on resume), and a write failure (disk full, quota) warns once,
        counts under ``skipped``, and disables journaling for the rest
        of the sweep instead of aborting it mid-collect."""
        if self._file is None or self._file.closed:
            return False
        try:
            payload = pickle.dumps(
                (key, value), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            self.skipped += 1
            if not self._warned_skip:
                self._warned_skip = True
                warnings.warn(
                    "checkpoint could not journal a result ({}); the "
                    "job will re-run on resume".format(
                        str(exc)[:200]
                    ),
                    RuntimeWarning,
                    stacklevel=3,
                )
            return False
        try:
            self._write_frame(_KIND_RESULT, payload)
            self._file.flush()
        except (OSError, ValueError) as exc:
            # A half-written frame is fine — the CRC drops it on resume.
            self.skipped += 1
            if not self._warned_write:
                self._warned_write = True
                warnings.warn(
                    "checkpoint {} hit a write failure ({}); journaling "
                    "disabled for the rest of the sweep — un-journaled "
                    "jobs will re-run on resume".format(
                        self.path, str(exc)[:200]
                    ),
                    RuntimeWarning,
                    stacklevel=3,
                )
            try:
                self._file.close()
            except Exception:
                pass
            self._file = None
            # Still served from memory for the rest of *this* run.
            self.entries[key] = value
            return False
        self.entries[key] = value
        self.appends += 1
        return True

    def get(self, key):
        """``(True, value)`` when ``key`` was journaled, else
        ``(False, None)``."""
        if key in self.entries:
            return True, self.entries[key]
        return False, None

    def __contains__(self, key):
        return key in self.entries

    def __len__(self):
        return len(self.entries)

    def flush(self):
        """Force the journal to disk (fsync, best effort) — called on
        interrupt so the resume hint is guaranteed honest."""
        if self._file is None or self._file.closed:
            return
        self._file.flush()
        try:
            os.fsync(self._file.fileno())
        except OSError:
            pass

    def close(self):
        if self._file is not None and not self._file.closed:
            self.flush()
            self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self):
        return (
            "SweepCheckpoint(path={!r}, entries={}, loaded={}, appends={}, "
            "dropped={})".format(
                str(self.path), len(self.entries), self.loaded,
                self.appends, self.dropped,
            )
        )
