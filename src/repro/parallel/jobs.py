"""Picklable units of simulation work.

Each job is a frozen dataclass whose ``run()`` is a pure function of its
fields: a fresh server (or rack) is built from the job's seed, so executing
the same job in any process — or reading it back from the result cache —
yields bit-identical results.  ``execute_job`` is the module-level entry
point handed to ``multiprocessing.Pool.map`` (bound methods don't pickle on
spawn-based platforms).
"""

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["SimJob", "RackJob", "ServerJob", "FaultJob", "execute_job"]


def execute_job(job):
    """Run one job in the current process (pool workers call this)."""
    return job.run()


@dataclass(frozen=True)
class SimJob:
    """One (config, load point) cell of a load sweep.

    ``run()`` returns the :class:`~repro.metrics.sweep.SweepPoint` that
    :meth:`LoadSweep.run_point` would have produced for the same arguments.
    """

    machine: Any
    config: Any
    workload: Any
    load_rps: float
    num_requests: int
    seed: int = 1
    warmup_frac: float = 0.1
    profile: Optional[Any] = None
    arrival_factory: Optional[Any] = None

    def run(self):
        from repro.metrics.sweep import run_sweep_point

        return run_sweep_point(
            self.machine, self.config, self.workload, self.load_rps,
            self.num_requests, seed=self.seed, warmup_frac=self.warmup_frac,
            profile=self.profile, arrival_factory=self.arrival_factory,
        )


@dataclass(frozen=True)
class ServerJob:
    """One standalone server run, reduced to the row the ``compare``
    command prints (full SimResults hold every Request record — far too
    heavy to ship back through a pipe or store in the cache)."""

    machine: Any
    config: Any
    workload: Any
    load_rps: float
    num_requests: int
    seed: int = 1
    warmup_frac: float = 0.1

    def run(self):
        from repro.core.server import Server
        from repro.metrics.slowdown import summarize_slowdowns
        from repro.workloads.arrivals import PoissonProcess

        server = Server(self.machine, self.config, seed=self.seed)
        result = server.run(
            self.workload, PoissonProcess(self.load_rps), self.num_requests
        )
        summary = summarize_slowdowns(result.slowdowns(self.warmup_frac))
        return {
            "name": self.config.name,
            "p50": summary.p50,
            "p99": summary.p99,
            "p999": summary.p999,
            "mean": summary.mean,
            "meets_slo": summary.meets_slo(),
            "dispatcher_utilization": result.dispatcher_utilization(),
            "steal_completions":
                result.dispatcher_stats["steal_completions"],
            "completed": len(result.records),
            "drained": result.drained,
        }


@dataclass(frozen=True)
class RackJob:
    """One rack-scale cluster run, reduced to the rack-wide summary row
    the cluster experiments and the ``rack`` command consume."""

    machine: Any
    config: Any
    num_servers: int
    policy: str
    workload: Any
    load_rps: float
    num_requests: int
    seed: int = 1
    warmup_frac: float = 0.1
    fabric: Optional[Any] = None
    max_events: int = 120_000_000

    def run(self):
        from repro.cluster import Cluster
        from repro.workloads.arrivals import PoissonProcess

        cluster = Cluster(
            self.machine, self.config, self.num_servers, policy=self.policy,
            seed=self.seed, fabric=self.fabric,
        )
        result = cluster.run(
            self.workload, PoissonProcess(self.load_rps), self.num_requests,
            max_events=self.max_events,
        )
        summary = result.summary(self.warmup_frac)
        return {
            "policy": self.policy,
            "config": self.config.name,
            "p50": summary.p50,
            "p99": summary.p99,
            "p999": summary.p999,
            "mean": summary.mean,
            "imbalance": result.imbalance(),
            "drained": result.drained,
            "completed": len(result.records),
        }


@dataclass(frozen=True)
class FaultJob:
    """One faulted (or resilient) rack run, reduced to the degradation-curve
    row the fault experiments consume.

    ``fault_plan`` / ``resilience`` are frozen dataclasses of plain floats
    and ints, so the job pickles and caches exactly like :class:`RackJob`;
    with both left ``None`` it produces the same simulation as a
    :class:`RackJob` of the same fields (plus the fault columns zeroed).
    """

    machine: Any
    config: Any
    num_servers: int
    policy: str
    workload: Any
    load_rps: float
    num_requests: int
    seed: int = 1
    warmup_frac: float = 0.1
    fabric: Optional[Any] = None
    fault_plan: Optional[Any] = None
    resilience: Optional[Any] = None
    max_events: int = 120_000_000

    def run(self):
        from repro.cluster import Cluster
        from repro.metrics.slowdown import summarize_slowdowns
        from repro.workloads.arrivals import PoissonProcess

        cluster = Cluster(
            self.machine, self.config, self.num_servers, policy=self.policy,
            seed=self.seed, fabric=self.fabric, fault_plan=self.fault_plan,
            resilience=self.resilience,
        )
        result = cluster.run(
            self.workload, PoissonProcess(self.load_rps), self.num_requests,
            max_events=self.max_events,
        )
        slowdowns = result.slowdowns(self.warmup_frac)
        summary = summarize_slowdowns(slowdowns) if slowdowns else None
        mttr = result.mttr_us
        return {
            "policy": self.policy,
            "config": self.config.name,
            "plan": (
                self.fault_plan.name if self.fault_plan is not None else None
            ),
            "p50": summary.p50 if summary else float("nan"),
            "p99": summary.p99 if summary else float("nan"),
            "p999": summary.p999 if summary else float("nan"),
            "mean": summary.mean if summary else float("nan"),
            "goodput": result.goodput(),
            "slo_goodput": result.slo_goodput(self.warmup_frac),
            "imbalance": result.imbalance(),
            "completed": len(result.records),
            "offered": result.num_offered,
            "drained": result.drained,
            "crashes": result.crashes,
            "lost": result.lost,
            "requeued": result.requeued,
            "shed": result.shed,
            "failed": result.failed,
            "retries": result.retries,
            "hedges": result.hedges,
            "timeouts": result.timeouts,
            "mttr_us": max(mttr) if mttr else float("nan"),
        }
