"""Process-pool execution of independent simulation jobs.

The figures are embarrassingly parallel: every (config, load point) cell is
an independent simulation seeded purely by its own spec.  The runner fans
cells out across a ``multiprocessing`` pool and reassembles results in
submission order, so parallel sweeps are **bit-identical** to serial ones
(the per-job RNG derivation never touches process-global state).

Degradation is graceful, counted, and warned about (one
:class:`RuntimeWarning` per runner, so a sweep that quietly lost its
parallelism is visible without flooding the log):

* ``jobs=1`` (the default), a single-job batch, or an unpicklable batch all
  run in-process with zero multiprocessing overhead;
* a pool that fails to start (restricted environments) falls back to
  in-process execution;
* a :class:`~repro.parallel.cache.ResultCache` short-circuits any job whose
  content hash was computed before, on this or any earlier run.

``REPRO_JOBS`` sets the default worker count for any runner created
without an explicit ``jobs=``; the CLI's ``--jobs`` overrides it.
"""

import os
import pickle
import time
import warnings
from contextlib import contextmanager

from repro.obs.registry import TelemetryRegistry
from repro.parallel.jobs import execute_job

__all__ = [
    "ParallelRunner",
    "resolve_jobs",
    "get_default_runner",
    "set_default_runner",
    "using_runner",
]

_MISSING = object()


def resolve_jobs(jobs=None):
    """Normalize a worker count: ``None`` consults ``$REPRO_JOBS`` (default
    1); 0 or negative means "all cores"."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        if env.lower() == "auto":
            return _cpu_count()
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                "REPRO_JOBS must be an integer or 'auto', got {!r}".format(env)
            ) from None
    if jobs <= 0:
        return _cpu_count()
    return int(jobs)


def _cpu_count():
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def _run_timed(job):
    """Execute one job and return ``(result, wall_seconds)``.

    Module-level so pool workers can unpickle it; the measured wall time
    feeds the runner's telemetry registry only and never enters results.
    """
    started = time.perf_counter()  # repro-san: ignore[DET001] -- wall-clock job timing for the runner telemetry footer only; never enters results
    value = execute_job(job)
    seconds = time.perf_counter() - started  # repro-san: ignore[DET001] -- wall-clock job timing for the runner telemetry footer only; never enters results
    return value, seconds


def _run_timed_batch(jobs):
    """Execute a pre-chunked list of jobs in one pool task.

    Shipping a list per task (instead of one job per task) amortizes the
    pickle + IPC round-trip that made small sweeps slower than serial."""
    return [_run_timed(job) for job in jobs]


def _warm_worker():
    """Pool initializer: pre-import the heavy simulation modules so the
    first job a worker receives doesn't pay import cost.  A no-op under
    the fork start method (the child inherits the parent's modules) but
    decisive under spawn."""
    import repro.cluster.rack  # noqa: F401
    import repro.core.server  # noqa: F401
    import repro.workloads.named  # noqa: F401


def _pickle_culprit(batch):
    """Name the first unpicklable thing in ``batch``, as precisely as we
    can: for a dataclass job, probe each field individually so the warning
    reads ``SimJob.arrival_factory`` instead of an opaque lambda repr."""
    import dataclasses

    for job in batch:
        try:
            pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            name = type(job).__name__
            if dataclasses.is_dataclass(job):
                for field in dataclasses.fields(job):
                    try:
                        pickle.dumps(
                            getattr(job, field.name),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        )
                    except Exception:
                        return "{}.{}".format(name, field.name)
            return name
    return None


class ParallelRunner:
    """Maps job specs to results, in order, with optional parallelism and
    caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` reads ``$REPRO_JOBS`` (default 1);
        ``<= 0`` means one per core.  1 executes in-process.
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache`.  Jobs whose
        stable content hash is already stored are not re-simulated.
    chunksize:
        Jobs per pool task.  Default: batch split into ~4 chunks per
        worker, so stragglers (high-load points take longest) rebalance.
    """

    def __init__(self, jobs=None, cache=None, chunksize=None):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.chunksize = chunksize
        self.stats = {
            "jobs_run": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "parallel_batches": 0,
            "serial_batches": 0,
            "fallbacks": 0,
            "pool_starts": 0,
            "pool_reuses": 0,
        }
        #: Per-job wall times and hit/miss counters land here; the sweep
        #: CLI prints :meth:`summary_line` from it.
        self.telemetry = TelemetryRegistry()
        self._warned_fallback = False
        #: Persistent worker pool, started on the first parallel batch and
        #: reused until :meth:`close` — forking per batch is what made the
        #: original runner slower than serial on small sweeps.
        self._pool = None
        self._pool_workers = 0
        #: Wall seconds spent inside parallel pool.map calls, versus the
        #: in-worker compute seconds — the footer's speedup estimate.
        self._parallel_wall = 0.0

    # -- the public API -----------------------------------------------------

    def map(self, jobs):
        """Execute every job; returns results in input order."""
        jobs = list(jobs)
        results = [_MISSING] * len(jobs)
        keys = [None] * len(jobs)
        cache = self.cache
        if cache is not None:
            for i, job in enumerate(jobs):
                key = cache.key_for(job)
                keys[i] = key
                if key is not None:
                    hit, value = cache.get(key)
                    if hit:
                        results[i] = value
            hits = sum(1 for r in results if r is not _MISSING)
            self.stats["cache_hits"] += hits
            self.telemetry.count("runner.cache_hits", hits)
        pending = [i for i, r in enumerate(results) if r is _MISSING]
        if pending:
            outputs = self._execute([jobs[i] for i in pending])
            for i, (value, seconds) in zip(pending, outputs):
                results[i] = value
                self.telemetry.sample("runner.job_seconds", i, seconds)
                if cache is not None and keys[i] is not None:
                    cache.put(keys[i], value)
            self.stats["jobs_run"] += len(pending)
            self.telemetry.count("runner.jobs_run", len(pending))
            if cache is not None:
                self.stats["cache_misses"] += len(pending)
                self.telemetry.count("runner.cache_misses", len(pending))
        return results

    def run(self, job):
        """Execute a single job (cache-aware)."""
        return self.map([job])[0]

    # -- execution strategies ----------------------------------------------

    def _execute(self, batch):
        workers = min(self.jobs, len(batch))
        if workers > 1 and self._picklable(batch):
            try:
                return self._execute_pool(batch, workers)
            except OSError as exc:
                # Pool creation can fail in sandboxed/restricted
                # environments; the results must not.
                self._note_fallback(
                    "process pool unavailable ({}); running {} job(s) "
                    "in-process".format(exc, len(batch))
                )
        self.stats["serial_batches"] += 1
        return [_run_timed(job) for job in batch]

    def _picklable(self, batch):
        try:
            pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
            return True
        except Exception as exc:
            culprit = _pickle_culprit(batch)
            detail = " (culprit: {})".format(culprit) if culprit else ""
            self._note_fallback(
                "job batch is not picklable ({}){}; running {} job(s) "
                "in-process".format(exc, detail, len(batch))
            )
            return False

    def _note_fallback(self, reason):
        """Count a degradation to serial execution, warning once per
        runner — results stay bit-identical, only wall-clock suffers."""
        self.stats["fallbacks"] += 1
        if not self._warned_fallback:
            self._warned_fallback = True
            warnings.warn(
                "ParallelRunner(jobs={}) fell back to serial execution: "
                "{}".format(self.jobs, reason),
                RuntimeWarning,
                stacklevel=4,
            )

    def _get_pool(self, workers):
        """The persistent pool, started on first use and reused across
        batches (warm imports, no per-batch fork cost)."""
        if self._pool is not None and self._pool_workers >= workers:
            self.stats["pool_reuses"] += 1
            return self._pool
        self.close()
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        self._pool = context.Pool(
            processes=workers, initializer=_warm_worker
        )
        self._pool_workers = workers
        self.stats["pool_starts"] += 1
        return self._pool

    def _execute_pool(self, batch, workers):
        chunksize = self.chunksize or max(
            1, (len(batch) + 4 * workers - 1) // (4 * workers)
        )
        chunks = [
            batch[i:i + chunksize] for i in range(0, len(batch), chunksize)
        ]
        pool = self._get_pool(workers)
        started = time.perf_counter()  # repro-san: ignore[DET001] -- wall-clock batch timing for the runner footer only; never enters results
        try:
            nested = pool.map(_run_timed_batch, chunks, chunksize=1)
        except Exception as exc:
            # A dead or broken pool must not take the sweep down; discard
            # it and let the caller fall back to in-process execution.
            self.close()
            raise OSError(
                "worker pool failed mid-batch: {}".format(exc)
            ) from exc
        self._parallel_wall += time.perf_counter() - started  # repro-san: ignore[DET001] -- wall-clock batch timing for the runner footer only; never enters results
        self.stats["parallel_batches"] += 1
        return [timed for chunk in nested for timed in chunk]

    def close(self):
        """Terminate the persistent worker pool (if any).  The runner
        stays usable — the next parallel batch starts a fresh pool."""
        pool = self._pool
        self._pool = None
        self._pool_workers = 0
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def parallel_speedup(self):
        """Measured speedup of parallel batches over their estimated
        serial cost (in-worker compute seconds vs pool wall seconds), or
        None when no parallel batch has run.  A value below 1.0 means the
        pool made the sweep *slower* — the regression the footer exists
        to surface."""
        if not self._parallel_wall:
            return None
        series = self.telemetry.series.get("runner.job_seconds")
        samples = series.samples if series is not None else []
        compute = sum(v for _i, v in samples)
        if compute <= 0.0:
            return None
        return compute / self._parallel_wall

    def summary_line(self):
        """One-line telemetry footer for sweep CLIs: jobs run, cache
        hit/miss split, total and slowest per-job wall time, and — when
        a pool ran — parallel wall vs estimated serial cost, so a sweep
        that parallelized into a *slowdown* can never report quietly."""
        series = self.telemetry.series.get("runner.job_seconds")
        samples = series.samples if series is not None else []
        total = sum(v for _i, v in samples)
        slowest = max((v for _i, v in samples), default=0.0)
        cache_part = "no cache"
        if self.cache is not None:
            cache_part = "{} cache hits, {} misses".format(
                self.stats["cache_hits"], self.stats["cache_misses"]
            )
        speedup = self.parallel_speedup()
        speedup_part = ""
        if speedup is not None:
            speedup_part = (
                ", parallel {:.1f}s vs {:.1f}s serial-est "
                "({:.2f}x{})".format(
                    self._parallel_wall, total, speedup,
                    "" if speedup >= 1.0 else " — SLOWER than serial",
                )
            )
        return (
            "[runner: {} jobs simulated in {:.1f}s wall "
            "(slowest {:.1f}s), {}, jobs={}{}]".format(
                self.stats["jobs_run"], total, slowest, cache_part,
                self.jobs, speedup_part,
            )
        )

    def __repr__(self):
        return "ParallelRunner(jobs={}, cache={!r})".format(
            self.jobs, self.cache
        )


# -- ambient default runner -------------------------------------------------
#
# Experiment entry points are plain ``run(quality, seed)`` functions; the
# default runner is how ``--jobs``/``--cache-dir`` reach every sweep they
# trigger without threading a parameter through 18 signatures.  Library
# callers can still pass an explicit ``runner=`` to any sweep API.

_default_runner = None


def get_default_runner():
    """The process-wide runner (created lazily; honors ``$REPRO_JOBS``)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ParallelRunner()
    return _default_runner


def set_default_runner(runner):
    """Install ``runner`` as the process-wide default (None resets)."""
    global _default_runner
    _default_runner = runner


@contextmanager
def using_runner(runner):
    """Temporarily install ``runner`` as the default."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    try:
        yield runner
    finally:
        _default_runner = previous
