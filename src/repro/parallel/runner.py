"""Process-pool execution of independent simulation jobs, supervised.

The figures are embarrassingly parallel: every (config, load point) cell is
an independent simulation seeded purely by its own spec.  The runner fans
cells out across a process pool and reassembles results in submission
order, so parallel sweeps are **bit-identical** to serial ones (the per-job
RNG derivation never touches process-global state).

The pool is *supervised* — a sweep is treated as a production workload,
not a best-effort script:

* Chunks are dispatched asynchronously; completed chunks are **kept** even
  when another chunk's worker dies, so one bad job can no longer discard
  an hour of finished results.
* ``job_timeout`` arms a per-job watchdog: a job that hangs past it is
  terminated (the pool is recycled), retried up to ``max_retries`` times,
  then **quarantined** — its result slot holds a :class:`Quarantined`
  record naming the culprit, and every other job still completes.
* A worker that crashes hard (``os._exit``, segfault) is detected via the
  broken-pool signal; the jobs it took down are retried in isolation and
  quarantined if they keep killing workers.
* A :class:`~repro.parallel.checkpoint.SweepCheckpoint` journals every
  completed job as it lands; SIGINT/SIGTERM during a checkpointed
  ``map()`` flushes the journal and raises :class:`SweepInterrupted` with
  a resume hint instead of losing uncached work.

Degradation is graceful, counted, and warned about (one
:class:`RuntimeWarning` per runner, so a sweep that quietly lost its
parallelism is visible without flooding the log):

* ``jobs=1`` (the default), a single-job batch, or an unpicklable batch all
  run in-process with zero multiprocessing overhead;
* a pool that fails to start (restricted environments) falls back to
  in-process execution — of the *unfinished remainder only*;
* a :class:`~repro.parallel.cache.ResultCache` short-circuits any job whose
  content hash was computed before, on this or any earlier run.

``REPRO_JOBS`` sets the default worker count for any runner created
without an explicit ``jobs=``; the CLI's ``--jobs`` overrides it.
"""

import os
import pickle
import signal
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.obs.registry import TelemetryRegistry
from repro.parallel.jobs import execute_job

__all__ = [
    "ParallelRunner",
    "Quarantined",
    "SweepInterrupted",
    "resolve_jobs",
    "get_default_runner",
    "set_default_runner",
    "using_runner",
]

_MISSING = object()

#: Seconds between supervision sweeps of the in-flight future set (also
#: the interrupt-flag latency).
_POLL_SECONDS = 0.05


def resolve_jobs(jobs=None):
    """Normalize a worker count: ``None`` consults ``$REPRO_JOBS`` (default
    1); 0 or negative means "all cores"."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        if env.lower() == "auto":
            return _cpu_count()
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                "REPRO_JOBS must be an integer or 'auto', got {!r}".format(env)
            ) from None
    if jobs <= 0:
        return _cpu_count()
    return int(jobs)


def _cpu_count():
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def _clip(text, limit=200):
    """Cap embedded free text (exception reprs, job reprs) so one huge
    message cannot flood a warning or the telemetry footer."""
    text = str(text)
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


@dataclass(frozen=True)
class Quarantined:
    """The result slot of a job the supervisor gave up on: it hung past
    the watchdog or kept killing workers through every allowed retry.
    Holds the culprit spec so the footer (and the caller) can name it."""

    job: Any
    reason: str
    attempts: int

    def describe(self):
        return "{} after {} attempt(s): {}".format(
            _clip(repr(self.job), 120), self.attempts, self.reason
        )


class SweepInterrupted(KeyboardInterrupt):
    """SIGINT/SIGTERM during a checkpointed ``map()``: the journal was
    flushed first, so ``completed`` jobs survive — resume by re-running
    with the same checkpoint path."""

    def __init__(self, path, completed):
        self.path = path
        self.completed = completed
        super().__init__(
            "sweep interrupted; {} completed job(s) journaled to {}".format(
                completed, path
            )
        )


def _run_timed(job):
    """Execute one job and return ``(result, wall_seconds)``.

    Module-level so pool workers can unpickle it; the measured wall time
    feeds the runner's telemetry registry only and never enters results.
    """
    started = time.perf_counter()  # repro-san: ignore[DET001] -- wall-clock job timing for the runner telemetry footer only; never enters results
    value = execute_job(job)
    seconds = time.perf_counter() - started  # repro-san: ignore[DET001] -- wall-clock job timing for the runner telemetry footer only; never enters results
    return value, seconds


def _run_timed_batch(jobs):
    """Execute a pre-chunked list of jobs in one pool task.

    Shipping a list per task (instead of one job per task) amortizes the
    pickle + IPC round-trip that made small sweeps slower than serial.
    Each row is ``("ok", value, seconds)`` or ``("err", exc, seconds)`` —
    a raising job must not discard its chunk-mates' finished results, so
    exceptions travel back as data, not as a poisoned task."""
    rows = []
    for job in jobs:
        started = time.perf_counter()  # repro-san: ignore[DET001] -- wall-clock job timing for the runner telemetry footer only; never enters results
        try:
            value = execute_job(job)
        except Exception as exc:
            seconds = time.perf_counter() - started  # repro-san: ignore[DET001] -- wall-clock job timing for the runner telemetry footer only; never enters results
            try:
                pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                exc = RuntimeError(
                    _clip("{}: {}".format(type(exc).__name__, exc))
                )
            rows.append(("err", exc, seconds))
        else:
            seconds = time.perf_counter() - started  # repro-san: ignore[DET001] -- wall-clock job timing for the runner telemetry footer only; never enters results
            rows.append(("ok", value, seconds))
    return rows


def _warm_worker():
    """Pool initializer: pre-import the heavy simulation modules so the
    first job a worker receives doesn't pay import cost.  A no-op under
    the fork start method (the child inherits the parent's modules) but
    decisive under spawn."""
    import repro.cluster.rack  # noqa: F401
    import repro.core.server  # noqa: F401
    import repro.workloads.named  # noqa: F401


def _pickle_culprit(job):
    """Name the unpicklable thing in ``job``, as precisely as we can:
    for a dataclass job, probe each field individually so the warning
    reads ``SimJob.arrival_factory`` instead of an opaque lambda repr."""
    import dataclasses

    name = type(job).__name__
    if dataclasses.is_dataclass(job):
        for field in dataclasses.fields(job):
            try:
                pickle.dumps(
                    getattr(job, field.name),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            except Exception:
                return "{}.{}".format(name, field.name)
    return name


class ParallelRunner:
    """Maps job specs to results, in order, with optional parallelism,
    caching, checkpointing, and per-job supervision.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` reads ``$REPRO_JOBS`` (default 1);
        ``<= 0`` means one per core.  1 executes in-process.
    cache:
        Optional :class:`~repro.parallel.cache.ResultCache`.  Jobs whose
        stable content hash is already stored are not re-simulated.
    chunksize:
        Jobs per pool task.  Default: batch split into ~4 chunks per
        worker, so stragglers (high-load points take longest) rebalance.
        Ignored (forced to 1) when ``job_timeout`` is set — watchdog
        precision needs per-job tasks.
    checkpoint:
        Optional :class:`~repro.parallel.checkpoint.SweepCheckpoint`.
        Completed jobs are journaled as they land and served back on
        resume; SIGINT/SIGTERM during ``map()`` flushes the journal and
        raises :class:`SweepInterrupted` instead of dying dirty.
    job_timeout:
        Watchdog seconds per job (pooled execution only — an in-process
        job cannot be preempted).  ``None`` disables the watchdog.
    max_retries:
        How many times a hung or worker-killing job is re-dispatched
        before it is quarantined (default 2).
    """

    def __init__(self, jobs=None, cache=None, chunksize=None,
                 checkpoint=None, job_timeout=None, max_retries=2):
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.chunksize = chunksize
        self.checkpoint = checkpoint
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError(
                "job_timeout must be positive seconds or None, got "
                "{!r}".format(job_timeout)
            )
        self.job_timeout = job_timeout
        if max_retries is None:
            max_retries = 2
        if max_retries < 0:
            raise ValueError(
                "max_retries must be >= 0, got {!r}".format(max_retries)
            )
        self.max_retries = int(max_retries)
        self.stats = {
            "jobs_run": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "checkpoint_hits": 0,
            "parallel_batches": 0,
            "serial_batches": 0,
            "fallbacks": 0,
            "retries": 0,
            "timeouts": 0,
            "quarantined": 0,
            "pool_starts": 0,
            "pool_reuses": 0,
        }
        #: Quarantined records, in the order the supervisor gave up.
        self.quarantined = []
        #: Per-job wall times and hit/miss counters land here; the sweep
        #: CLI prints :meth:`summary_line` from it.
        self.telemetry = TelemetryRegistry()
        self._warned_fallback = False
        #: Persistent worker pool, started on the first parallel batch and
        #: reused until :meth:`close` — forking per batch is what made the
        #: original runner slower than serial on small sweeps.
        self._pool = None
        self._pool_workers = 0
        #: Wall seconds spent supervising parallel dispatch, versus the
        #: in-worker compute seconds — the footer's speedup estimate.
        self._parallel_wall = 0.0
        #: Monotone count of jobs ever submitted to :meth:`map` — the
        #: positional fallback identity for checkpoint keys.
        self._job_counter = 0
        #: Set by the signal handler installed around checkpointed maps.
        self._interrupted = False

    # -- the public API -----------------------------------------------------

    def map(self, jobs):
        """Execute every job; returns results in input order.

        A slot holds a :class:`Quarantined` record instead of a result
        when supervision gave up on that job (see class docstring)."""
        jobs = list(jobs)
        results = [_MISSING] * len(jobs)
        keys = [None] * len(jobs)
        positions = range(self._job_counter, self._job_counter + len(jobs))
        self._job_counter += len(jobs)
        cache = self.cache
        if cache is not None:
            for i, job in enumerate(jobs):
                key = cache.key_for(job)
                keys[i] = key
                if key is not None:
                    hit, value = cache.get(key)
                    if hit:
                        results[i] = value
            hits = sum(1 for r in results if r is not _MISSING)
            self.stats["cache_hits"] += hits
            self.telemetry.count("runner.cache_hits", hits)
        checkpoint = self.checkpoint
        ck_keys = [None] * len(jobs)
        if checkpoint is not None:
            from repro.parallel.checkpoint import checkpoint_job_key

            ck_hits = 0
            for i, job in enumerate(jobs):
                if results[i] is not _MISSING:
                    continue
                ck_keys[i] = checkpoint_job_key(job, positions[i])
                hit, value = checkpoint.get(ck_keys[i])
                if hit:
                    results[i] = value
                    ck_hits += 1
                    if cache is not None and keys[i] is not None:
                        cache.put(keys[i], value)
            self.stats["checkpoint_hits"] += ck_hits
            self.telemetry.count("runner.checkpoint_hits", ck_hits)
        pending = [i for i, r in enumerate(results) if r is _MISSING]
        if pending:
            def deliver(j, value, seconds):
                # Called the moment a job settles — journal and cache it
                # immediately so nothing completed can be lost later.
                i = pending[j]
                self.telemetry.sample("runner.job_seconds", i, seconds)
                if cache is not None and keys[i] is not None:
                    cache.put(keys[i], value)
                if checkpoint is not None and ck_keys[i] is not None:
                    checkpoint.record(ck_keys[i], value)

            with self._supervised():
                outputs = self._execute(
                    [jobs[i] for i in pending], on_result=deliver
                )
            completed = 0
            for j, i in enumerate(pending):
                value, _seconds = outputs[j]
                results[i] = value
                if not isinstance(value, Quarantined):
                    completed += 1
            self.stats["jobs_run"] += completed
            self.telemetry.count("runner.jobs_run", completed)
            if cache is not None:
                self.stats["cache_misses"] += len(pending)
                self.telemetry.count("runner.cache_misses", len(pending))
        return results

    def run(self, job):
        """Execute a single job (cache- and checkpoint-aware)."""
        return self.map([job])[0]

    # -- interrupt supervision ----------------------------------------------

    @contextmanager
    def _supervised(self):
        """Install SIGINT/SIGTERM handlers around a checkpointed map so
        an interrupt flushes the journal and stops between jobs instead
        of tearing mid-write.  A second signal aborts immediately."""
        if self.checkpoint is None or (
            threading.current_thread() is not threading.main_thread()
        ):
            yield
            return
        self._interrupted = False
        previous = {}

        def handler(signum, frame):
            if self._interrupted:
                raise KeyboardInterrupt
            self._interrupted = True

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # non-main interpreter quirks
                pass
        try:
            yield
        finally:
            for sig, prev in previous.items():
                signal.signal(sig, prev)

    def _check_interrupt(self):
        if not self._interrupted:
            return
        checkpoint = self.checkpoint
        self.close()
        if checkpoint is not None:
            checkpoint.flush()
        raise SweepInterrupted(
            str(checkpoint.path) if checkpoint is not None else None,
            len(checkpoint) if checkpoint is not None else 0,
        )

    # -- execution strategies ----------------------------------------------

    def _execute(self, batch, on_result=None):
        """Run ``batch``, returning ``[(value, seconds), ...]`` aligned
        with it; ``on_result(index, value, seconds)`` fires as each job
        settles (quarantined slots excepted)."""
        outputs = [_MISSING] * len(batch)

        def settle(i, value, seconds):
            outputs[i] = (value, seconds)
            if on_result is not None and not isinstance(value, Quarantined):
                on_result(i, value, seconds)

        workers = min(self.jobs, len(batch))
        if workers > 1 and self._picklable(batch):
            try:
                self._execute_pool(batch, workers, outputs, settle)
            except OSError as exc:
                # Pool creation can fail in sandboxed/restricted
                # environments; the results must not.  Whatever already
                # finished is kept — only the remainder runs in-process.
                unfinished = sum(1 for o in outputs if o is _MISSING)
                self._note_fallback(
                    "process pool unavailable ({}); running {} unfinished "
                    "job(s) in-process".format(_clip(str(exc)), unfinished)
                )
        remainder = [i for i, o in enumerate(outputs) if o is _MISSING]
        if remainder:
            self.stats["serial_batches"] += 1
            for i in remainder:
                self._check_interrupt()
                value, seconds = _run_timed(batch[i])
                settle(i, value, seconds)
        return outputs

    def _picklable(self, batch):
        """Lazily probe the batch: stop at the first unpicklable job and
        name its offending field, without ever pickling the batch twice."""
        for job in batch:
            try:
                pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                culprit = _pickle_culprit(job)
                detail = " (culprit: {})".format(culprit) if culprit else ""
                self._note_fallback(
                    "job batch is not picklable ({}){}; running {} job(s) "
                    "in-process".format(_clip(str(exc)), detail, len(batch))
                )
                return False
        return True

    def _note_fallback(self, reason):
        """Count a degradation to serial execution, warning once per
        runner — results stay bit-identical, only wall-clock suffers."""
        self.stats["fallbacks"] += 1
        if not self._warned_fallback:
            self._warned_fallback = True
            warnings.warn(
                "ParallelRunner(jobs={}) fell back to serial execution: "
                "{}".format(self.jobs, reason),
                RuntimeWarning,
                stacklevel=5,
            )

    def _get_pool(self, workers):
        """The persistent pool, started on first use and reused across
        batches (warm imports, no per-batch fork cost)."""
        if self._pool is not None and self._pool_workers >= workers:
            self.stats["pool_reuses"] += 1
            return self._pool
        self.close()
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        self._pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=context,
            initializer=_warm_worker,
        )
        self._pool_workers = workers
        self.stats["pool_starts"] += 1
        return self._pool

    def _chunk(self, pending, workers, singleton):
        if singleton:
            return [[i] for i in pending]
        chunksize = self.chunksize or max(
            1, (len(pending) + 4 * workers - 1) // (4 * workers)
        )
        return [
            pending[k:k + chunksize]
            for k in range(0, len(pending), chunksize)
        ]

    def _execute_pool(self, batch, workers, outputs, settle):
        """Asynchronous, supervised pool dispatch.

        Chunks are submitted as independent futures and collected as they
        finish, so a hung or crashing job never takes finished results
        with it.  Each failure round terminates the pool, blames the
        culpable jobs, and re-dispatches the survivors as singleton
        tasks; a job that exhausts ``max_retries`` is quarantined.
        Raises ``OSError`` only when the pool itself cannot run — the
        caller then finishes the (salvaged) remainder in-process."""
        pending = [i for i, o in enumerate(outputs) if o is _MISSING]
        attempts = [0] * len(batch)
        error = None
        round_num = 0
        while pending:
            # Watchdog rounds and retry rounds use singleton tasks: the
            # blame for a timeout or a dead worker must land on one job.
            singleton = round_num > 0 or self.job_timeout is not None
            chunks = self._chunk(pending, workers, singleton)
            pool = self._get_pool(workers)
            started = time.perf_counter()  # repro-san: ignore[DET001] -- wall-clock batch timing for the runner footer only; never enters results
            futures = {}
            submit_error = None
            for chunk in chunks:
                try:
                    fut = pool.submit(
                        _run_timed_batch, [batch[i] for i in chunk]
                    )
                except (OSError, RuntimeError) as exc:
                    # Couldn't start/feed workers; collect what was
                    # already submitted, then report the pool unusable.
                    submit_error = exc
                    break
                futures[fut] = chunk
            if futures:
                self.stats["parallel_batches"] += 1
            blamed, broken = self._collect(
                batch, futures, settle, attempts
            )
            self._parallel_wall += time.perf_counter() - started  # repro-san: ignore[DET001] -- wall-clock batch timing for the runner footer only; never enters results
            if broken or submit_error is not None:
                self.close()
            # Errors raised *by a job* are deterministic: re-raise after
            # the whole round settled (and was checkpointed).  Raising
            # the lowest job index keeps *which* error surfaces
            # independent of future-completion order.
            if error is None and blamed["errors"]:
                error = blamed["errors"][min(blamed["errors"])]
            if error is not None:
                raise error
            survivors = [i for i in pending if outputs[i] is _MISSING]
            if submit_error is not None:
                raise OSError(
                    "worker pool failed mid-batch: {}".format(
                        _clip(str(submit_error))
                    )
                ) from submit_error
            if not survivors:
                return
            retried = []
            for i in survivors:
                if i in blamed["jobs"]:
                    attempts[i] += 1
                    if attempts[i] > self.max_retries:
                        self._quarantine(
                            batch[i], attempts[i], blamed["jobs"][i], settle,
                            i,
                        )
                        continue
                retried.append(i)
            self.stats["retries"] += sum(
                1 for i in retried if i in blamed["jobs"]
            )
            pending = retried
            round_num += 1

    def _collect(self, batch, futures, settle, attempts):
        """Drain the in-flight future set, settling jobs as they land.

        Returns ``(blamed, broken)`` where ``blamed["jobs"]`` maps job
        index -> failure reason for this round and ``blamed["errors"]``
        maps job index -> the exception that *job* raised (as opposed to
        the infrastructure failing around it)."""
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        blamed = {"jobs": {}, "errors": {}}
        broken = False
        pool_dead = False
        #: fut -> monotonic lapse time, armed only once the task is
        #: observed *running*.  Arming at submit time would charge
        #: queue-wait against the job's own timeout: with more pending
        #: jobs than workers, queued-but-never-started jobs would lapse,
        #: be blamed as hung, and eventually be quarantined while
        #: perfectly healthy.
        deadlines = {}
        not_done = set(futures)
        while not_done:
            self._check_interrupt()
            if self.job_timeout is not None and not pool_dead:
                now = time.monotonic()  # repro-san: ignore[DET001] -- watchdog arming for supervision only; never enters results
                for fut in not_done:  # repro-san: ignore[DET003] -- supervision-only scan: arming order cannot reach results
                    if fut not in deadlines and fut.running():
                        deadlines[fut] = now + (
                            self.job_timeout * len(futures[fut])
                        )
            done, not_done = wait(
                not_done, timeout=_POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            for fut in done:
                chunk = futures[fut]
                try:
                    rows = fut.result()
                except BrokenProcessPool:
                    # A worker died mid-task.  Blame the chunk's
                    # unfinished jobs; everything already settled stays.
                    broken = True
                    pool_dead = True
                    for i in chunk:
                        blamed["jobs"].setdefault(
                            i, "worker process died (crash or kill)"
                        )
                    continue
                except Exception as exc:
                    # A task-level failure (e.g. an unpicklable return
                    # value) leaves the pool alive and its other tasks
                    # running — recycle it conservatively at round end,
                    # but keep the watchdog armed meanwhile.
                    broken = True
                    for i in chunk:
                        blamed["jobs"].setdefault(
                            i, "pool task failed: {}".format(_clip(str(exc)))
                        )
                    continue
                for i, (status, payload, seconds) in zip(chunk, rows):
                    if status == "ok":
                        settle(i, payload, seconds)
                    else:
                        blamed["errors"].setdefault(i, payload)
            if pool_dead:
                # Once the pool is dead every remaining future resolves
                # broken too; keep draining so they are all accounted.
                continue
            now = time.monotonic()  # repro-san: ignore[DET001] -- watchdog deadline check for supervision only; never enters results
            timed_out = [
                fut for fut in not_done  # repro-san: ignore[DET003] -- supervision-only scan: every lapsed future is blamed identically, so set order cannot reach results
                if fut in deadlines and now > deadlines[fut]
            ]
            if timed_out:
                # A hung worker cannot be interrupted individually; the
                # whole pool is recycled.  Blame only the jobs whose own
                # deadline lapsed — in-flight innocents just re-run.
                self.stats["timeouts"] += len(timed_out)
                for fut in timed_out:
                    for i in futures[fut]:
                        blamed["jobs"][i] = (
                            "hung past the {:g}s watchdog".format(
                                self.job_timeout
                            )
                        )
                broken = True
                break
        return blamed, broken

    def _quarantine(self, job, attempts, reason, settle, index):
        record = Quarantined(job=job, reason=reason, attempts=attempts)
        self.quarantined.append(record)
        self.stats["quarantined"] += 1
        self.telemetry.count("runner.quarantined", 1)
        warnings.warn(
            "quarantined {}".format(record.describe()),
            RuntimeWarning,
            stacklevel=6,
        )
        settle(index, record, 0.0)

    def close(self):
        """Terminate the persistent worker pool (if any), killing hung
        workers.  The runner stays usable — the next parallel batch
        starts a fresh pool."""
        pool = self._pool
        self._pool = None
        self._pool_workers = 0
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            # shutdown() never kills a stuck worker; the watchdog needs
            # them gone before the retry round.
            procs = getattr(pool, "_processes", None) or {}
            for proc in list(procs.values()):
                try:
                    proc.terminate()
                except Exception:
                    pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def parallel_speedup(self):
        """Measured speedup of parallel batches over their estimated
        serial cost (in-worker compute seconds vs pool wall seconds), or
        None when no parallel batch has run.  A value below 1.0 means the
        pool made the sweep *slower* — the regression the footer exists
        to surface."""
        if not self._parallel_wall:
            return None
        series = self.telemetry.series.get("runner.job_seconds")
        samples = series.samples if series is not None else []
        compute = sum(v for _i, v in samples)
        if compute <= 0.0:
            return None
        return compute / self._parallel_wall

    def summary_line(self):
        """One-line telemetry footer for sweep CLIs: jobs run, cache
        hit/miss split, checkpoint traffic, total and slowest per-job
        wall time, retry/quarantine counts (with culprits named), and —
        when a pool ran — parallel wall vs estimated serial cost, so a
        sweep that parallelized into a *slowdown* can never report
        quietly."""
        series = self.telemetry.series.get("runner.job_seconds")
        samples = series.samples if series is not None else []
        total = sum(v for _i, v in samples)
        slowest = max((v for _i, v in samples), default=0.0)
        cache_part = "no cache"
        if self.cache is not None:
            cache_part = "{} cache hits, {} misses".format(
                self.stats["cache_hits"], self.stats["cache_misses"]
            )
        parts = [
            "{} jobs simulated in {:.1f}s wall (slowest {:.1f}s)".format(
                self.stats["jobs_run"], total, slowest
            ),
            cache_part,
            "jobs={}".format(self.jobs),
        ]
        if self.checkpoint is not None:
            parts.append("checkpoint {} hits, {} appends".format(
                self.stats["checkpoint_hits"], self.checkpoint.appends
            ))
        if self.stats["retries"]:
            parts.append("{} retries".format(self.stats["retries"]))
        speedup = self.parallel_speedup()
        if speedup is not None:
            parts.append(
                "parallel {:.1f}s vs {:.1f}s serial-est ({:.2f}x{})".format(
                    self._parallel_wall, total, speedup,
                    "" if speedup >= 1.0 else " — SLOWER than serial",
                )
            )
        if self.quarantined:
            named = "; ".join(
                q.describe() for q in self.quarantined[:3]
            )
            if len(self.quarantined) > 3:
                named += "; ..."
            parts.append("QUARANTINED {}: {}".format(
                len(self.quarantined), named
            ))
        return "[runner: {}]".format(", ".join(parts))

    def __repr__(self):
        return "ParallelRunner(jobs={}, cache={!r})".format(
            self.jobs, self.cache
        )


# -- ambient default runner -------------------------------------------------
#
# Experiment entry points are plain ``run(quality, seed)`` functions; the
# default runner is how ``--jobs``/``--cache-dir`` reach every sweep they
# trigger without threading a parameter through 18 signatures.  Library
# callers can still pass an explicit ``runner=`` to any sweep API.

_default_runner = None


def get_default_runner():
    """The process-wide runner (created lazily; honors ``$REPRO_JOBS``)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ParallelRunner()
    return _default_runner


def set_default_runner(runner):
    """Install ``runner`` as the process-wide default (None resets)."""
    global _default_runner
    _default_runner = runner


@contextmanager
def using_runner(runner):
    """Temporarily install ``runner`` as the default."""
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    try:
        yield runner
    finally:
        _default_runner = previous
