"""Discrete-event simulation engine.

The engine is deliberately small: an event heap keyed by integer timestamps
(CPU cycles), a :class:`Simulator` that drains it, and seeded random-number
streams.  Higher layers (:mod:`repro.core`) build scheduler agents on top.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.rng import RngStreams
from repro.sim.process import Agent

__all__ = ["Event", "Simulator", "SimulationError", "RngStreams", "Agent"]
