"""Core event loop for the discrete-event simulator.

Time is an integer number of CPU cycles.  Events are callbacks scheduled at
absolute timestamps; ties are broken by a monotonically increasing sequence
number so execution order is deterministic and FIFO among same-time events.
That ``(time, seq)`` tie-break rule is the contract shared by every queue
backend: any two backends drain the same schedule in exactly the same
order, so simulation results are bit-identical across backends.

Two queue backends implement the contract:

``heap`` (default)
    A binary heap of ``(time, seq, ...)`` tuples (C-level tuple compares)
    with counted lazy cancellation and amortized in-place compaction.
``wheel``
    A hierarchical timing wheel (:mod:`repro.sim.wheel`) with O(1)
    schedule/cancel, bitmap slot occupancy, and lazy cascading.

Select with ``Simulator(queue="heap"|"wheel")`` or the ``REPRO_QUEUE``
environment variable.

Scheduling comes in two shapes:

* ``schedule`` / ``at`` / ``after`` return an :class:`Event` handle that
  may be cancelled.  Cancellation is lazy (the entry stays queued and is
  skipped when reached), but not unbounded: dead entries are counted and
  the queue compacts once they exceed :data:`COMPACT_MIN_DEAD` *and* make
  up more than half the queue.
* ``post`` / ``post_at`` are fire-and-forget: no handle is allocated, so
  they cannot be cancelled — and they skip the :class:`Event` allocation
  that dominates the scheduling cost.  The core runtime uses them for the
  completion/arrival timers it never cancels.

Queue entries are therefore either ``(time, seq, event)`` triples or
``(time, seq, None, callback, name)`` fire-and-forget tuples; ``entry[2]
is None`` distinguishes them and the unique ``seq`` guarantees ordering
comparisons never reach the mismatched tails.
"""

import heapq
import os
import warnings

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "COMPACT_MIN_DEAD",
    "resolve_queue",
]

#: Compaction never triggers below this many dead queue entries; above it,
#: the queue is swept whenever dead entries outnumber live ones.  The scan
#: is O(queue) and removes >= half the entries, so total compaction work is
#: amortized O(1) per cancellation.
COMPACT_MIN_DEAD = 256

_QUEUE_KINDS = ("heap", "wheel")


def resolve_queue(queue=None):
    """Normalize a queue-backend name: explicit argument, else
    ``$REPRO_QUEUE``, else ``"heap"``.

    Both backends drain any schedule in the same (time, seq) order, so the
    choice never changes simulation results — only wall-clock speed.
    """
    if queue is None:
        # Backend selection only: results are bit-identical across
        # backends (enforced by tests/test_sim_wheel.py differentials).
        queue = os.environ.get("REPRO_QUEUE", "").strip() or "heap"  # repro-san: ignore[DET005] -- queue backend selection; backends are proven bit-identical, so this ambient read cannot change results
    if queue not in _QUEUE_KINDS:
        raise ValueError(
            "unknown queue backend {!r}; known: {}".format(
                queue, ", ".join(_QUEUE_KINDS)
            )
        )
    return queue


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` (or the ``at`` /
    ``after`` convenience wrappers) and may be cancelled before firing.
    Cancellation is lazy: the queue entry stays put and is discarded when
    reached (or swept out by queue compaction).
    """

    __slots__ = ("time", "callback", "name", "cancelled", "_sim")

    def __init__(self, time, callback, name, sim=None):
        self.time = time
        self.callback = callback
        self.name = name
        self.cancelled = False
        # Back-reference for cancellation accounting; detached (set to
        # None) once the event leaves the queue, so late cancels of already
        # fired events stay cheap and don't skew the dead-entry count.
        self._sim = sim

    def cancel(self):
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return "Event(t={}, name={!r}{})".format(self.time, self.name, state)


_new_event = Event.__new__


class Simulator:
    """Drains an event queue in ``(time, seq)`` order.

    Parameters
    ----------
    trace:
        Deprecated: optional callable invoked as ``trace(time, name)``
        before each event fires.  Use the probe bus instead
        (:meth:`attach_probes`, or a :func:`repro.obs.session.tracing`
        session with ``engine_events=True``); the callback still works
        through a compatibility shim.
    queue:
        Event-queue backend: ``"heap"`` (default) or ``"wheel"``.
        ``None`` consults ``$REPRO_QUEUE``.  Backends are bit-identical;
        see docs/performance.md for how to choose.
    """

    def __new__(cls, trace=None, queue=None):
        if cls is Simulator and resolve_queue(queue) == "wheel":
            from repro.sim.wheel import WheelSimulator

            return object.__new__(WheelSimulator)
        return object.__new__(cls)

    def __init__(self, trace=None, queue=None):
        if trace is not None:
            warnings.warn(
                "Simulator(trace=...) is deprecated; attach a probe bus "
                "instead (Simulator.attach_probes, or repro.obs.tracing "
                "with TraceConfig(engine_events=True))",
                DeprecationWarning,
                stacklevel=2,
            )
        self.now = 0
        self._heap = []
        self._seq = 0
        self._trace = trace
        self._events_run = 0
        self._events_cancelled = 0
        self._dead_in_heap = 0
        self._compactions = 0
        self._running = False

    @property
    def queue(self):
        """Name of the active event-queue backend."""
        return "heap"

    def attach_probes(self, bus):
        """Feed every fired event into ``bus.sim_event(time, name)``.

        This is the probe-bus replacement for the deprecated ``trace``
        callback; if a legacy callback is also installed the two compose
        (callback first, then the bus).  The drain loop is unchanged:
        the sink rides the existing hoisted trace branch, so the
        no-observer path stays exactly as fast.
        """
        sink = bus.sim_event
        prev = self._trace
        if prev is None:
            self._trace = sink
        else:
            def fanout(time, name):
                prev(time, name)
                sink(time, name)

            self._trace = fanout
        return self

    # -- scheduling ---------------------------------------------------------
    #
    # schedule/after/post are the hottest entry points in the package, so
    # each inlines validation + Event construction + push rather than
    # layering through a shared helper (a call frame per event is ~15% of
    # the whole loop).  The wheel backend overrides all four with the same
    # structure; keep them in sync.

    def schedule(self, time, callback, name=""):
        """Schedule ``callback`` at absolute cycle ``time``.

        Returns the :class:`Event`, which may be cancelled.
        """
        if time.__class__ is not int:
            time = int(time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule event {!r} at t={} before now={}".format(
                    name, time, self.now
                )
            )
        event = _new_event(Event)
        event.time = time
        event.callback = callback
        event.name = name
        event.cancelled = False
        event._sim = self
        seq = self._seq = self._seq + 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def at(self, time, callback, name=""):
        """Alias for :meth:`schedule` (absolute time)."""
        return self.schedule(time, callback, name)

    def after(self, delay, callback, name=""):
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(
                "negative delay {} for event {!r}".format(delay, name)
            )
        if delay.__class__ is not int:
            delay = int(delay)
        time = self.now + delay
        event = _new_event(Event)
        event.time = time
        event.callback = callback
        event.name = name
        event.cancelled = False
        event._sim = self
        seq = self._seq = self._seq + 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def post(self, delay, callback, name=""):
        """Fire-and-forget :meth:`after`: no :class:`Event` handle is
        allocated, so the timer cannot be cancelled — and scheduling is
        roughly 2x cheaper.  Use for timers that always fire."""
        if delay < 0:
            raise SimulationError(
                "negative delay {} for event {!r}".format(delay, name)
            )
        if delay.__class__ is not int:
            delay = int(delay)
        seq = self._seq = self._seq + 1
        heapq.heappush(
            self._heap, (self.now + delay, seq, None, callback, name)
        )

    def post_at(self, time, callback, name=""):
        """Fire-and-forget :meth:`schedule` (absolute time, no handle)."""
        if time.__class__ is not int:
            time = int(time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule event {!r} at t={} before now={}".format(
                    name, time, self.now
                )
            )
        seq = self._seq = self._seq + 1
        heapq.heappush(self._heap, (time, seq, None, callback, name))

    # -- cancellation accounting -------------------------------------------

    def _note_cancel(self):
        """A live queue entry was just cancelled; compact if dead entries
        dominate."""
        self._events_cancelled += 1
        dead = self._dead_in_heap + 1
        self._dead_in_heap = dead
        if dead >= COMPACT_MIN_DEAD and dead * 2 >= len(self._heap):
            self.compact()

    def compact(self):
        """Rebuild the heap without cancelled entries, in place.

        In-place (slice assignment) so aliases of the heap list held by a
        running :meth:`run` loop stay valid.  Relative order of live events
        is untouched: entries keep their ``(time, seq)`` keys.
        """
        heap = self._heap
        live = [e for e in heap if e[2] is None or not e[2].cancelled]
        if len(live) != len(heap):
            heap[:] = live
            heapq.heapify(heap)
        self._dead_in_heap = 0
        self._compactions += 1

    # -- execution ------------------------------------------------------------

    def step(self):
        """Run the next pending event.  Returns False when the queue is
        empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = pop(heap)
            event = entry[2]
            if event is None:
                self.now = entry[0]
                if self._trace is not None:
                    self._trace(entry[0], entry[4])
                self._events_run += 1
                entry[3]()
                return True
            if event.cancelled:
                self._dead_in_heap -= 1
                continue
            event._sim = None
            self.now = entry[0]
            if self._trace is not None:
                self._trace(entry[0], event.name)
            self._events_run += 1
            event.callback()
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run until the queue drains, ``until`` cycles pass, or
        ``max_events`` events have executed — whichever comes first.

        Returns the number of events executed during this call.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        trace = self._trace
        executed = 0
        try:
            if until is None and max_events is None:
                # Hot path: drain everything with minimal bookkeeping (no
                # bound checks; the trace branch is hoisted out of the loop).
                if trace is None:
                    while heap:
                        entry = pop(heap)
                        event = entry[2]
                        if event is None:
                            self.now = entry[0]
                            entry[3]()
                            executed += 1
                            continue
                        if event.cancelled:
                            self._dead_in_heap -= 1
                            continue
                        event._sim = None
                        self.now = entry[0]
                        event.callback()
                        executed += 1
                else:
                    while heap:
                        entry = pop(heap)
                        event = entry[2]
                        if event is None:
                            self.now = entry[0]
                            trace(entry[0], entry[4])
                            entry[3]()
                            executed += 1
                            continue
                        if event.cancelled:
                            self._dead_in_heap -= 1
                            continue
                        event._sim = None
                        self.now = entry[0]
                        trace(entry[0], event.name)
                        event.callback()
                        executed += 1
                self._events_run += executed
                return executed
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                head = heap[0]
                event = head[2]
                if event is not None and event.cancelled:
                    pop(heap)
                    self._dead_in_heap -= 1
                    continue
                if until is not None and head[0] > until:
                    self.now = int(until)
                    break
                pop(heap)
                self.now = head[0]
                if event is None:
                    if trace is not None:
                        trace(head[0], head[4])
                    head[3]()
                else:
                    event._sim = None
                    if trace is not None:
                        trace(head[0], event.name)
                    event.callback()
                executed += 1
            else:
                if until is not None and until > self.now:
                    self.now = int(until)
            self._events_run += executed
        finally:
            self._running = False
        return executed

    # -- introspection ----------------------------------------------------------

    @property
    def pending(self):
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._heap) - self._dead_in_heap

    @property
    def events_run(self):
        """Total events executed over the simulator's lifetime."""
        return self._events_run

    @property
    def events_cancelled(self):
        """Total events cancelled (before firing) over the lifetime."""
        return self._events_cancelled

    @property
    def heap_size(self):
        """Raw queue entries, live plus not-yet-swept cancelled ones.

        Named for the default backend; the wheel backend reports its own
        raw entry count here (never a stale heap number).
        """
        return len(self._heap)

    @property
    def dead_in_heap(self):
        """Cancelled entries still occupying queue slots."""
        return self._dead_in_heap

    @property
    def compactions(self):
        """Times the queue was swept to shed cancelled entries."""
        return self._compactions

    def peek_time(self):
        """Timestamp of the next live event, or None if the queue is
        empty."""
        heap = self._heap
        while heap:
            event = heap[0][2]
            if event is None or not event.cancelled:
                return heap[0][0]
            heapq.heappop(heap)
            self._dead_in_heap -= 1
        return None
