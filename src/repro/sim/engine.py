"""Core event loop for the discrete-event simulator.

Time is an integer number of CPU cycles.  Events are callbacks scheduled at
absolute timestamps; ties are broken by a monotonically increasing sequence
number so execution order is deterministic and FIFO among same-time events.

The heap stores ``(time, seq, event)`` tuples so ordering comparisons run as
C-level tuple compares — this loop is the hottest code in the package.
"""

import heapq

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` (or the ``at`` /
    ``after`` convenience wrappers) and may be cancelled before firing.
    Cancellation is lazy: the heap entry stays put and is discarded when
    popped.
    """

    __slots__ = ("time", "callback", "name", "cancelled")

    def __init__(self, time, callback, name):
        self.time = time
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self):
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return "Event(t={}, name={!r}{})".format(self.time, self.name, state)


class Simulator:
    """Drains an event heap in timestamp order.

    Parameters
    ----------
    trace:
        Optional callable invoked as ``trace(time, name)`` before each event
        fires; useful for debugging schedules.
    """

    def __init__(self, trace=None):
        self.now = 0
        self._heap = []
        self._seq = 0
        self._trace = trace
        self._events_run = 0
        self._running = False

    # -- scheduling ---------------------------------------------------------

    def schedule(self, time, callback, name=""):
        """Schedule ``callback`` at absolute cycle ``time``.

        Returns the :class:`Event`, which may be cancelled.
        """
        time = int(time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule event {!r} at t={} before now={}".format(
                    name, time, self.now
                )
            )
        event = Event(time, callback, name)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def at(self, time, callback, name=""):
        """Alias for :meth:`schedule` (absolute time)."""
        return self.schedule(time, callback, name)

    def after(self, delay, callback, name=""):
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(
                "negative delay {} for event {!r}".format(delay, name)
            )
        return self.schedule(self.now + int(delay), callback, name)

    # -- execution ------------------------------------------------------------

    def step(self):
        """Run the next pending event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self.now = time
            if self._trace is not None:
                self._trace(time, event.name)
            self._events_run += 1
            event.callback()
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run until the heap drains, ``until`` cycles pass, or ``max_events``
        events have executed — whichever comes first.

        Returns the number of events executed during this call.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        trace = self._trace
        executed = 0
        try:
            if until is None and max_events is None and trace is None:
                # Hot path: drain everything with minimal bookkeeping.
                while heap:
                    time, _seq, event = pop(heap)
                    if event.cancelled:
                        continue
                    self.now = time
                    event.callback()
                    executed += 1
                self._events_run += executed
                return executed
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                head = heap[0]
                if head[2].cancelled:
                    pop(heap)
                    continue
                if until is not None and head[0] > until:
                    self.now = int(until)
                    break
                if not self.step():
                    break
                executed += 1
            else:
                if until is not None and until > self.now:
                    self.now = int(until)
        finally:
            self._running = False
        return executed

    # -- introspection ----------------------------------------------------------

    @property
    def pending(self):
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, e in self._heap if not e.cancelled)

    @property
    def events_run(self):
        """Total events executed over the simulator's lifetime."""
        return self._events_run

    def peek_time(self):
        """Timestamp of the next live event, or None if the heap is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None
