"""Core event loop for the discrete-event simulator.

Time is an integer number of CPU cycles.  Events are callbacks scheduled at
absolute timestamps; ties are broken by a monotonically increasing sequence
number so execution order is deterministic and FIFO among same-time events.

The heap stores ``(time, seq, event)`` tuples so ordering comparisons run as
C-level tuple compares — this loop is the hottest code in the package.

Cancellation is lazy (the heap entry stays put and is skipped when popped),
but no longer unbounded: the simulator counts dead entries still in the heap
and compacts in place once they exceed :data:`COMPACT_MIN_DEAD` *and* make
up more than half the heap.  Preemption-heavy runs (every quantum re-arm
cancels the previous timer) would otherwise carry thousands of dead tuples
through every sift.
"""

import heapq
import warnings

__all__ = ["Event", "Simulator", "SimulationError", "COMPACT_MIN_DEAD"]

#: Compaction never triggers below this many dead heap entries; above it,
#: the heap is rebuilt whenever dead entries outnumber live ones.  The scan
#: is O(heap) and removes >= half the entries, so total compaction work is
#: amortized O(1) per cancellation.
COMPACT_MIN_DEAD = 256


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` (or the ``at`` /
    ``after`` convenience wrappers) and may be cancelled before firing.
    Cancellation is lazy: the heap entry stays put and is discarded when
    popped (or swept out by heap compaction).
    """

    __slots__ = ("time", "callback", "name", "cancelled", "_sim")

    def __init__(self, time, callback, name, sim=None):
        self.time = time
        self.callback = callback
        self.name = name
        self.cancelled = False
        # Back-reference for cancellation accounting; detached (set to
        # None) once the event leaves the heap, so late cancels of already
        # fired events stay cheap and don't skew the dead-entry count.
        self._sim = sim

    def cancel(self):
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    def __repr__(self):
        state = " cancelled" if self.cancelled else ""
        return "Event(t={}, name={!r}{})".format(self.time, self.name, state)


class Simulator:
    """Drains an event heap in timestamp order.

    Parameters
    ----------
    trace:
        Deprecated: optional callable invoked as ``trace(time, name)``
        before each event fires.  Use the probe bus instead
        (:meth:`attach_probes`, or a :func:`repro.obs.session.tracing`
        session with ``engine_events=True``); the callback still works
        through a compatibility shim.
    """

    def __init__(self, trace=None):
        if trace is not None:
            warnings.warn(
                "Simulator(trace=...) is deprecated; attach a probe bus "
                "instead (Simulator.attach_probes, or repro.obs.tracing "
                "with TraceConfig(engine_events=True))",
                DeprecationWarning,
                stacklevel=2,
            )
        self.now = 0
        self._heap = []
        self._seq = 0
        self._trace = trace
        self._events_run = 0
        self._events_cancelled = 0
        self._dead_in_heap = 0
        self._compactions = 0
        self._running = False

    def attach_probes(self, bus):
        """Feed every fired event into ``bus.sim_event(time, name)``.

        This is the probe-bus replacement for the deprecated ``trace``
        callback; if a legacy callback is also installed the two compose
        (callback first, then the bus).  The drain loop is unchanged:
        the sink rides the existing hoisted trace branch, so the
        no-observer path stays exactly as fast.
        """
        sink = bus.sim_event
        prev = self._trace
        if prev is None:
            self._trace = sink
        else:
            def fanout(time, name):
                prev(time, name)
                sink(time, name)

            self._trace = fanout
        return self

    # -- scheduling ---------------------------------------------------------

    def schedule(self, time, callback, name=""):
        """Schedule ``callback`` at absolute cycle ``time``.

        Returns the :class:`Event`, which may be cancelled.
        """
        time = int(time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule event {!r} at t={} before now={}".format(
                    name, time, self.now
                )
            )
        event = Event(time, callback, name, self)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def at(self, time, callback, name=""):
        """Alias for :meth:`schedule` (absolute time)."""
        return self.schedule(time, callback, name)

    def after(self, delay, callback, name=""):
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(
                "negative delay {} for event {!r}".format(delay, name)
            )
        return self.schedule(self.now + int(delay), callback, name)

    # -- cancellation accounting -------------------------------------------

    def _note_cancel(self):
        """A live heap entry was just cancelled; compact if dead entries
        dominate."""
        self._events_cancelled += 1
        dead = self._dead_in_heap + 1
        self._dead_in_heap = dead
        if dead >= COMPACT_MIN_DEAD and dead * 2 >= len(self._heap):
            self.compact()

    def compact(self):
        """Rebuild the heap without cancelled entries, in place.

        In-place (slice assignment) so aliases of the heap list held by a
        running :meth:`run` loop stay valid.  Relative order of live events
        is untouched: entries keep their ``(time, seq)`` keys.
        """
        heap = self._heap
        live = [entry for entry in heap if not entry[2].cancelled]
        if len(live) != len(heap):
            heap[:] = live
            heapq.heapify(heap)
        self._dead_in_heap = 0
        self._compactions += 1

    # -- execution ------------------------------------------------------------

    def step(self):
        """Run the next pending event.  Returns False when the heap is empty."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time, _seq, event = pop(heap)
            if event.cancelled:
                self._dead_in_heap -= 1
                continue
            event._sim = None
            self.now = time
            if self._trace is not None:
                self._trace(time, event.name)
            self._events_run += 1
            event.callback()
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run until the heap drains, ``until`` cycles pass, or ``max_events``
        events have executed — whichever comes first.

        Returns the number of events executed during this call.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        trace = self._trace
        executed = 0
        try:
            if until is None and max_events is None:
                # Hot path: drain everything with minimal bookkeeping (no
                # bound checks; the trace branch is hoisted out of the loop).
                if trace is None:
                    while heap:
                        time, _seq, event = pop(heap)
                        if event.cancelled:
                            self._dead_in_heap -= 1
                            continue
                        event._sim = None
                        self.now = time
                        event.callback()
                        executed += 1
                else:
                    while heap:
                        time, _seq, event = pop(heap)
                        if event.cancelled:
                            self._dead_in_heap -= 1
                            continue
                        event._sim = None
                        self.now = time
                        trace(time, event.name)
                        event.callback()
                        executed += 1
                self._events_run += executed
                return executed
            while heap:
                if max_events is not None and executed >= max_events:
                    break
                head = heap[0]
                if head[2].cancelled:
                    pop(heap)
                    self._dead_in_heap -= 1
                    continue
                if until is not None and head[0] > until:
                    self.now = int(until)
                    break
                time, _seq, event = pop(heap)
                event._sim = None
                self.now = time
                if trace is not None:
                    trace(time, event.name)
                event.callback()
                executed += 1
            else:
                if until is not None and until > self.now:
                    self.now = int(until)
            self._events_run += executed
        finally:
            self._running = False
        return executed

    # -- introspection ----------------------------------------------------------

    @property
    def pending(self):
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._heap) - self._dead_in_heap

    @property
    def events_run(self):
        """Total events executed over the simulator's lifetime."""
        return self._events_run

    @property
    def events_cancelled(self):
        """Total events cancelled (before firing) over the lifetime."""
        return self._events_cancelled

    @property
    def heap_size(self):
        """Raw heap entries, live plus not-yet-swept cancelled ones."""
        return len(self._heap)

    @property
    def dead_in_heap(self):
        """Cancelled entries still occupying heap slots."""
        return self._dead_in_heap

    @property
    def compactions(self):
        """Times the heap was rebuilt to shed cancelled entries."""
        return self._compactions

    def peek_time(self):
        """Timestamp of the next live event, or None if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._dead_in_heap -= 1
        return heap[0][0] if heap else None
