"""Agent base class for event-driven simulation actors.

Agents model hardware threads pinned to cores (dispatcher, workers, the
networker).  Each agent owns a *busy-until* timestamp: the simulated thread
executes serial micro-operations, and scheduling work on a busy agent queues
it behind the current operation.  This is how dispatcher saturation and the
"dispatcher busy while worker waits" effect of section 2.2.2 emerge.
"""

__all__ = ["Agent"]


class Agent:
    """A serial execution resource bound to a simulator.

    Subclasses call :meth:`busy_for` to account for cycles consumed by the
    simulated thread and :meth:`when_free` to learn when the next operation
    could start.
    """

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.busy_until = 0
        self.busy_cycles = 0

    def when_free(self):
        """Earliest cycle at which this agent can start new work."""
        return max(self.sim.now, self.busy_until)

    @property
    def is_busy(self):
        return self.busy_until > self.sim.now

    def busy_for(self, cycles, start=None):
        """Consume ``cycles`` of this agent's time, starting no earlier than
        ``start`` (default: when the agent is next free).

        Returns the completion timestamp.
        """
        if cycles < 0:
            raise ValueError("negative busy time: {}".format(cycles))
        begin = self.when_free() if start is None else max(start, self.when_free())
        end = begin + int(cycles)
        self.busy_until = end
        self.busy_cycles += int(cycles)
        return end

    def utilization(self, elapsed):
        """Fraction of ``elapsed`` cycles this agent spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def __repr__(self):
        return "{}(name={!r}, busy_until={})".format(
            type(self).__name__, self.name, self.busy_until
        )
