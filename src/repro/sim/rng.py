"""Seeded random-number streams.

Each simulation component (arrival process, service-time sampler, notice
latency, ...) gets its own named stream derived from a single master seed.
This implements *common random numbers*: two configurations simulated with
the same master seed see identical arrival processes, which sharpens
comparisons between schedulers.
"""

import random

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    >>> streams = RngStreams(42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("service")
    >>> a is streams.stream("arrivals")
    True
    """

    def __init__(self, master_seed):
        self.master_seed = master_seed
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            # Derive a per-stream seed that depends only on the master seed
            # and the stream name, never on creation order.
            seed = (hash_name(name) ^ (self.master_seed * 0x9E3779B97F4A7C15)) & (
                (1 << 64) - 1
            )
            stream = random.Random(seed)
            self._streams[name] = stream
        return stream

    def spawn(self, name):
        """Return a new :class:`RngStreams` keyed off a child seed.

        Useful when a sub-simulation (e.g. one load point of a sweep) needs
        its own family of streams.

        .. note:: ``spawn`` *consumes* randomness from the named stream, so
           its result depends on how much that stream has already been used
           and on how many times ``spawn`` was called.  New code that needs
           stable children (e.g. per-server streams in a rack) should use
           :meth:`spawn_key` instead.
        """
        return RngStreams(self.stream(name).getrandbits(63))

    def spawn_key(self, *key):
        """Return a child :class:`RngStreams` derived from a stable key.

        The child seed is a pure function of ``(master_seed, key)``: unlike
        :meth:`spawn` it draws nothing from any stream, so the same key
        always yields the same child family regardless of call order, call
        count, or how much the parent's streams have been consumed.  Key
        parts may be strings or integers and are joined order-sensitively.

        This is how N cluster servers get independent, reproducibly-derived
        stream families from one master seed:

        >>> master = RngStreams(42)
        >>> a = master.spawn_key("server", 0)
        >>> b = master.spawn_key("server", 1)
        >>> a.master_seed == RngStreams(42).spawn_key("server", 0).master_seed
        True
        >>> a.master_seed != b.master_seed
        True
        """
        if not key:
            raise ValueError("spawn_key needs at least one key part")
        material = "\x1f".join(str(part) for part in key)
        # Same construction as per-stream seeds, but domain-separated with a
        # "spawn:" prefix and an odd offset so a spawned child can never
        # collide with a sibling stream of the same name.
        child_seed = (
            hash_name("spawn:" + material)
            ^ (self.master_seed * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
        ) & ((1 << 64) - 1)
        return RngStreams(child_seed)

    def __repr__(self):
        return "RngStreams(master_seed={})".format(self.master_seed)


def hash_name(name):
    """A stable 64-bit FNV-1a hash (Python's hash() is salted per process)."""
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & ((1 << 64) - 1)
    return value
