"""Seeded random-number streams.

Each simulation component (arrival process, service-time sampler, notice
latency, ...) gets its own named stream derived from a single master seed.
This implements *common random numbers*: two configurations simulated with
the same master seed see identical arrival processes, which sharpens
comparisons between schedulers.
"""

import random

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    >>> streams = RngStreams(42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("service")
    >>> a is streams.stream("arrivals")
    True
    """

    def __init__(self, master_seed):
        self.master_seed = master_seed
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            # Derive a per-stream seed that depends only on the master seed
            # and the stream name, never on creation order.
            seed = (hash_name(name) ^ (self.master_seed * 0x9E3779B97F4A7C15)) & (
                (1 << 64) - 1
            )
            stream = random.Random(seed)
            self._streams[name] = stream
        return stream

    def spawn(self, name):
        """Return a new :class:`RngStreams` keyed off a child seed.

        Useful when a sub-simulation (e.g. one load point of a sweep) needs
        its own family of streams.
        """
        return RngStreams(self.stream(name).getrandbits(63))

    def __repr__(self):
        return "RngStreams(master_seed={})".format(self.master_seed)


def hash_name(name):
    """A stable 64-bit FNV-1a hash (Python's hash() is salted per process)."""
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & ((1 << 64) - 1)
    return value
