"""Hierarchical timing-wheel event queue for the simulator.

Drop-in backend for :class:`repro.sim.engine.Simulator` (select with
``Simulator(queue="wheel")`` or ``REPRO_QUEUE=wheel``).  Same contract as
the heap backend — events drain in ``(time, seq)`` order — so results are
bit-identical; only the queue data structure changes.

Layout (Linux-timer style, aligned pages rather than a rotating ring):

* Four levels of 256 slots.  Level 0 has 1-cycle granularity and covers
  the 256-cycle page around the cursor; each higher level is 256x coarser
  (levels 0-3 together span 2^32 cycles).  Timers beyond 2^32 cycles out
  sit in an overflow heap until the cursor reaches their 2^32 page.
* An entry for time ``t`` lands in the level that matches the highest
  differing bit between ``t`` and the cursor (``d = t ^ cursor``), i.e.
  the coarsest level where the slot index still distinguishes it from
  "now".  Schedule and cancel are O(1); there is no per-event heap
  reshuffle.
* Per-level occupancy bitmaps (one Python int each) find the next
  non-empty slot with two arithmetic ops (``rem & -rem`` isolates the
  lowest set bit), so draining skips empty slots in O(1) instead of
  scanning 256 of them.
* Cascading is lazy: when a page drains, the next occupied higher-level
  bucket is split down into finer slots.  Each entry cascades at most
  three times over its lifetime.

Ordering guarantees, and why they hold:

* The cursor never sits above a queued wheel entry's time: inserts below
  the cursor (possible only after the cursor overshot ``now`` past an
  all-cancelled bucket or an ``until``-bounded run) go to a small
  "overdue" heap that strictly precedes every wheel entry.
* A level-0 bucket holds exactly one timestamp (within a 256-cycle page
  the low byte pins ``t``), so FIFO among same-time events only needs
  the bucket sorted by ``(time, seq)`` — entries cascade in arbitrary
  order but are sorted once when their bucket is drained.

Counter semantics match the heap backend: ``heap_size`` reports raw
queued entries (live + not-yet-swept cancelled), ``dead_in_heap`` counts
cancelled entries still occupying slots, and ``compact()`` sweeps them —
the numbers are wheel-native, never stale heap figures.
"""

import heapq

from repro.sim.engine import (
    COMPACT_MIN_DEAD,
    Event,
    SimulationError,
    Simulator,
)

__all__ = ["WheelSimulator"]

_new_event = Event.__new__

#: Slots per wheel level; one level spans 256x the granularity below it.
SLOTS_PER_LEVEL = 256
#: Wheel levels; beyond ``2 ** (8 * (LEVELS))`` cycles timers overflow to a heap.
LEVELS = 4
_SLOT_MASK = SLOTS_PER_LEVEL - 1
#: Cursor page width covered by the whole wheel (beyond it: overflow heap).
_WHEEL_SPAN_BITS = 32


class WheelSimulator(Simulator):
    """:class:`Simulator` with a hierarchical timing-wheel event queue.

    Constructed via ``Simulator(queue="wheel")`` (preferred) or directly.
    Public behavior is identical to the heap backend, bit for bit; see
    the module docstring for the data-structure details.
    """

    def __init__(self, trace=None, queue=None):
        Simulator.__init__(self, trace)
        self._slots0 = [[] for _ in range(SLOTS_PER_LEVEL)]
        self._slots1 = [[] for _ in range(SLOTS_PER_LEVEL)]
        self._slots2 = [[] for _ in range(SLOTS_PER_LEVEL)]
        self._slots3 = [[] for _ in range(SLOTS_PER_LEVEL)]
        self._occ0 = 0
        self._occ1 = 0
        self._occ2 = 0
        self._occ3 = 0
        #: Timers more than 2^32 cycles out, as a (time, seq, ...) heap.
        self._far = []
        #: Entries scheduled below the cursor after it overshot ``now``
        #: (all-cancelled bucket / bounded run).  Strictly precede every
        #: wheel entry, so they drain first.
        self._overdue = []
        #: Absolute time of the slot the drain scan is at.  Invariant:
        #: no wheel entry is earlier (earlier inserts go to _overdue).
        self._cursor = 0
        #: Raw queued entries, live + cancelled (the wheel's heap_size).
        self._entries = 0
        #: Bucket currently being drained — detached from its slot so
        #: same-slot inserts and cascades never interleave with it.
        self._active_bucket = None
        self._active_idx = 0

    @property
    def queue(self):
        return "wheel"

    # -- scheduling ---------------------------------------------------------
    #
    # Same inlined structure as the heap backend (validation + Event
    # construction + placement, no helper frames); the level-0 insert is
    # inlined too since in steady state almost every timer is near-term.

    def schedule(self, time, callback, name=""):
        if time.__class__ is not int:
            time = int(time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule event {!r} at t={} before now={}".format(
                    name, time, self.now
                )
            )
        event = _new_event(Event)
        event.time = time
        event.callback = callback
        event.name = name
        event.cancelled = False
        event._sim = self
        seq = self._seq = self._seq + 1
        self._entries += 1
        cursor = self._cursor
        if time >= cursor and (time ^ cursor) >> 8 == 0:
            i = time & _SLOT_MASK
            self._slots0[i].append((time, seq, event))
            self._occ0 |= 1 << i
        else:
            self._insert(time, (time, seq, event))
        return event

    def after(self, delay, callback, name=""):
        if delay < 0:
            raise SimulationError(
                "negative delay {} for event {!r}".format(delay, name)
            )
        if delay.__class__ is not int:
            delay = int(delay)
        time = self.now + delay
        event = _new_event(Event)
        event.time = time
        event.callback = callback
        event.name = name
        event.cancelled = False
        event._sim = self
        seq = self._seq = self._seq + 1
        self._entries += 1
        cursor = self._cursor
        if time >= cursor and (time ^ cursor) >> 8 == 0:
            i = time & _SLOT_MASK
            self._slots0[i].append((time, seq, event))
            self._occ0 |= 1 << i
        else:
            self._insert(time, (time, seq, event))
        return event

    def post(self, delay, callback, name=""):
        if delay < 0:
            raise SimulationError(
                "negative delay {} for event {!r}".format(delay, name)
            )
        if delay.__class__ is not int:
            delay = int(delay)
        time = self.now + delay
        seq = self._seq = self._seq + 1
        self._entries += 1
        cursor = self._cursor
        if time >= cursor and (time ^ cursor) >> 8 == 0:
            i = time & _SLOT_MASK
            self._slots0[i].append((time, seq, None, callback, name))
            self._occ0 |= 1 << i
        else:
            self._insert(time, (time, seq, None, callback, name))

    def post_at(self, time, callback, name=""):
        if time.__class__ is not int:
            time = int(time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule event {!r} at t={} before now={}".format(
                    name, time, self.now
                )
            )
        seq = self._seq = self._seq + 1
        self._entries += 1
        cursor = self._cursor
        if time >= cursor and (time ^ cursor) >> 8 == 0:
            i = time & _SLOT_MASK
            self._slots0[i].append((time, seq, None, callback, name))
            self._occ0 |= 1 << i
        else:
            self._insert(time, (time, seq, None, callback, name))

    def _insert(self, time, entry):
        """Place ``entry`` in the level matching its distance from the
        cursor.  Placement only — the caller accounts for ``_entries``."""
        cursor = self._cursor
        if time < cursor:
            heapq.heappush(self._overdue, entry)
            return
        d = time ^ cursor
        if d >> 8 == 0:
            i = time & _SLOT_MASK
            self._slots0[i].append(entry)
            self._occ0 |= 1 << i
        elif d >> 16 == 0:
            i = (time >> 8) & _SLOT_MASK
            self._slots1[i].append(entry)
            self._occ1 |= 1 << i
        elif d >> 24 == 0:
            i = (time >> 16) & _SLOT_MASK
            self._slots2[i].append(entry)
            self._occ2 |= 1 << i
        elif d >> _WHEEL_SPAN_BITS == 0:
            i = (time >> 24) & _SLOT_MASK
            self._slots3[i].append(entry)
            self._occ3 |= 1 << i
        else:
            heapq.heappush(self._far, entry)

    # -- cancellation accounting -------------------------------------------

    def _note_cancel(self):
        self._events_cancelled += 1
        dead = self._dead_in_heap + 1
        self._dead_in_heap = dead
        if dead >= COMPACT_MIN_DEAD and dead * 2 >= self._entries:
            self.compact()

    def compact(self):
        """Sweep cancelled entries out of every bucket, in place.

        Buckets are filtered by slice assignment so list aliases held by
        a running drain stay valid; the bucket currently being drained is
        detached from the wheel and left alone (its remaining dead
        entries are what ``dead_in_heap`` still reports afterwards).
        """
        removed = 0
        for slots_name, occ_name in (
            ("_slots0", "_occ0"),
            ("_slots1", "_occ1"),
            ("_slots2", "_occ2"),
            ("_slots3", "_occ3"),
        ):
            occ = getattr(self, occ_name)
            if not occ:
                continue
            slots = getattr(self, slots_name)
            rem = occ
            while rem:
                i = (rem & -rem).bit_length() - 1
                rem &= rem - 1
                bucket = slots[i]
                live = [
                    e for e in bucket if e[2] is None or not e[2].cancelled
                ]
                if len(live) != len(bucket):
                    removed += len(bucket) - len(live)
                    bucket[:] = live
                    if not bucket:
                        occ &= ~(1 << i)
            setattr(self, occ_name, occ)
        for overflow in (self._far, self._overdue):
            live = [
                e for e in overflow if e[2] is None or not e[2].cancelled
            ]
            if len(live) != len(overflow):
                removed += len(overflow) - len(live)
                overflow[:] = live
                heapq.heapify(overflow)
        self._entries -= removed
        dead_active = 0
        bucket = self._active_bucket
        if bucket is not None:
            for e in bucket[self._active_idx:]:
                if e[2] is not None and e[2].cancelled:
                    dead_active += 1
        self._dead_in_heap = dead_active
        self._compactions += 1

    # -- the drain scan ----------------------------------------------------

    def _next_bucket(self):
        """Advance the cursor to the next occupied level-0 slot, cascading
        coarser buckets down as pages open up.  Returns ``(slot_time,
        index)`` or None when the whole wheel (and overflow) is empty."""
        while True:
            cursor = self._cursor
            c0 = cursor & _SLOT_MASK
            rem = self._occ0 >> c0
            if rem:
                i = c0 + ((rem & -rem).bit_length() - 1)
                slot_time = (cursor & ~_SLOT_MASK) | i
                self._cursor = slot_time
                return slot_time, i
            base1 = cursor >> 8
            c1 = base1 & _SLOT_MASK
            rem = self._occ1 >> c1
            if rem:
                j = c1 + ((rem & -rem).bit_length() - 1)
                self._occ1 &= ~(1 << j)
                bucket = self._slots1[j]
                self._slots1[j] = []
                self._cursor = ((base1 - c1) + j) << 8
                self._cascade(bucket)
                continue
            base2 = cursor >> 16
            c2 = base2 & _SLOT_MASK
            rem = self._occ2 >> c2
            if rem:
                j = c2 + ((rem & -rem).bit_length() - 1)
                self._occ2 &= ~(1 << j)
                bucket = self._slots2[j]
                self._slots2[j] = []
                self._cursor = ((base2 - c2) + j) << 16
                self._cascade(bucket)
                continue
            base3 = cursor >> 24
            c3 = base3 & _SLOT_MASK
            rem = self._occ3 >> c3
            if rem:
                j = c3 + ((rem & -rem).bit_length() - 1)
                self._occ3 &= ~(1 << j)
                bucket = self._slots3[j]
                self._slots3[j] = []
                self._cursor = ((base3 - c3) + j) << 24
                self._cascade(bucket)
                continue
            far = self._far
            if far:
                page = far[0][0] >> _WHEEL_SPAN_BITS
                self._cursor = page << _WHEEL_SPAN_BITS
                batch = []
                pop = heapq.heappop
                while far and far[0][0] >> _WHEEL_SPAN_BITS == page:
                    batch.append(pop(far))
                self._cascade(batch)
                continue
            return None

    def _cascade(self, entries):
        """Re-insert a coarser bucket's entries at finer granularity,
        shedding cancelled ones on the way down."""
        insert = self._insert
        for entry in entries:
            ev = entry[2]
            if ev is not None and ev.cancelled:
                self._dead_in_heap -= 1
                self._entries -= 1
                continue
            insert(entry[0], entry)

    def _drain_all(self):
        """Unbounded drain (the hot path): run buckets to exhaustion."""
        executed = 0
        trace = self._trace
        overdue = self._overdue
        slots0 = self._slots0
        pop = heapq.heappop
        next_bucket = self._next_bucket
        while True:
            while overdue:
                entry = pop(overdue)
                ev = entry[2]
                if ev is None:
                    self._entries -= 1
                    self.now = entry[0]
                    if trace is not None:
                        trace(entry[0], entry[4])
                    entry[3]()
                    executed += 1
                elif ev.cancelled:
                    self._dead_in_heap -= 1
                    self._entries -= 1
                else:
                    ev._sim = None
                    self._entries -= 1
                    self.now = entry[0]
                    if trace is not None:
                        trace(entry[0], ev.name)
                    ev.callback()
                    executed += 1
            cursor = self._cursor
            c0 = cursor & _SLOT_MASK
            rem = self._occ0 >> c0
            if rem:
                idx = c0 + ((rem & -rem).bit_length() - 1)
                self._cursor = (cursor & ~_SLOT_MASK) | idx
            else:
                nxt = next_bucket()
                if nxt is None:
                    return executed
                idx = nxt[1]
            bucket = slots0[idx]
            if len(bucket) == 1:
                # Single-entry bucket (the steady state): pop in place, no
                # detach/sort bookkeeping.  Same-slot inserts from the
                # callback append to the emptied bucket and re-set the
                # bit, so the scan re-finds them with their higher seq.
                entry = bucket[0]
                del bucket[0]
                self._occ0 &= ~(1 << idx)
                ev = entry[2]
                if ev is None:
                    self._entries -= 1
                    self.now = entry[0]
                    if trace is not None:
                        trace(entry[0], entry[4])
                    entry[3]()
                    executed += 1
                elif ev.cancelled:
                    self._dead_in_heap -= 1
                    self._entries -= 1
                else:
                    ev._sim = None
                    self._entries -= 1
                    self.now = entry[0]
                    if trace is not None:
                        trace(entry[0], ev.name)
                    ev.callback()
                    executed += 1
                continue
            # Detach the bucket: same-slot inserts from callbacks start a
            # fresh list (drained on the next pass, correctly after these
            # lower-seq entries), and a cascade triggered by a peeking
            # callback can never splice future-page timers into it.
            slots0[idx] = []
            self._occ0 &= ~(1 << idx)
            bucket.sort()
            self._active_bucket = bucket
            i = 0
            n = len(bucket)
            while i < n:
                entry = bucket[i]
                i += 1
                self._active_idx = i
                ev = entry[2]
                if ev is None:
                    self._entries -= 1
                    self.now = entry[0]
                    if trace is not None:
                        trace(entry[0], entry[4])
                    entry[3]()
                    executed += 1
                elif ev.cancelled:
                    self._dead_in_heap -= 1
                    self._entries -= 1
                else:
                    ev._sim = None
                    self._entries -= 1
                    self.now = entry[0]
                    if trace is not None:
                        trace(entry[0], ev.name)
                    ev.callback()
                    executed += 1
            self._active_bucket = None

    def _run_bounded(self, until, max_events):
        """Bounded drain mirroring the heap backend's semantics exactly:
        dead entries at the front are consumed regardless of bounds, a
        live head past ``until`` stays queued, and ``now`` lands on
        ``until`` when the bound (or exhaustion) stops the run."""
        executed = 0
        trace = self._trace
        overdue = self._overdue
        slots0 = self._slots0
        pop = heapq.heappop
        while True:
            if max_events is not None and executed >= max_events:
                return executed
            while overdue:
                head = overdue[0]
                ev = head[2]
                if ev is not None and ev.cancelled:
                    pop(overdue)
                    self._dead_in_heap -= 1
                    self._entries -= 1
                    continue
                break
            if overdue:
                entry = overdue[0]
                if until is not None and entry[0] > until:
                    self.now = int(until)
                    return executed
                pop(overdue)
            else:
                nxt = self._next_bucket()
                if nxt is None:
                    if until is not None and until > self.now:
                        self.now = int(until)
                    return executed
                idx = nxt[1]
                bucket = slots0[idx]
                if len(bucket) > 1:
                    bucket.sort()
                i = 0
                n = len(bucket)
                while i < n:
                    ev = bucket[i][2]
                    if ev is not None and ev.cancelled:
                        self._dead_in_heap -= 1
                        self._entries -= 1
                        i += 1
                        continue
                    break
                if i == n:
                    # All cancelled: consume the bucket even past `until`,
                    # as the heap pops dead heads regardless of bounds.
                    del bucket[:]
                    self._occ0 &= ~(1 << idx)
                    continue
                entry = bucket[i]
                if until is not None and entry[0] > until:
                    del bucket[:i]
                    self.now = int(until)
                    return executed
                del bucket[: i + 1]
                if not bucket:
                    self._occ0 &= ~(1 << idx)
            ev = entry[2]
            self._entries -= 1
            self.now = entry[0]
            if ev is None:
                if trace is not None:
                    trace(entry[0], entry[4])
                entry[3]()
            else:
                ev._sim = None
                if trace is not None:
                    trace(entry[0], ev.name)
                ev.callback()
            executed += 1

    # -- execution ---------------------------------------------------------

    def step(self):
        executed = self._run_bounded(None, 1)
        self._events_run += executed
        return executed > 0

    def run(self, until=None, max_events=None):
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            if until is None and max_events is None:
                executed = self._drain_all()
            else:
                executed = self._run_bounded(until, max_events)
            self._events_run += executed
        finally:
            self._running = False
        return executed

    # -- introspection ------------------------------------------------------

    @property
    def pending(self):
        return self._entries - self._dead_in_heap

    @property
    def heap_size(self):
        return self._entries

    def peek_time(self):
        overdue = self._overdue
        while overdue:
            head = overdue[0]
            ev = head[2]
            if ev is None or not ev.cancelled:
                return head[0]
            heapq.heappop(overdue)
            self._dead_in_heap -= 1
            self._entries -= 1
        bucket = self._active_bucket
        if bucket is not None:
            for e in bucket[self._active_idx:]:
                ev = e[2]
                if ev is None or not ev.cancelled:
                    return e[0]
        while True:
            nxt = self._next_bucket()
            if nxt is None:
                return None
            slot_time, idx = nxt
            b = self._slots0[idx]
            for e in b:
                ev = e[2]
                if ev is None or not ev.cancelled:
                    return slot_time
            # Every entry cancelled: consume the bucket so the scan can
            # move past it (mirrors the heap popping dead heads on peek).
            self._dead_in_heap -= len(b)
            self._entries -= len(b)
            del b[:]
            self._occ0 &= ~(1 << idx)
