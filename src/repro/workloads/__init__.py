"""Workload models: service-time distributions and arrival processes.

All service times are expressed in microseconds (floats); the scheduler
simulation converts them to cycles through the machine's clock.  Every
distribution in the paper's evaluation (section 5.1-5.3) has a named
constructor in :mod:`repro.workloads.named`.
"""

from repro.workloads.distributions import (
    ClassMix,
    Distribution,
    Exponential,
    Fixed,
    Lognormal,
    RequestClass,
    Uniform,
)
from repro.workloads.arrivals import (
    ArrivalProcess,
    ClosedLoopProcess,
    DeterministicProcess,
    PoissonProcess,
)
from repro.workloads.named import (
    bimodal_50_1_50_100,
    bimodal_995_05_500,
    fixed_1us,
    leveldb_50get_50scan,
    leveldb_zippydb,
    tpcc,
    NAMED_WORKLOADS,
    workload_by_name,
)
from repro.workloads.trace import Trace, TraceRecord

__all__ = [
    "ClassMix",
    "Distribution",
    "Exponential",
    "Fixed",
    "Lognormal",
    "RequestClass",
    "Uniform",
    "ArrivalProcess",
    "ClosedLoopProcess",
    "DeterministicProcess",
    "PoissonProcess",
    "bimodal_50_1_50_100",
    "bimodal_995_05_500",
    "fixed_1us",
    "leveldb_50get_50scan",
    "leveldb_zippydb",
    "tpcc",
    "NAMED_WORKLOADS",
    "workload_by_name",
    "Trace",
    "TraceRecord",
]
