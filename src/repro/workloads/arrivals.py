"""Arrival processes for the open-loop load generator.

The paper's client "sends requests according to a Poisson process"
(section 5.1) in an open loop: arrivals do not slow down when the server
queues grow, which is what makes tail latency explode past saturation.
"""

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "DeterministicProcess",
    "ClosedLoopProcess",
    "MarkovModulatedPoisson",
]


class ArrivalProcess:
    """Base class: generates interarrival gaps in microseconds."""

    def next_gap_us(self, rng):
        """Draw the gap (µs) until the next arrival."""
        raise NotImplementedError

    @property
    def rate_rps(self):
        """Mean offered load in requests per second."""
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Poisson arrivals at a fixed mean rate (requests/second)."""

    def __init__(self, rate_rps):
        if rate_rps <= 0:
            raise ValueError("arrival rate must be positive, got {}".format(rate_rps))
        self._rate_rps = float(rate_rps)
        self._mean_gap_us = 1e6 / rate_rps

    def next_gap_us(self, rng):
        return rng.expovariate(1.0 / self._mean_gap_us)

    @property
    def rate_rps(self):
        return self._rate_rps

    def __repr__(self):
        return "PoissonProcess(rate_rps={:g})".format(self._rate_rps)


class DeterministicProcess(ArrivalProcess):
    """Evenly spaced arrivals — useful for tests and overhead measurements
    where queueing noise would obscure the quantity under study."""

    def __init__(self, rate_rps):
        if rate_rps <= 0:
            raise ValueError("arrival rate must be positive, got {}".format(rate_rps))
        self._rate_rps = float(rate_rps)
        self._gap_us = 1e6 / rate_rps

    def next_gap_us(self, rng):
        return self._gap_us

    @property
    def rate_rps(self):
        return self._rate_rps

    def __repr__(self):
        return "DeterministicProcess(rate_rps={:g})".format(self._rate_rps)


class MarkovModulatedPoisson(ArrivalProcess):
    """A two-state MMPP: Poisson arrivals whose rate toggles between a
    normal and a burst level.

    The paper uses plain Poisson "to mimic the bursty behavior of
    production traffic" (section 5.1); an MMPP makes the burstiness knob
    explicit, which the burst-sensitivity extension uses.  ``burst_factor``
    scales the rate during bursts; ``burst_fraction`` is the long-run share
    of time spent bursting; ``mean_dwell_us`` is the average state holding
    time.  The *average* rate equals ``rate_rps``.
    """

    def __init__(self, rate_rps, burst_factor=4.0, burst_fraction=0.1,
                 mean_dwell_us=1000.0):
        if rate_rps <= 0:
            raise ValueError("arrival rate must be positive, got {}".format(rate_rps))
        if burst_factor < 1.0:
            raise ValueError("burst factor must be >= 1")
        if not 0.0 < burst_fraction < 1.0:
            raise ValueError("burst fraction must be in (0, 1)")
        if mean_dwell_us <= 0:
            raise ValueError("dwell time must be positive")
        self._rate_rps = float(rate_rps)
        self.burst_factor = float(burst_factor)
        self.burst_fraction = float(burst_fraction)
        self.mean_dwell_us = float(mean_dwell_us)
        # Solve for the two levels so the time-average rate is rate_rps:
        # (1-f)*normal + f*burst_factor*normal = rate.
        normal = rate_rps / (1.0 - burst_fraction
                             + burst_fraction * burst_factor)
        self._normal_gap_us = 1e6 / normal
        self._burst_gap_us = 1e6 / (normal * burst_factor)
        self._in_burst = False
        self._state_left_us = 0.0

    def next_gap_us(self, rng):
        if self._state_left_us <= 0.0:
            self._in_burst = not self._in_burst if self._state_left_us < 0 \
                else rng.random() < self.burst_fraction
            dwell = self.mean_dwell_us * (
                self.burst_fraction if self._in_burst
                else (1.0 - self.burst_fraction)
            ) * 2.0
            self._state_left_us = rng.expovariate(1.0 / max(dwell, 1e-9))
        mean_gap = self._burst_gap_us if self._in_burst else self._normal_gap_us
        gap = rng.expovariate(1.0 / mean_gap)
        self._state_left_us -= gap
        return gap

    @property
    def rate_rps(self):
        return self._rate_rps

    def __repr__(self):
        return ("MarkovModulatedPoisson(rate_rps={:g}, burst_factor={:g}, "
                "burst_fraction={:g})").format(
                    self._rate_rps, self.burst_factor, self.burst_fraction)


class ClosedLoopProcess(ArrivalProcess):
    """A degenerate process used by closed-loop experiments (e.g. the
    back-to-back 500 µs requests of Figs. 2, 12, 15): the next request is
    injected as soon as the previous one completes, so the 'gap' is zero and
    the server layer paces admission itself.
    """

    def __init__(self, in_flight=1):
        if in_flight < 1:
            raise ValueError("need at least one in-flight request")
        self.in_flight = int(in_flight)

    def next_gap_us(self, rng):
        return 0.0

    @property
    def rate_rps(self):
        return float("inf")

    def __repr__(self):
        return "ClosedLoopProcess(in_flight={})".format(self.in_flight)
