"""Service-time distributions.

A :class:`Distribution` samples a service time in microseconds.  A
:class:`ClassMix` composes named request classes — the form every workload
in the paper takes (bimodal mixes, the TPCC transaction mix, LevelDB's
GET/SCAN mixes).  Samples come back as ``(kind, service_us)`` pairs so the
scheduler and the key-value store can dispatch on the request class.
"""

import math

__all__ = [
    "Distribution",
    "Fixed",
    "Exponential",
    "Uniform",
    "Lognormal",
    "RequestClass",
    "ClassMix",
]


class Distribution:
    """Base class: a positive service-time distribution in microseconds."""

    #: Human-readable name; subclasses override.
    name = "distribution"

    def sample_us(self, rng):
        """Draw one service time (µs) using ``rng`` (a random.Random)."""
        raise NotImplementedError

    def mean_us(self):
        """Expected service time (µs)."""
        raise NotImplementedError

    def sample_class(self, rng):
        """Draw one ``(kind, service_us)`` pair.  Plain distributions use
        their own name as the kind."""
        return self.name, self.sample_us(rng)

    def squared_coefficient_of_variation(self, samples=20000, rng=None):
        """Empirical SCV (variance / mean^2), the dispersion measure queueing
        theory cares about.  Subclasses with closed forms override."""
        import random as _random

        rng = rng or _random.Random(0xD15C0)
        draws = [self.sample_us(rng) for _ in range(samples)]
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        return var / (mean * mean) if mean else 0.0


class Fixed(Distribution):
    """Deterministic service time."""

    def __init__(self, service_us, name=None):
        if service_us <= 0:
            raise ValueError("service time must be positive, got {}".format(service_us))
        self.service_us = float(service_us)
        self.name = name or "fixed({:g}us)".format(service_us)

    def sample_us(self, rng):
        return self.service_us

    def mean_us(self):
        return self.service_us

    def squared_coefficient_of_variation(self, samples=0, rng=None):
        return 0.0


class Exponential(Distribution):
    """Exponentially distributed service time (memoryless)."""

    def __init__(self, mean_us, name=None):
        if mean_us <= 0:
            raise ValueError("mean must be positive, got {}".format(mean_us))
        self._mean_us = float(mean_us)
        self.name = name or "exp({:g}us)".format(mean_us)

    def sample_us(self, rng):
        return rng.expovariate(1.0 / self._mean_us)

    def mean_us(self):
        return self._mean_us

    def squared_coefficient_of_variation(self, samples=0, rng=None):
        return 1.0


class Uniform(Distribution):
    """Uniform service time on [low_us, high_us]."""

    def __init__(self, low_us, high_us, name=None):
        if not 0 < low_us <= high_us:
            raise ValueError(
                "need 0 < low <= high, got [{}, {}]".format(low_us, high_us)
            )
        self.low_us = float(low_us)
        self.high_us = float(high_us)
        self.name = name or "uniform({:g},{:g})".format(low_us, high_us)

    def sample_us(self, rng):
        return rng.uniform(self.low_us, self.high_us)

    def mean_us(self):
        return (self.low_us + self.high_us) / 2.0

    def squared_coefficient_of_variation(self, samples=0, rng=None):
        mean = self.mean_us()
        var = (self.high_us - self.low_us) ** 2 / 12.0
        return var / (mean * mean)


class Lognormal(Distribution):
    """Lognormal service time, parameterized by its mean and sigma of the
    underlying normal — a common stand-in for production heavy tails."""

    def __init__(self, mean_us, sigma, name=None):
        if mean_us <= 0 or sigma < 0:
            raise ValueError(
                "need mean > 0 and sigma >= 0, got mean={}, sigma={}".format(
                    mean_us, sigma
                )
            )
        self._mean_us = float(mean_us)
        self.sigma = float(sigma)
        # Choose mu so the distribution's mean is mean_us.
        self.mu = math.log(mean_us) - sigma * sigma / 2.0
        self.name = name or "lognormal({:g}us,s={:g})".format(mean_us, sigma)

    def sample_us(self, rng):
        return rng.lognormvariate(self.mu, self.sigma)

    def mean_us(self):
        return self._mean_us

    def squared_coefficient_of_variation(self, samples=0, rng=None):
        return math.exp(self.sigma * self.sigma) - 1.0


class RequestClass:
    """One component of a :class:`ClassMix`: a named request type with a
    selection probability and its own service-time distribution."""

    __slots__ = ("kind", "probability", "distribution")

    def __init__(self, kind, probability, distribution):
        if not 0.0 < probability <= 1.0:
            raise ValueError(
                "class probability must be in (0, 1], got {}".format(probability)
            )
        self.kind = kind
        self.probability = float(probability)
        self.distribution = distribution

    def __repr__(self):
        return "RequestClass({!r}, p={:g}, {})".format(
            self.kind, self.probability, self.distribution.name
        )


class ClassMix(Distribution):
    """A probabilistic mixture of named request classes.

    This is the shape of every workload in the paper's evaluation: e.g.
    Bimodal(50:1, 50:100) is a mix of two Fixed distributions with equal
    probability.
    """

    def __init__(self, classes, name=None):
        if not classes:
            raise ValueError("ClassMix needs at least one class")
        total = sum(c.probability for c in classes)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                "class probabilities must sum to 1, got {:g}".format(total)
            )
        self.classes = list(classes)
        self.name = name or "mix({})".format(
            ",".join(c.kind for c in self.classes)
        )
        # Precompute the CDF for sampling.
        self._cdf = []
        acc = 0.0
        for cls in self.classes:
            acc += cls.probability
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def _pick(self, rng):
        u = rng.random()
        for cls, edge in zip(self.classes, self._cdf):
            if u <= edge:
                return cls
        return self.classes[-1]

    def sample_us(self, rng):
        return self._pick(rng).distribution.sample_us(rng)

    def sample_class(self, rng):
        cls = self._pick(rng)
        return cls.kind, cls.distribution.sample_us(rng)

    def mean_us(self):
        return sum(c.probability * c.distribution.mean_us() for c in self.classes)

    def class_probabilities(self):
        """Mapping of kind -> selection probability."""
        return {c.kind: c.probability for c in self.classes}

    def dispersion_ratio(self):
        """Max class mean over min class mean — the paper's informal
        "dispersion" (e.g. 1000x for LevelDB GET vs SCAN)."""
        means = [c.distribution.mean_us() for c in self.classes]
        return max(means) / min(means)


def bimodal(short_pct, short_us, long_pct, long_us, name=None):
    """Convenience constructor mirroring the paper's Bimodal(a:b, c:d)
    notation: ``a``% of requests take ``b`` µs, ``c``% take ``d`` µs."""
    if abs(short_pct + long_pct - 100.0) > 1e-9:
        raise ValueError(
            "percentages must sum to 100, got {} + {}".format(short_pct, long_pct)
        )
    classes = [
        RequestClass("short", short_pct / 100.0, Fixed(short_us)),
        RequestClass("long", long_pct / 100.0, Fixed(long_us)),
    ]
    default = "Bimodal({:g}:{:g}, {:g}:{:g})".format(
        short_pct, short_us, long_pct, long_us
    )
    return ClassMix(classes, name=name or default)
