"""The named workloads of the paper's evaluation (sections 5.1-5.3).

Each function returns a :class:`~repro.workloads.distributions.ClassMix`
whose kinds are meaningful to the server (e.g. LevelDB request kinds).
"""

from repro.workloads.distributions import ClassMix, Fixed, RequestClass, bimodal

__all__ = [
    "bimodal_50_1_50_100",
    "bimodal_995_05_500",
    "fixed_1us",
    "tpcc",
    "leveldb_50get_50scan",
    "leveldb_zippydb",
    "NAMED_WORKLOADS",
    "workload_by_name",
]

#: LevelDB per-operation service times measured in the paper's setup
#: (section 5.3): GETs ~600 ns, PUT/DELETE ~2.3 µs, full-database SCANs
#: ~500 µs with 15,000 keys in memory-mapped plain tables.
LEVELDB_GET_US = 0.6
LEVELDB_PUT_US = 2.3
LEVELDB_DELETE_US = 2.3
LEVELDB_SCAN_US = 500.0


def bimodal_50_1_50_100():
    """High-dispersion workload 1 (Fig. 6): 50% of requests take 1 µs and
    50% take 100 µs — modeled on YCSB workload A (section 5.2)."""
    return bimodal(50, 1.0, 50, 100.0)


def bimodal_995_05_500():
    """High-dispersion workload 2 (Fig. 7): 99.5% take 0.5 µs, 0.5% take
    500 µs — modeled on Meta's USR workload (section 5.2)."""
    return bimodal(99.5, 0.5, 0.5, 500.0)


def fixed_1us():
    """Low-dispersion workload 1 (Fig. 8 left): every request takes 1 µs."""
    return ClassMix([RequestClass("fixed", 1.0, Fixed(1.0))], name="Fixed(1)")


def tpcc():
    """Low-dispersion workload 2 (Fig. 8 right): the TPC-C transaction mix
    running on an in-memory database, from Persephone (section 5.2):

    Payment 5.7 µs (44%), OrderStatus 6 µs (4%), NewOrder 20 µs (44%),
    Delivery 88 µs (4%), StockLevel 100 µs (4%).
    """
    classes = [
        RequestClass("Payment", 0.44, Fixed(5.7)),
        RequestClass("OrderStatus", 0.04, Fixed(6.0)),
        RequestClass("NewOrder", 0.44, Fixed(20.0)),
        RequestClass("Delivery", 0.04, Fixed(88.0)),
        RequestClass("StockLevel", 0.04, Fixed(100.0)),
    ]
    return ClassMix(classes, name="TPCC")


def leveldb_50get_50scan():
    """LevelDB workload 1 (Fig. 9): 50% single-key GETs, 50% full-database
    SCANs — the Shinjuku/Persephone comparison workload (section 5.3)."""
    classes = [
        RequestClass("GET", 0.5, Fixed(LEVELDB_GET_US)),
        RequestClass("SCAN", 0.5, Fixed(LEVELDB_SCAN_US)),
    ]
    return ClassMix(classes, name="LevelDB(50%GET,50%SCAN)")


def leveldb_zippydb():
    """LevelDB workload 2 (Fig. 10): the request mix of Meta's ZippyDB
    production traces — 78% GETs, 13% PUTs, 6% DELETEs, 3% SCANs
    (section 5.3)."""
    classes = [
        RequestClass("GET", 0.78, Fixed(LEVELDB_GET_US)),
        RequestClass("PUT", 0.13, Fixed(LEVELDB_PUT_US)),
        RequestClass("DELETE", 0.06, Fixed(LEVELDB_DELETE_US)),
        RequestClass("SCAN", 0.03, Fixed(LEVELDB_SCAN_US)),
    ]
    return ClassMix(classes, name="LevelDB(ZippyDB)")


#: Registry of the paper's workloads by short name.
NAMED_WORKLOADS = {
    "bimodal-50-1-50-100": bimodal_50_1_50_100,
    "bimodal-995-05-500": bimodal_995_05_500,
    "fixed-1": fixed_1us,
    "tpcc": tpcc,
    "leveldb-5050": leveldb_50get_50scan,
    "leveldb-zippydb": leveldb_zippydb,
}


def workload_by_name(name):
    """Look up one of the paper's workloads by registry key."""
    try:
        factory = NAMED_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            "unknown workload {!r}; known: {}".format(
                name, ", ".join(sorted(NAMED_WORKLOADS))
            )
        ) from None
    return factory()
