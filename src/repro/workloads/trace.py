"""Request-trace record and replay.

Traces let an experiment (or a user debugging a scheduler) freeze a sampled
workload — arrival time, request kind, service time — and replay it exactly
against multiple scheduler configurations, or persist it to disk as CSV.
"""

import csv
from dataclasses import dataclass

__all__ = ["TraceRecord", "Trace"]

_HEADER = ("arrival_us", "kind", "service_us")


@dataclass(frozen=True)
class TraceRecord:
    """One request: absolute arrival time (µs), kind, service time (µs)."""

    arrival_us: float
    kind: str
    service_us: float

    def __post_init__(self):
        if self.arrival_us < 0:
            raise ValueError("arrival must be >= 0, got {}".format(self.arrival_us))
        if self.service_us <= 0:
            raise ValueError("service must be > 0, got {}".format(self.service_us))


class Trace:
    """An ordered sequence of :class:`TraceRecord`."""

    def __init__(self, records=()):
        self.records = sorted(records, key=lambda r: r.arrival_us)

    @classmethod
    def sample(cls, workload, arrivals, num_requests, rng):
        """Draw ``num_requests`` from ``workload`` with gaps from
        ``arrivals``, both using ``rng``."""
        records = []
        now_us = 0.0
        for _ in range(num_requests):
            now_us += arrivals.next_gap_us(rng)
            kind, service_us = workload.sample_class(rng)
            records.append(TraceRecord(now_us, kind, service_us))
        return cls(records)

    # -- stats -----------------------------------------------------------------

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def duration_us(self):
        """Time spanned by the trace's arrivals."""
        if not self.records:
            return 0.0
        return self.records[-1].arrival_us - self.records[0].arrival_us

    def offered_load_rps(self):
        """Empirical arrival rate over the trace."""
        duration = self.duration_us()
        if duration <= 0:
            return 0.0
        return (len(self.records) - 1) * 1e6 / duration

    def mean_service_us(self):
        if not self.records:
            return 0.0
        return sum(r.service_us for r in self.records) / len(self.records)

    def kinds(self):
        """Set of request kinds present in the trace."""
        return {r.kind for r in self.records}

    # -- persistence ---------------------------------------------------------------

    def save_csv(self, path):
        """Write the trace as a CSV with columns arrival_us, kind, service_us."""
        with open(path, "w", newline="") as f:  # repro-san: ignore[DET005] -- persisting a trace is this method's purpose; not on a sim hot path
            writer = csv.writer(f)
            writer.writerow(_HEADER)
            for record in self.records:
                writer.writerow(
                    ["{:.6f}".format(record.arrival_us), record.kind,
                     "{:.6f}".format(record.service_us)]
                )

    @classmethod
    def load_csv(cls, path):
        """Read a trace previously written by :meth:`save_csv`."""
        records = []
        with open(path, newline="") as f:  # repro-san: ignore[DET005] -- loading a user-supplied trace is this method's purpose; the trace content is part of the job spec
            reader = csv.reader(f)
            header = tuple(next(reader))
            if header != _HEADER:
                raise ValueError(
                    "unexpected trace header {!r}; expected {!r}".format(
                        header, _HEADER
                    )
                )
            for row in reader:
                arrival, kind, service = row
                records.append(TraceRecord(float(arrival), kind, float(service)))
        return cls(records)
