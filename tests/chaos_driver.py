"""Subprocess driver for kill-then-resume differential tests.

``tests/test_resilience.py`` (and the ``harness-chaos`` CI job) launch
this script as a real OS process, kill it mid-sweep (SIGINT via
``--interrupt-after-appends``, or SIGKILL from outside), and re-launch it
with ``--resume``.  The resumed run must produce a digest bit-identical
to an uninterrupted run of the same sweep — that is the whole point of
the checkpoint layer, and it can only be demonstrated across genuine
process deaths, not monkeypatches.

Exit codes: 0 on a completed sweep (digest written to ``--digest-out``),
130 when the sweep was interrupted (checkpoint flushed, resume possible).
"""

import argparse
import hashlib
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.presets import concord, shinjuku  # noqa: E402
from repro.faults import ResilienceConfig, crash_plan  # noqa: E402
from repro.hardware import c6420  # noqa: E402
from repro.parallel import (  # noqa: E402
    FaultJob,
    ParallelRunner,
    SimJob,
    SweepCheckpoint,
    SweepInterrupted,
    stable_describe,
)
from repro.workloads.named import bimodal_50_1_50_100  # noqa: E402


@dataclass(frozen=True)
class CrashJob:
    """Wraps another job; the first process to run it leaves a marker
    file and dies with ``os._exit`` (no cleanup, no exception — exactly
    what a segfault or OOM kill looks like to the pool).  Once the
    marker exists it behaves as the wrapped job, so retries and resumed
    runs produce the wrapped job's exact result."""

    inner: object
    marker: str

    def run(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as f:
                f.write(str(os.getpid()))
            os._exit(3)
        return self.inner.run()


def sim_jobs(num_requests):
    machine = c6420(2)
    workload = bimodal_50_1_50_100()
    return [
        SimJob(machine=machine, config=config, workload=workload,
               load_rps=load, num_requests=num_requests, seed=7)
        for config in (shinjuku(5.0), concord(5.0))
        for load in (1.0e5, 1.8e5, 2.6e5)
    ]


def fault_jobs(num_requests):
    machine = c6420(2)
    workload = bimodal_50_1_50_100()
    load = 0.6 * 2 * 2 * 1e6 / workload.mean_us()
    plan = crash_plan(2000.0, down_us=1500.0, server=1)
    return [
        FaultJob(machine=machine, config=concord(5.0), num_servers=2,
                 policy="jsq", workload=workload, load_rps=load,
                 num_requests=num_requests, seed=7,
                 fault_plan=fault_plan, resilience=resilience)
        for fault_plan, resilience in (
            (None, None),
            (plan, None),
            (plan, ResilienceConfig.retry_only()),
        )
    ]


def digest_results(results):
    material = json.dumps(
        [stable_describe(r) for r in results],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--checkpoint", required=True)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--mode", choices=("sim", "faults"), default="sim")
    parser.add_argument("--digest-out", required=True)
    parser.add_argument("--requests", type=int, default=1200)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--job-timeout", type=float, default=None)
    parser.add_argument("--max-retries", type=int, default=2)
    parser.add_argument(
        "--interrupt-after-appends", type=int, default=None,
        help="send SIGINT to this process once the checkpoint has "
             "journaled this many new results",
    )
    parser.add_argument("--crash-at", type=int, default=None,
                        help="replace job N with a CrashJob")
    parser.add_argument("--crash-marker", default=None)
    parser.add_argument(
        "--traced", action="store_true",
        help="run the sweep under an ambient full-trace session (forces "
             "--jobs 1 so probes attach in-process); tracing must not "
             "change the digest",
    )
    args = parser.parse_args(argv)
    if args.traced:
        args.jobs = 1

    jobs = (sim_jobs if args.mode == "sim" else fault_jobs)(args.requests)
    if args.crash_at is not None:
        if not args.crash_marker:
            parser.error("--crash-at requires --crash-marker")
        jobs[args.crash_at] = CrashJob(
            inner=jobs[args.crash_at], marker=args.crash_marker
        )

    checkpoint = SweepCheckpoint(args.checkpoint, resume=args.resume)
    runner = ParallelRunner(
        jobs=args.jobs, cache=None, checkpoint=checkpoint,
        job_timeout=args.job_timeout, max_retries=args.max_retries,
    )

    if args.interrupt_after_appends is not None:
        def fire_when_ready():
            while checkpoint.appends < args.interrupt_after_appends:
                time.sleep(0.002)
            os.kill(os.getpid(), signal.SIGINT)

        threading.Thread(target=fire_when_ready, daemon=True).start()

    try:
        if args.traced:
            from repro.obs import TraceConfig, tracing

            with tracing(TraceConfig()):
                results = runner.map(jobs)
        else:
            results = runner.map(jobs)
    except SweepInterrupted as exc:
        print("INTERRUPTED appends={} completed={}".format(
            checkpoint.appends, exc.completed))
        checkpoint.close()
        return 130
    finally:
        runner.close()

    digest = digest_results(results)
    Path(args.digest_out).write_text(json.dumps({
        "digest": digest,
        "results": len(results),
        "checkpoint_hits": runner.stats["checkpoint_hits"],
        "jobs_run": runner.stats["jobs_run"],
        "retries": runner.stats["retries"],
        "quarantined": runner.stats["quarantined"],
        "footer": runner.summary_line(),
    }))
    checkpoint.close()
    print("OK digest={}".format(digest))
    return 0


if __name__ == "__main__":
    sys.exit(main())
