"""Tests for the MMPP arrival process, time series, and the IR printer."""

import random

import pytest

from repro.core import Server, concord, persephone_fcfs
from repro.hardware import c6420
from repro.instrument import (
    CACHELINE_STYLE,
    Interpreter,
    ProbeInsertionPass,
)
from repro.instrument.kernels import kernel_by_name
from repro.instrument.printer import (
    ParseError,
    dump_function,
    dump_module,
    parse_module,
)
from repro.metrics.timeseries import TimeSeries
from repro.workloads import PoissonProcess, fixed_1us
from repro.workloads.arrivals import MarkovModulatedPoisson


class TestMMPP:
    def test_average_rate_preserved(self):
        process = MarkovModulatedPoisson(
            100_000, burst_factor=5.0, burst_fraction=0.2
        )
        rng = random.Random(0)
        gaps = [process.next_gap_us(rng) for _ in range(60_000)]
        mean_rate = 1e6 / (sum(gaps) / len(gaps))
        assert mean_rate == pytest.approx(100_000, rel=0.1)

    def test_burstier_than_poisson(self):
        # Squared CV of the interarrival gaps exceeds Poisson's 1.0.
        process = MarkovModulatedPoisson(
            100_000, burst_factor=8.0, burst_fraction=0.1,
            mean_dwell_us=5000.0,
        )
        rng = random.Random(1)
        gaps = [process.next_gap_us(rng) for _ in range(60_000)]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var / mean**2 > 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovModulatedPoisson(0)
        with pytest.raises(ValueError):
            MarkovModulatedPoisson(1000, burst_factor=0.5)
        with pytest.raises(ValueError):
            MarkovModulatedPoisson(1000, burst_fraction=1.5)

    def test_drives_the_simulator(self):
        server = Server(c6420(4), persephone_fcfs(), seed=0)
        result = server.run(
            fixed_1us(),
            MarkovModulatedPoisson(500_000, burst_factor=4.0),
            3000,
        )
        assert result.drained

    def test_bursts_hurt_the_tail(self):
        from repro.metrics import summarize_slowdowns
        from repro.workloads.named import bimodal_50_1_50_100

        rate = 0.55 * 14 * 1e6 / bimodal_50_1_50_100().mean_us()
        smooth = Server(c6420(), concord(5.0), seed=3).run(
            bimodal_50_1_50_100(), PoissonProcess(rate), 8000
        )
        bursty = Server(c6420(), concord(5.0), seed=3).run(
            bimodal_50_1_50_100(),
            MarkovModulatedPoisson(rate, burst_factor=6.0,
                                   burst_fraction=0.15,
                                   mean_dwell_us=3000.0),
            8000,
        )
        smooth_tail = summarize_slowdowns(smooth.slowdowns()).p999
        bursty_tail = summarize_slowdowns(bursty.slowdowns()).p999
        assert bursty_tail > smooth_tail


class TestTimeSeries:
    def make_result(self):
        server = Server(c6420(4), persephone_fcfs(), seed=0)
        return server.run(fixed_1us(), PoissonProcess(1_000_000), 5000)

    def test_throughput_series_sums_to_completions(self):
        result = self.make_result()
        series = TimeSeries.from_result(result, window_us=500.0)
        total = sum(
            tp * 500.0 / 1e6 for _start, tp in series.throughput_series()
        )
        assert total == pytest.approx(len(result.records), rel=0.01)

    def test_tail_series_has_one_point_per_window(self):
        result = self.make_result()
        series = TimeSeries.from_result(result, window_us=500.0)
        assert len(series.tail_slowdown_series()) == len(series)
        for _start, value in series.tail_slowdown_series(p=99.0):
            assert value >= 1.0

    def test_peak_to_mean(self):
        result = self.make_result()
        series = TimeSeries.from_result(result, window_us=200.0)
        assert series.peak_to_mean_throughput() >= 1.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            TimeSeries(0, c6420().clock)


class TestIRPrinter:
    def test_dump_contains_blocks_and_probes(self):
        module = kernel_by_name("radix").build(scale=0.01)
        function = module.entry_function()
        ProbeInsertionPass(CACHELINE_STYLE).run(function)
        text = dump_function(function)
        assert "func @main" in text
        assert "probe" in text
        assert "keys.header:" in text

    def test_roundtrip_preserves_semantics(self):
        module = kernel_by_name("histogram").build(scale=0.02)
        expected = Interpreter(module).run()
        text = dump_module(kernel_by_name("histogram").build(scale=0.02))
        parsed = parse_module(text)
        actual = Interpreter(parsed).run()
        assert actual.value == expected.value
        assert actual.cycles == expected.cycles

    def test_roundtrip_preserves_probe_attrs(self):
        module = kernel_by_name("radix").build(scale=0.01)
        function = module.entry_function()
        ProbeInsertionPass(CACHELINE_STYLE).run(function)
        parsed = parse_module(dump_module(module))
        probes = [
            instr
            for block in parsed.entry_function().iter_blocks()
            for instr in block.instrs if instr.is_probe
        ]
        assert probes
        assert all(p.attrs.get("cost") == 2 for p in probes)

    def test_parse_rejects_orphan_instruction(self):
        with pytest.raises(ParseError):
            parse_module("add x, 1, 2")

    def test_parse_rejects_block_outside_function(self):
        with pytest.raises(ParseError):
            parse_module("entry:\n  ret")

    def test_parse_rejects_unknown_opcode(self):
        text = "func @main() {\nentry:\n  warp x, 1\n  ret\n}"
        with pytest.raises(ParseError):
            parse_module(text)
