"""Tests for the probe-gap certifier, including the differential check
(static bound must dominate the interpreter's observed max gap) across
every registered kernel, and the stripped-latch-probe failure mode."""

import pytest

from repro.instrument.analysis.cli import build_instrumented, main
from repro.instrument.analysis.lint import ERROR, lint_function
from repro.instrument.analysis.probegap import (
    CertificationError,
    INFINITE,
    analyze_module,
    certify_module,
)
from repro.instrument.builder import FunctionBuilder
from repro.instrument.interp import Interpreter
from repro.instrument.ir import Instr, Module
from repro.instrument.kernels import KERNELS
from repro.instrument.passes import (
    CACHELINE_STYLE,
    RDTSC_STYLE,
    ProbeInsertionPass,
)

SCALE = 0.05


def cacheline_probe(period=1):
    return Instr("probe", None, (), {
        "style": "cacheline", "period": period, "cost": 2, "visit_cost": 0,
    })


def module_of(*builders):
    module = Module("t")
    for b in builders:
        module.add(b.function)
    return module


def max_dynamic_gap(module):
    gaps = Interpreter(module).run().probe_gaps()
    return max(gaps) if gaps else 0.0


class TestExactness:
    def test_straight_line_bounds_are_exact(self):
        # probe; add x3; probe; ret  — every quantity is hand-computable:
        # entry = 2 (first probe's own cost), internal = 3 adds + probe
        # cost = 5, exit = 1 (ret terminator), through = None.
        b = FunctionBuilder("main")
        b._current.append(cacheline_probe())
        for _ in range(3):
            b.emit("add", "x", 1, 1)
        b._current.append(cacheline_probe())
        b.ret(0)
        module = module_of(b)
        summary = analyze_module(module)["main"]
        assert summary.entry.cycles == 2
        assert summary.internal.cycles == 5
        assert summary.exit.cycles == 1
        assert summary.always_fires
        assert certify_module(module).gap_bound == 5
        assert max_dynamic_gap(module) == 5

    def test_internal_bound_matches_interpreter_on_counted_loop(self):
        b = FunctionBuilder("main")
        b.li("acc", 0)

        def body(i):
            for _ in range(5):
                b.emit("add", "acc", "acc", 1)

        b.counted_loop("l", 50, body)
        b.ret("acc")
        module = build_module_through_pipeline(b)
        certificate = certify_module(module)
        dynamic = max_dynamic_gap(module)
        assert certificate.certified
        # Static and dynamic sum the same cycle terms in different orders,
        # so compare up to float accumulation noise.
        assert certificate.internal_bound + 1e-6 >= dynamic
        # The loop is deterministic and the worst path is the only path,
        # so the static bound is tight, not merely sound.
        assert certificate.internal_bound == pytest.approx(dynamic)

    def test_probe_free_straight_line_certifies_at_total_cost(self):
        b = FunctionBuilder("main")
        for _ in range(4):
            b.emit("add", "x", 1, 1)
        b.ret(0)
        certificate = certify_module(module_of(b))
        assert certificate.certified
        assert certificate.gap_bound == 5  # 4 adds + ret terminator
        assert certificate.internal_bound == 0


def build_module_through_pipeline(builder, style=CACHELINE_STYLE):
    """Run the profiler's instrumentation pipeline on a hand-built fn."""
    from repro.instrument.optim import optimize_function
    from repro.instrument.passes import LoopUnrollPass

    module = module_of(builder)
    for fn in module.functions.values():
        optimize_function(fn)
    probe_pass = ProbeInsertionPass(style)
    for fn in module.functions.values():
        probe_pass.run(fn)
    if style == CACHELINE_STYLE:
        unroll = LoopUnrollPass()
        for fn in module.functions.values():
            unroll.run(fn)
    return module


class TestStrippedLatchProbe:
    def tight_loop_module(self):
        b = FunctionBuilder("main")
        b.li("acc", 0)

        def body(i):
            for _ in range(5):
                b.emit("add", "acc", "acc", 1)

        b.counted_loop("l", 50, body)
        b.ret("acc")
        return build_module_through_pipeline(b)

    def test_stripping_latch_probe_unbounds_the_gap(self):
        module = self.tight_loop_module()
        assert certify_module(module).certified
        latch = module.functions["main"].block("l.latch")
        latch.instrs = [i for i in latch.instrs if not i.is_probe]
        certificate = certify_module(module)
        assert not certificate.certified
        assert certificate.gap_bound == INFINITE

    def test_failure_carries_a_concrete_witness(self):
        module = self.tight_loop_module()
        latch = module.functions["main"].block("l.latch")
        latch.instrs = [i for i in latch.instrs if not i.is_probe]
        certificate = certify_module(module)
        witness = " ".join(certificate.witness)
        assert certificate.witness  # non-empty path
        assert "l.latch" in witness or "l.header" in witness
        with pytest.raises(CertificationError) as excinfo:
            certificate.check()
        assert excinfo.value.witness == certificate.witness

    def test_check_enforces_configured_bound(self):
        module = self.tight_loop_module()
        certificate = certify_module(module)
        assert certificate.check(certificate.gap_bound + 1)
        with pytest.raises(CertificationError):
            certificate.check(certificate.gap_bound - 1)
        with pytest.raises(CertificationError):
            certify_module(module, max_gap_cycles=1.0)


class TestInterprocedural:
    def test_callee_gaps_count_toward_caller_bound(self):
        helper = FunctionBuilder("helper")
        for _ in range(10):
            helper.emit("add", "x", 1, 1)
        helper.ret(0)
        b = FunctionBuilder("main")
        b._current.append(cacheline_probe())
        b.call("r", "helper")
        b._current.append(cacheline_probe())
        b.ret(0)
        module = module_of(helper, b)
        certificate = certify_module(module)
        # gap spans: probe fires, call overhead 5 + helper (10 adds +
        # ret terminator = 11) + second probe cost 2 = 18.
        assert certificate.internal_bound == 18
        assert certificate.internal_bound >= max_dynamic_gap(module)

    def test_recursion_is_rejected(self):
        b = FunctionBuilder("main")
        b.call("r", "main")
        b.ret(0)
        with pytest.raises(CertificationError, match="recursive"):
            certify_module(module_of(b))

    def test_unknown_callee_is_rejected(self):
        b = FunctionBuilder("main")
        b.call("r", "nowhere")
        b.ret(0)
        with pytest.raises(CertificationError, match="nowhere"):
            certify_module(module_of(b))


class TestDifferentialAllKernels:
    @pytest.mark.parametrize("style", [CACHELINE_STYLE, RDTSC_STYLE])
    def test_static_bound_dominates_dynamic_gap(self, style):
        for spec in KERNELS:
            module = build_instrumented(spec, style=style, scale=SCALE)
            certificate = certify_module(module)
            assert certificate.certified, spec.name
            dynamic = max_dynamic_gap(module)
            assert certificate.internal_bound + 1e-6 >= dynamic, (
                "{} ({}): static {:.0f} < dynamic {:.0f}".format(
                    spec.name, style, certificate.internal_bound, dynamic
                )
            )

    def test_stripping_any_lone_latch_probe_flips_certification(self):
        # For every kernel, find loops whose only probe is the latch's
        # (and that call no instrumented function, whose entry probe
        # would fire anyway); stripping it must yield an unbounded gap
        # with a witness, and the linter must flag the missing probe.
        from repro.instrument.cfg import ControlFlowGraph

        flipped = 0
        for spec in KERNELS:
            module = build_instrumented(spec, scale=SCALE)
            for fn in module.functions.values():
                cfg = ControlFlowGraph(fn)
                for loop in cfg.natural_loops():
                    latch = fn.block(loop.latch)
                    others = any(
                        instr.is_probe or instr.op == "call"
                        for label in loop.body
                        if label != loop.latch
                        for instr in fn.block(label).instrs
                    )
                    if others or not any(
                        i.is_probe for i in latch.instrs
                    ):
                        continue
                    saved = list(latch.instrs)
                    latch.instrs = [
                        i for i in latch.instrs if not i.is_probe
                    ]
                    certificate = certify_module(module)
                    assert not certificate.certified, (
                        spec.name, fn.name, loop.latch
                    )
                    assert certificate.witness
                    findings = lint_function(fn, expect_probes=True)
                    assert any(
                        f.check == "missing-latch-probe"
                        and f.severity == ERROR
                        for f in findings
                    ), (spec.name, fn.name, loop.latch)
                    latch.instrs = saved
                    flipped += 1
        assert flipped >= 10  # the registry is full of such loops


class TestCLI:
    def test_cli_certifies_a_kernel(self, capsys):
        assert main(["--kernel", "word_count", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "word_count" in out and "ok" in out

    def test_cli_differential_mode(self, capsys):
        code = main([
            "--kernel", "kmeans", "--scale", "0.1", "--differential",
        ])
        assert code == 0
        assert "sound" in capsys.readouterr().out

    def test_cli_enforces_bound(self, capsys):
        assert main(
            ["--kernel", "fft", "--scale", "0.1", "--bound", "1"]
        ) == 1
        assert "FAILED" in capsys.readouterr().err

    def test_cli_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for spec in KERNELS[:3]:
            assert spec.name in out
