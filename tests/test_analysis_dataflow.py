"""Tests for the iterative dataflow framework and its three clients."""

import pytest

from repro.instrument.builder import FunctionBuilder
from repro.instrument.analysis.dataflow import (
    AnalysisError,
    DataflowAnalysis,
    Definition,
    Liveness,
    PARAM_SITE,
    ReachableBlocks,
    ReachingDefinitions,
    instr_defs,
    instr_uses,
    terminator_uses,
)
from repro.instrument.ir import Instr, Terminator


def diamond_function():
    """entry -> (then | else) -> merge; 'x' defined on both arms."""
    b = FunctionBuilder("diamond", params=["p"])
    cond = b.emit("cmp_lt", "c", "p", 10)
    b.br(cond, "then", "else")
    b.block("then")
    b.li("x", 1)
    b.jump("merge")
    b.block("else")
    b.li("x", 2)
    b.jump("merge")
    b.block("merge")
    b.emit("add", "y", "x", "p")
    b.ret("y")
    return b.function


def one_armed_def_function():
    """'x' is defined on only one arm but read at the merge."""
    b = FunctionBuilder("onearm", params=["p"])
    cond = b.emit("cmp_lt", "c", "p", 10)
    b.br(cond, "then", "merge")
    b.block("then")
    b.li("x", 1)
    b.jump("merge")
    b.block("merge")
    b.emit("add", "y", "x", "p")
    b.ret("y")
    return b.function


class TestUseDefHelpers:
    def test_call_callee_is_not_a_use(self):
        instr = Instr("call", "r", ("helper", "a", "b"))
        assert instr_uses(instr) == ("a", "b")
        assert instr_defs(instr) == ("r",)

    def test_ext_call_callee_is_not_a_use(self):
        instr = Instr("ext_call", None, ("syscall", "fd"), {"cost": 10})
        assert instr_uses(instr) == ("fd",)
        assert instr_defs(instr) == ()

    def test_branch_labels_are_not_uses(self):
        term = Terminator("br", ("cond", "then", "else"))
        assert terminator_uses(term) == ("cond",)

    def test_ret_value_is_a_use(self):
        assert terminator_uses(Terminator("ret", ("v",))) == ("v",)
        assert terminator_uses(Terminator("ret", (7,))) == ()
        assert terminator_uses(Terminator("jump", ("next",))) == ()


class TestReachingDefinitions:
    def test_both_arm_defs_reach_merge(self):
        fn = diamond_function()
        result = ReachingDefinitions().run(fn)
        sites = {
            (d.label, d.index)
            for d in result.entry["merge"]
            if d.register == "x"
        }
        assert sites == {("then", 0), ("else", 0)}

    def test_params_are_definitions(self):
        fn = diamond_function()
        result = ReachingDefinitions().run(fn)
        assert Definition("p", PARAM_SITE, 0) in result.entry["merge"]

    def test_redefinition_kills(self):
        b = FunctionBuilder("kill")
        b.li("x", 1)
        b.li("x", 2)
        b.ret("x")
        result = ReachingDefinitions().run(b.function)
        xs = [d for d in result.exit["entry"] if d.register == "x"]
        assert [d.index for d in xs] == [1]

    def test_no_undefined_uses_in_well_formed_code(self):
        assert ReachingDefinitions().undefined_uses(diamond_function()) == []

    def test_one_armed_def_is_not_flagged(self):
        # "Obviously undefined" means no def on ANY path; a def on one
        # path suffices (the IR is not SSA; the frontend emits this shape).
        assert ReachingDefinitions().undefined_uses(
            one_armed_def_function()
        ) == []

    def test_truly_undefined_use_is_flagged(self):
        b = FunctionBuilder("bad")
        b.emit("add", "y", "ghost", 1)
        b.ret("y")
        flagged = ReachingDefinitions().undefined_uses(b.function)
        assert flagged == [("entry", 0, "ghost")]

    def test_undefined_terminator_use_is_flagged(self):
        b = FunctionBuilder("bad")
        b.ret("ghost")
        assert ReachingDefinitions().undefined_uses(b.function) == [
            ("entry", None, "ghost")
        ]

    def test_unreachable_blocks_are_skipped(self):
        b = FunctionBuilder("skip")
        b.ret(0)
        b.block("island")
        b.emit("add", "y", "ghost", 1)
        b.ret("y")
        assert ReachingDefinitions().undefined_uses(b.function) == []


class TestLiveness:
    def test_loop_carried_register_stays_live(self):
        b = FunctionBuilder("loop")
        b.li("acc", 0)

        def body(i):
            b.emit("add", "acc", "acc", i)

        b.counted_loop("l", 10, body)
        b.ret("acc")
        fn = b.function
        result = Liveness().run(fn)
        assert "acc" in result.entry["l.header"]
        assert Liveness().dead_definitions(fn) == []

    def test_overwritten_store_is_dead(self):
        b = FunctionBuilder("dead")
        b.li("x", 1)
        b.li("x", 2)
        b.ret("x")
        dead = Liveness().dead_definitions(b.function)
        assert dead == [("entry", 0, "x")]

    def test_pure_ops_filter(self):
        b = FunctionBuilder("calls")
        b.ext_call("ignored", "syscall", 10)
        b.ret(0)
        fn = b.function
        assert Liveness().dead_definitions(fn, pure_ops={"li"}) == []
        # Without the filter even the ext_call's dead dst is reported.
        assert Liveness().dead_definitions(fn) == [("entry", 0, "ignored")]

    def test_dead_across_blocks(self):
        b = FunctionBuilder("cross")
        b.li("x", 1)
        b.jump("next")
        b.block("next")
        b.li("x", 2)
        b.ret("x")
        assert Liveness().dead_definitions(b.function) == [("entry", 0, "x")]


class TestReachableBlocks:
    def test_island_is_unreachable(self):
        b = FunctionBuilder("r")
        b.ret(0)
        b.block("island")
        b.ret(1)
        assert ReachableBlocks().unreachable(b.function) == ["island"]

    def test_all_blocks_reachable_in_diamond(self):
        assert ReachableBlocks().unreachable(diamond_function()) == []


class TestFramework:
    def test_unknown_direction_rejected(self):
        class Sideways(ReachableBlocks):
            DIRECTION = "sideways"

        with pytest.raises(AnalysisError):
            Sideways().run(diamond_function())

    def test_subclass_must_implement_lattice(self):
        with pytest.raises(NotImplementedError):
            DataflowAnalysis().run(diamond_function())

    def test_converges_in_few_passes(self):
        result = ReachingDefinitions().run(diamond_function())
        assert result.passes <= 5
