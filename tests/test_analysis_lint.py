"""Tests for the IR linter and the strengthened verifier."""

import pytest

from repro.instrument.analysis.lint import (
    ERROR,
    WARNING,
    lint_function,
    lint_module,
)
from repro.instrument.builder import FunctionBuilder
from repro.instrument.ir import Instr, Module
from repro.instrument.kernels import KERNELS
from repro.instrument.optim import optimize_function
from repro.instrument.passes import (
    CACHELINE_STYLE,
    LoopUnrollPass,
    ProbeInsertionPass,
    VerifyError,
    verify_function,
)


def checks(findings, name):
    return [f for f in findings if f.check == name]


class TestLintChecks:
    def test_use_before_def_is_an_error(self):
        b = FunctionBuilder("f")
        b.emit("add", "y", "ghost", 1)
        b.ret("y")
        found = checks(lint_function(b.function), "use-before-def")
        assert len(found) == 1
        assert found[0].severity == ERROR
        assert "ghost" in found[0].message

    def test_unreachable_block_is_a_warning(self):
        b = FunctionBuilder("f")
        b.ret(0)
        b.block("island")
        b.ret(1)
        found = checks(lint_function(b.function), "unreachable-block")
        assert [f.block for f in found] == ["island"]
        assert found[0].severity == WARNING

    def test_dead_store_is_a_warning(self):
        b = FunctionBuilder("f")
        b.li("x", 1)
        b.li("x", 2)
        b.ret("x")
        found = checks(lint_function(b.function), "dead-store")
        assert len(found) == 1
        assert found[0].severity == WARNING

    def test_dead_ext_call_is_not_a_dead_store(self):
        b = FunctionBuilder("f")
        b.ext_call("ignored", "syscall", 10)
        b.ret(0)
        assert checks(lint_function(b.function), "dead-store") == []

    def test_ext_call_without_cost(self):
        b = FunctionBuilder("f")
        b._current.append(Instr("ext_call", None, ("syscall",)))
        b.ret(0)
        found = checks(lint_function(b.function), "ext-call-cost")
        assert len(found) == 1 and found[0].severity == ERROR

    def test_ext_call_negative_cost(self):
        b = FunctionBuilder("f")
        b._current.append(
            Instr("ext_call", None, ("syscall",), {"cost": -5})
        )
        b.ret(0)
        assert len(checks(lint_function(b.function), "ext-call-cost")) == 1

    def test_malformed_probe_attrs(self):
        b = FunctionBuilder("f")
        b._current.append(
            Instr("probe", None, (), {"style": "morse", "period": 0,
                                      "cost": -1})
        )
        b.ret(0)
        found = checks(lint_function(b.function), "probe-attrs")
        messages = " ".join(f.message for f in found)
        assert "style" in messages
        assert "period" in messages
        assert "cost" in messages

    def test_well_formed_probe_is_clean(self):
        b = FunctionBuilder("f")
        ProbeInsertionPass(CACHELINE_STYLE).run(b_finish(b))
        assert checks(lint_function(b.function), "probe-attrs") == []


def b_finish(b):
    b.ret(0)
    return b.function


class TestProbePlacement:
    def instrumented_loop(self):
        b = FunctionBuilder("f")
        b.li("acc", 0)

        def body(i):
            b.emit("add", "acc", "acc", i)

        b.counted_loop("l", 10, body)
        b.ret("acc")
        ProbeInsertionPass(CACHELINE_STYLE).run(b.function)
        return b.function

    def test_instrumented_function_is_clean(self):
        fn = self.instrumented_loop()
        findings = lint_function(fn, expect_probes=True)
        assert [f for f in findings if f.severity == ERROR] == []

    def test_missing_entry_probe(self):
        fn = self.instrumented_loop()
        entry = fn.block(fn.entry)
        entry.instrs = [i for i in entry.instrs if not i.is_probe]
        found = checks(
            lint_function(fn, expect_probes=True), "missing-entry-probe"
        )
        assert len(found) == 1 and found[0].severity == ERROR

    def test_missing_latch_probe(self):
        fn = self.instrumented_loop()
        latch = fn.block("l.latch")
        latch.instrs = [i for i in latch.instrs if not i.is_probe]
        found = checks(
            lint_function(fn, expect_probes=True), "missing-latch-probe"
        )
        assert len(found) == 1
        assert found[0].block == "l.latch"

    def test_placement_not_enforced_by_default(self):
        b = FunctionBuilder("f")
        b.ret(0)
        findings = lint_function(b.function)  # expect_probes=False
        assert checks(findings, "missing-entry-probe") == []


class TestKernelRegistry:
    def test_every_instrumented_kernel_lints_clean_of_errors(self):
        for spec in KERNELS:
            module = spec.build(scale=0.05)
            for fn in module.functions.values():
                optimize_function(fn)
            probe_pass = ProbeInsertionPass(CACHELINE_STYLE)
            for fn in module.functions.values():
                probe_pass.run(fn)
            unroll = LoopUnrollPass()
            for fn in module.functions.values():
                unroll.run(fn)
            findings = lint_module(module, expect_probes=True)
            errors = [f for f in findings if f.severity == ERROR]
            assert errors == [], "{}: {}".format(
                spec.name, [str(f) for f in errors]
            )

    def test_finding_str_is_informative(self):
        b = FunctionBuilder("f")
        b.emit("add", "y", "ghost", 1)
        b.ret("y")
        finding = lint_function(b.function)[0]
        text = str(finding)
        assert "f.entry" in text and "use-before-def" in text


class TestStrengthenedVerify:
    def test_verify_rejects_truly_undefined_register(self):
        b = FunctionBuilder("f")
        b.emit("add", "y", "ghost", 1)
        b.ret("y")
        with pytest.raises(VerifyError, match="ghost"):
            verify_function(b.function)

    def test_verify_accepts_one_armed_definition(self):
        b = FunctionBuilder("f", params=["p"])
        cond = b.emit("cmp_lt", "c", "p", 10)
        b.br(cond, "then", "merge")
        b.block("then")
        b.li("x", 1)
        b.jump("merge")
        b.block("merge")
        b.emit("add", "y", "x", "p")
        b.ret("y")
        assert verify_function(b.function)

    def test_verify_accepts_every_kernel(self):
        for spec in KERNELS:
            module = spec.build(scale=0.05)
            for fn in module.functions.values():
                assert verify_function(fn), spec.name

    def test_module_lint_covers_all_functions(self):
        module = Module("m")
        good = FunctionBuilder("good")
        good.ret(0)
        module.add(good.function)
        bad = FunctionBuilder("bad")
        bad.emit("add", "y", "ghost", 1)
        bad.ret("y")
        module.add(bad.function)
        findings = lint_module(module)
        assert {f.function for f in findings} == {"bad"}
