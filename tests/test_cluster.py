"""Tests for the rack-scale cluster layer (repro.cluster).

Covers the acceptance criteria: a >=4-server rack runs end-to-end; JSQ and
Po2 strictly beat random routing at high load; telemetry staleness degrades
shortest-expected-delay monotonically; and the rack-wide metrics merge
equals pooled per-request computation.
"""

import pytest

from repro.cluster import (
    Cluster,
    NetworkFabric,
    Po2Policy,
    TelemetryBoard,
    make_cluster_policy,
)
from repro.core import concord, persephone_fcfs
from repro.hardware import c6420
from repro.metrics import summarize_slowdowns
from repro.workloads import PoissonProcess, bimodal_50_1_50_100

SEED = 17
NUM_SERVERS = 4
WORKERS = 2
QUANTUM_US = 5.0
NUM_REQUESTS = 3000


def rack_capacity_rps(workload):
    return NUM_SERVERS * WORKERS * 1e6 / workload.mean_us()


def run_rack(policy, load_frac=0.75, fabric=None, config=None, seed=SEED,
             num_requests=NUM_REQUESTS, num_servers=NUM_SERVERS):
    workload = bimodal_50_1_50_100()
    cluster = Cluster(
        c6420(WORKERS), config or concord(QUANTUM_US), num_servers,
        policy=policy, seed=seed, fabric=fabric,
    )
    load = load_frac * rack_capacity_rps(workload)
    return cluster.run(workload, PoissonProcess(load), num_requests)


class TestEndToEnd:
    def test_rack_drains_and_conserves_requests(self):
        result = run_rack("jsq")
        assert result.drained
        rids = [r.rid for r in result.records]
        assert len(rids) == NUM_REQUESTS
        assert len(set(rids)) == NUM_REQUESTS
        assert sum(result.routed) == NUM_REQUESTS
        assert result.replies == NUM_REQUESTS
        assert all(r.remaining_cycles == 0 for r in result.records)

    def test_every_server_participates(self):
        result = run_rack("jsq")
        assert len(result.server_results) == NUM_SERVERS
        assert all(count > 0 for count in result.routed)
        assert all(r.drained for r in result.server_results)

    def test_deterministic_given_seed(self):
        a = run_rack("po2")
        b = run_rack("po2")
        assert a.slowdowns() == b.slowdowns()
        assert a.routed == b.routed

    def test_different_seeds_differ(self):
        a = run_rack("po2", seed=17)
        b = run_rack("po2", seed=18)
        assert a.slowdowns() != b.slowdowns()

    def test_same_arrival_stream_across_policies(self):
        # Common random numbers at rack scale: routing must not perturb the
        # workload, so policy comparisons are paired.
        a = {r.rid: (r.kind, r.service_us) for r in run_rack("random").records}
        b = {r.rid: (r.kind, r.service_us) for r in run_rack("jsq").records}
        assert a == b

    def test_cluster_is_single_shot(self):
        workload = bimodal_50_1_50_100()
        cluster = Cluster(
            c6420(WORKERS), concord(QUANTUM_US), 2, policy="rr", seed=1
        )
        cluster.run(workload, PoissonProcess(50_000), 200)
        with pytest.raises(RuntimeError):
            cluster.run(workload, PoissonProcess(50_000), 200)


class TestPolicyOrdering:
    def test_jsq_beats_random_at_high_load(self):
        random_p99 = run_rack("random").summary().p99
        jsq_p99 = run_rack("jsq").summary().p99
        assert jsq_p99 < random_p99

    def test_po2_beats_random_at_high_load(self):
        random_p99 = run_rack("random").summary().p99
        po2_p99 = run_rack("po2").summary().p99
        assert po2_p99 < random_p99

    def test_po2_within_small_factor_of_jsq(self):
        jsq_p99 = run_rack("jsq").summary().p99
        po2_p99 = run_rack("po2").summary().p99
        assert po2_p99 <= 1.5 * jsq_p99

    def test_round_robin_routes_evenly(self):
        result = run_rack("rr")
        assert max(result.routed) - min(result.routed) <= 1
        assert result.imbalance() == pytest.approx(1.0, abs=0.01)

    def test_sed_matches_jsq_on_homogeneous_rack(self):
        # With identical servers, capacity weighting cancels and
        # shortest-expected-delay degenerates to JSQ.
        assert run_rack("sed").slowdowns() == run_rack("jsq").slowdowns()

    def test_two_layer_claim_nonpreemptive_rack_is_worse(self):
        # Inter-server balancing cannot rescue a rack whose members let
        # long requests block short ones: Concord+JSQ must beat
        # no-preemption+JSQ on the same offered stream.
        concord_p99 = run_rack("jsq").summary().p99
        blocked_p99 = run_rack("jsq", config=persephone_fcfs()).summary().p99
        assert concord_p99 < blocked_p99


class TestStaleness:
    def test_staleness_degrades_sed_monotonically(self):
        tails = []
        for staleness_us in (0.0, 50.0, 200.0, 800.0):
            fabric = NetworkFabric(telemetry_staleness_us=staleness_us)
            tails.append(run_rack("sed", fabric=fabric).summary().p99)
        assert tails == sorted(tails)
        # The degradation is substantial, not a rounding artifact.
        assert tails[-1] > 2.0 * tails[0]

    def test_counter_telemetry_no_reports(self):
        fabric = NetworkFabric(telemetry_interval_us=0.0)
        result = run_rack("jsq", fabric=fabric, num_requests=500)
        assert result.telemetry_updates == 0
        assert result.drained

    def test_report_telemetry_updates_flow(self):
        result = run_rack("jsq", num_requests=500)
        assert result.telemetry_updates > 0


class TestMetricsMerge:
    def test_rack_merge_equals_pooled_per_request_computation(self):
        result = run_rack("po2")
        # Recompute independently: pool every per-server record, order by
        # arrival rack-wide, apply the same warmup skip, summarize.
        pooled = [
            record
            for server_result in result.server_results
            for record in server_result.records
        ]
        pooled.sort(key=lambda r: r.arrival_cycle)
        skip = int(len(pooled) * 0.1)
        expected = [r.slowdown() for r in pooled[skip:]]
        assert result.slowdowns() == expected
        merged = result.summary()
        recomputed = summarize_slowdowns(expected)
        assert merged.p99 == recomputed.p99
        assert merged.p999 == recomputed.p999

    def test_client_latencies_include_routing_and_hop(self):
        result = run_rack("jsq", num_requests=500)
        clock = result.clock
        for record, latency_us in zip(
            result.measured_records(), result.client_latencies_us()
        ):
            sojourn_us = clock.cycles_to_us(record.sojourn_cycles())
            assert latency_us > sojourn_us

    def test_throughput_positive(self):
        result = run_rack("jsq", num_requests=500)
        assert result.throughput_rps() > 0


class TestPolicyFactory:
    def test_named_policies(self):
        for name in ("random", "rr", "jsq", "po2", "sed"):
            assert make_cluster_policy(name).name == name

    def test_power_of_d_variants(self):
        assert make_cluster_policy("po3").d == 3
        assert make_cluster_policy("po2").d == 2

    def test_instances_pass_through(self):
        policy = Po2Policy(d=4)
        assert make_cluster_policy(policy) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            make_cluster_policy("magic")

    def test_po1_rejected(self):
        with pytest.raises(ValueError):
            Po2Policy(d=1)


class TestTelemetryBoard:
    def test_counter_mode_tracks_outstanding(self):
        board = TelemetryBoard(2, counter_mode=True)
        board.on_route(0)
        board.on_route(0)
        board.on_route(1)
        assert board.snapshot() == [2, 1]
        board.on_reply(0)
        assert board.queue_len(0) == 1
        board.on_reply(0)
        board.on_reply(0)  # never goes negative
        assert board.queue_len(0) == 0

    def test_report_mode_ignores_routing(self):
        board = TelemetryBoard(2, counter_mode=False)
        board.on_route(0)
        assert board.queue_len(0) == 0
        board.record_report(0, 7)
        assert board.queue_len(0) == 7
        assert board.updates == 1

    def test_fabric_validation(self):
        with pytest.raises(ValueError):
            NetworkFabric(hop_latency_us=-1.0)
        with pytest.raises(ValueError):
            NetworkFabric(telemetry_staleness_us=-1.0)


class TestZeroRequestServers:
    """Regression: summary math must tolerate servers that got nothing.

    A 1-request run over a 4-server rack leaves three servers idle — the
    shape health-aware draining and shed-everything runs produce at scale.
    """

    def test_idle_servers_summarize_as_none(self):
        result = run_rack("jsq", num_requests=1)
        summaries = result.per_server_summaries(warmup_frac=0.0)
        assert summaries.count(None) == NUM_SERVERS - 1
        lone = next(s for s in summaries if s is not None)
        assert lone.p50 >= 1.0

    def test_imbalance_defined_with_idle_servers(self):
        result = run_rack("jsq", num_requests=1)
        assert result.imbalance() == NUM_SERVERS  # max=1, mean=1/4
        assert result.summary(warmup_frac=0.0).p999 >= 1.0

    def test_imbalance_defined_with_no_requests_routed(self):
        result = run_rack("jsq", num_requests=1)
        result.routed = [0] * NUM_SERVERS
        assert result.imbalance() == 1.0
        result.routed = []
        assert result.imbalance() == 1.0
