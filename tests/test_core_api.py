"""Tests for the Concord application API and its Server integration."""

import random

import pytest

from repro.core import Application, Server, SyntheticApp, persephone_fcfs
from repro.hardware import c6420
from repro.kvstore import LevelDBApp
from repro.workloads import PoissonProcess, fixed_1us


class TestApplicationBase:
    def test_handle_request_abstract(self):
        with pytest.raises(NotImplementedError):
            Application().handle_request({})

    def test_default_service_time_passthrough(self):
        app = Application()
        assert app.service_time_us("GET", 1.5, random.Random(0)) == 1.5


class TestSyntheticApp:
    def test_counts_requests(self):
        app = SyntheticApp()
        app.setup()
        app.setup_worker(0)
        app.setup_worker(1)
        response = app.handle_request({})
        assert response["status"] == "ok"
        assert app.requests_handled == 1
        assert app.workers_seen == {0, 1}


class TestServerIntegration:
    def test_setup_hooks_called_per_worker(self):
        app = SyntheticApp()
        Server(c6420(3), persephone_fcfs(), seed=0, app=app)
        assert app.workers_seen == {0, 1, 2}

    def test_service_time_hook_applied(self):
        class Doubler(Application):
            def handle_request(self, request):
                return None

            def service_time_us(self, kind, sampled_us, rng):
                return sampled_us * 2.0

        server = Server(c6420(2), persephone_fcfs(), seed=0, app=Doubler())
        result = server.run(fixed_1us(), PoissonProcess(10_000), 50)
        assert all(r.service_us == 2.0 for r in result.records)

    def test_leveldb_app_populates_on_setup(self):
        app = LevelDBApp(num_keys=25)
        Server(c6420(2), persephone_fcfs(), seed=0, app=app)
        assert app.db.count() == 25
        assert app.workers_seen == {0, 1}
