"""Tests for runtime configuration and safety models."""

import random

import pytest

from repro.core.config import (
    ApiWindowSafety,
    LockCounterSafety,
    NoSafety,
    RuntimeConfig,
)
from repro.core.preemption import PostedIPI
from repro.core.presets import (
    concord,
    concord_no_steal,
    coop_jbsq,
    coop_single_queue,
    ideal_single_queue,
    persephone_fcfs,
    shinjuku,
)
from repro.hardware import CycleClock, c6420


def rng(seed=0):
    return random.Random(seed)


class TestRuntimeConfig:
    def test_quantum_requires_mechanism(self):
        with pytest.raises(ValueError):
            RuntimeConfig(name="bad", quantum_us=5.0)

    def test_invalid_queue_mode(self):
        with pytest.raises(ValueError):
            RuntimeConfig(name="bad", queue_mode="multi")

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            RuntimeConfig(name="bad", queue_mode="jbsq", jbsq_depth=0)

    def test_negative_quantum(self):
        with pytest.raises(ValueError):
            RuntimeConfig(
                name="bad", quantum_us=-1.0,
                preemption_factory=lambda machine: PostedIPI(),
            )

    def test_replace_makes_modified_copy(self):
        config = shinjuku(5.0)
        other = config.replace(name="Shinjuku-2us", quantum_us=2.0)
        assert other.quantum_us == 2.0
        assert config.quantum_us == 5.0

    def test_preemptive_property(self):
        assert shinjuku(5.0).preemptive
        assert not persephone_fcfs().preemptive


class TestPresets:
    def test_shinjuku_shape(self):
        config = shinjuku(5.0)
        assert config.queue_mode == "sq"
        assert not config.work_conserving_dispatcher
        mech = config.preemption_factory(c6420())
        assert mech.name == "posted-ipi"

    def test_persephone_is_run_to_completion(self):
        config = persephone_fcfs()
        assert config.quantum_us is None
        assert config.dispatch_cost_scale > 1.0

    def test_concord_has_all_three_mechanisms(self):
        config = concord(5.0)
        assert config.queue_mode == "jbsq"
        assert config.jbsq_depth == 2
        assert config.work_conserving_dispatcher
        mech = config.preemption_factory(c6420())
        assert mech.name == "cacheline"

    def test_ablation_chain_is_cumulative(self):
        step1 = coop_single_queue(5.0)
        step2 = coop_jbsq(5.0)
        full = concord(5.0)
        assert step1.queue_mode == "sq"
        assert step2.queue_mode == "jbsq"
        assert not step1.work_conserving_dispatcher
        assert not step2.work_conserving_dispatcher
        assert full.work_conserving_dispatcher

    def test_concord_no_steal(self):
        config = concord_no_steal(5.0)
        assert not config.work_conserving_dispatcher
        assert config.queue_mode == "jbsq"

    def test_ideal_single_queue_variants(self):
        no_preempt = ideal_single_queue()
        assert no_preempt.ideal and not no_preempt.preemptive
        precise = ideal_single_queue(quantum_us=5.0, notice_sigma_us=0.0)
        mech = precise.preemption_factory(c6420())
        assert mech.notice_delay_cycles(rng()) == 0
        lagged = ideal_single_queue(quantum_us=5.0, notice_sigma_us=2.0)
        mech = lagged.preemption_factory(c6420())
        assert any(mech.notice_delay_cycles(rng(i)) > 0 for i in range(5))


class TestSafetyModels:
    clock = CycleClock()

    def test_no_safety_never_defers(self):
        assert NoSafety().defer_cycles("GET", self.clock, rng()) == 0

    def test_api_window_defers_within_call(self):
        safety = ApiWindowSafety({"GET": 100.0})
        r = rng(1)
        defers = [safety.defer_cycles("GET", self.clock, r) for _ in range(500)]
        limit = self.clock.us_to_cycles(100.0)
        assert all(0 <= d <= limit for d in defers)
        assert max(defers) > limit // 2  # long deferrals do occur

    def test_api_window_unknown_kind_uses_default(self):
        safety = ApiWindowSafety({}, default_us=0.0)
        assert safety.defer_cycles("PUT", self.clock, rng()) == 0

    def test_lock_counter_rarely_defers(self):
        safety = LockCounterSafety(
            critical_us={"PUT": 0.2}, held_fraction={"PUT": 0.1}
        )
        r = rng(2)
        defers = [safety.defer_cycles("PUT", self.clock, r) for _ in range(2000)]
        nonzero = [d for d in defers if d > 0]
        # ~10% of signals land in the tiny critical section.
        assert 0.03 < len(nonzero) / len(defers) < 0.2
        assert max(nonzero) <= self.clock.us_to_cycles(0.2)

    def test_lock_counter_zero_fraction_never_defers(self):
        safety = LockCounterSafety(critical_us={"GET": 1.0})
        assert safety.defer_cycles("GET", self.clock, rng()) == 0
