"""Focused tests for dispatcher behaviour: action priorities, stale-signal
skipping, and the work-conserving steal path."""

from repro.core import Server, concord, shinjuku
from repro.core.presets import persephone_fcfs
from repro.hardware import c6420
from repro.workloads import DeterministicProcess, PoissonProcess
from repro.workloads.distributions import bimodal
from repro.workloads.named import bimodal_50_1_50_100, fixed_1us


def make_server(config, workers=2, seed=0):
    return Server(c6420(workers), config, seed=seed)


class TestSignalHandling:
    def test_stale_signals_are_skipped_cheaply(self):
        # Short quanta on a workload with many completions near the quantum
        # boundary produce stale preemption entries, which the dispatcher
        # must skip without paying signal costs.
        config = shinjuku(1.0)
        server = make_server(config, workers=4)
        workload = bimodal(50, 1.05, 50, 1.1)
        result = server.run(workload, PoissonProcess(1_000_000), 3000)
        stats = result.dispatcher_stats
        assert stats["stale_signals_skipped"] > 0
        assert stats["signals_sent"] + stats["stale_signals_skipped"] > 0

    def test_signals_sent_at_most_once_per_quantum(self):
        config = shinjuku(5.0)
        server = make_server(config, workers=2)
        workload = bimodal(50, 1.0, 50, 20.0)
        result = server.run(workload, PoissonProcess(50_000), 2000)
        total_preempts = sum(r.preemptions for r in result.records)
        # Every worker preemption was triggered by exactly one signal.
        assert result.dispatcher_stats["signals_sent"] >= total_preempts


class TestWorkConservation:
    def test_steal_buffer_requests_complete(self):
        config = concord(5.0)
        server = make_server(config, workers=2, seed=4)
        # Overload so per-worker queues are full and the dispatcher steals.
        result = server.run(bimodal_50_1_50_100(), PoissonProcess(60_000),
                            3000)
        stats = result.dispatcher_stats
        assert stats["steals_started"] > 0
        assert stats["steal_completions"] == len(result.stolen_requests())
        assert result.drained

    def test_steal_accounts_busy_cycles(self):
        config = concord(5.0)
        server = make_server(config, workers=2, seed=4)
        result = server.run(bimodal_50_1_50_100(), PoissonProcess(60_000),
                            3000)
        if result.dispatcher_stats["steals_started"]:
            assert result.dispatcher_stats["steal_busy_cycles"] > 0

    def test_no_steals_when_workers_have_slots(self):
        config = concord(5.0)
        server = make_server(config, workers=8, seed=4)
        # Trivial load: queues never fill, so nothing to steal.
        result = server.run(fixed_1us(), PoissonProcess(10_000), 500)
        assert result.dispatcher_stats["steals_started"] == 0

    def test_stolen_share_grows_with_load(self):
        def stolen_count(rate):
            server = make_server(concord(5.0), workers=2, seed=9)
            result = server.run(
                bimodal_50_1_50_100(), PoissonProcess(rate), 2500
            )
            return result.dispatcher_stats["steal_completions"]

        assert stolen_count(55_000) >= stolen_count(20_000)


class TestDispatcherSaturation:
    def test_dispatcher_bound_workload_saturates_dispatcher(self):
        server = make_server(persephone_fcfs(), workers=14)
        result = server.run(fixed_1us(), PoissonProcess(4_500_000), 20_000)
        assert result.dispatcher_utilization() > 0.95

    def test_rx_override_lowers_dispatcher_load(self):
        base = make_server(persephone_fcfs(), workers=14).run(
            fixed_1us(), PoissonProcess(3_000_000), 8000
        )
        cheap_rx = make_server(
            persephone_fcfs().replace(rx_cost_cycles=10), workers=14
        ).run(fixed_1us(), PoissonProcess(3_000_000), 8000)
        assert (
            cheap_rx.dispatcher_stats["busy_cycles"]
            < base.dispatcher_stats["busy_cycles"]
        )


class TestDeterministicArrivals:
    def test_single_worker_single_request_latency_budget(self):
        # One sparse request: sojourn = rx + push + receive + switch +
        # service, each charged exactly once.
        from repro import constants

        server = make_server(persephone_fcfs(), workers=1)
        result = server.run(fixed_1us(), DeterministicProcess(1000), 1)
        record = result.records[0]
        extra = record.sojourn_cycles() - record.service_cycles
        scale = persephone_fcfs().dispatch_cost_scale
        expected_floor = (
            int(constants.DISPATCH_RX_CYCLES * scale)
            + int(constants.DISPATCH_PUSH_CYCLES * scale)
            + constants.SQ_WORKER_RECEIVE_CYCLES
            + constants.COOP_CONTEXT_SWITCH_CYCLES
        )
        # Runtime bookkeeping stretches service slightly; allow small slack.
        assert expected_floor <= extra <= expected_floor + 100
