"""Tests for locality-aware placement of preempted requests (section 3.1)."""

from repro.core import Server, concord
from repro.hardware import c6420
from repro.workloads import PoissonProcess
from repro.workloads.named import bimodal_50_1_50_100


def run(locality, rate=180_000, n=3000, seed=7):
    config = concord(5.0).replace(
        locality_aware=locality, work_conserving_dispatcher=False,
        name="Concord-local" if locality else "Concord",
    )
    server = Server(c6420(), config, seed=seed)
    return server.run(bimodal_50_1_50_100(), PoissonProcess(rate), n)


class TestLocalityAwarePlacement:
    def test_policies_peek_matches_pop(self):
        from repro.core.policies import FCFSPolicy, SRPTPolicy
        from repro.core.request import Request

        for policy in (FCFSPolicy(), SRPTPolicy()):
            assert policy.peek() is None
            request = Request(0, "k", 0, 100, 0.04)
            policy.push_new(request)
            assert policy.peek() is request
            assert policy.pop() is request

    def test_locality_reduces_migrations(self):
        baseline = run(locality=False)
        local = run(locality=True)
        migrations = lambda result: sum(r.migrations for r in result.records)
        preemptions = lambda result: sum(
            r.preemptions for r in result.records
        )
        assert preemptions(local) > 0
        assert migrations(local) < migrations(baseline)

    def test_locality_does_not_break_conservation(self):
        result = run(locality=True)
        assert result.drained
        assert all(r.remaining_cycles == 0 for r in result.records)

    def test_warm_resume_improves_long_request_latency(self):
        baseline = run(locality=False, rate=120_000)
        local = run(locality=True, rate=120_000)

        def mean_long_slowdown(result):
            longs = [
                r.slowdown() for r in result.measured_records()
                if r.kind == "long"
            ]
            return sum(longs) / len(longs)

        # Warm switches shave cycles off every resumption; with ~19 slices
        # per long request the mean must not get worse.
        assert mean_long_slowdown(local) <= mean_long_slowdown(baseline) * 1.02
