"""Tests for central-queue scheduling policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import FCFSPolicy, SRPTPolicy, make_policy
from repro.core.request import Request


def make_request(rid, service_cycles=1000, started=False):
    request = Request(
        rid=rid,
        kind="test",
        arrival_cycle=rid,
        service_cycles=service_cycles,
        service_us=service_cycles / 2600,
    )
    if started:
        request.first_dispatch_cycle = rid + 1
    return request


class TestFCFSPolicy:
    def test_pop_in_arrival_order(self):
        policy = FCFSPolicy()
        for rid in range(5):
            policy.push_new(make_request(rid))
        assert [policy.pop().rid for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_preempted_requests_rejoin_tail(self):
        policy = FCFSPolicy()
        policy.push_new(make_request(0))
        policy.push_new(make_request(1))
        first = policy.pop()
        policy.push_preempted(first)
        assert policy.pop().rid == 1
        assert policy.pop().rid == 0

    def test_pop_empty_returns_none(self):
        assert FCFSPolicy().pop() is None

    def test_steal_nonstarted_skips_started(self):
        policy = FCFSPolicy()
        policy.push_new(make_request(0, started=True))
        policy.push_new(make_request(1))
        stolen = policy.steal_nonstarted()
        assert stolen.rid == 1
        assert len(policy) == 1  # started request still queued

    def test_steal_nonstarted_empty(self):
        policy = FCFSPolicy()
        policy.push_new(make_request(0, started=True))
        assert policy.steal_nonstarted() is None
        assert len(policy) == 1

    def test_len_and_bool(self):
        policy = FCFSPolicy()
        assert not policy
        policy.push_new(make_request(0))
        assert policy
        assert len(policy) == 1


class TestSRPTPolicy:
    def test_pop_shortest_remaining_first(self):
        policy = SRPTPolicy()
        policy.push_new(make_request(0, service_cycles=500))
        policy.push_new(make_request(1, service_cycles=100))
        policy.push_new(make_request(2, service_cycles=300))
        assert [policy.pop().rid for _ in range(3)] == [1, 2, 0]

    def test_remaining_not_original_service_decides(self):
        policy = SRPTPolicy()
        long_request = make_request(0, service_cycles=1000)
        long_request.remaining_cycles = 50  # mostly done
        short_request = make_request(1, service_cycles=100)
        policy.push_preempted(long_request)
        policy.push_new(short_request)
        assert policy.pop().rid == 0

    def test_ties_broken_fifo(self):
        policy = SRPTPolicy()
        policy.push_new(make_request(0, service_cycles=100))
        policy.push_new(make_request(1, service_cycles=100))
        assert policy.pop().rid == 0

    def test_steal_nonstarted_preserves_heap(self):
        policy = SRPTPolicy()
        policy.push_new(make_request(0, service_cycles=10, started=True))
        policy.push_new(make_request(1, service_cycles=20, started=True))
        policy.push_new(make_request(2, service_cycles=30))
        stolen = policy.steal_nonstarted()
        assert stolen.rid == 2
        assert [policy.pop().rid for _ in range(2)] == [0, 1]

    def test_pop_empty_returns_none(self):
        assert SRPTPolicy().pop() is None


def test_make_policy():
    assert isinstance(make_policy("fcfs"), FCFSPolicy)
    assert isinstance(make_policy("srpt"), SRPTPolicy)
    with pytest.raises(KeyError):
        make_policy("wfq")


@given(
    services=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1,
                      max_size=40)
)
@settings(max_examples=60)
def test_srpt_always_pops_minimum_remaining(services):
    policy = SRPTPolicy()
    for rid, service in enumerate(services):
        policy.push_new(make_request(rid, service_cycles=service))
    popped = [policy.pop().remaining_cycles for _ in range(len(services))]
    assert popped == sorted(services)


@given(
    rids=st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                  max_size=40, unique=True)
)
@settings(max_examples=60)
def test_fcfs_preserves_insertion_order(rids):
    policy = FCFSPolicy()
    for rid in rids:
        policy.push_new(make_request(rid))
    assert [policy.pop().rid for _ in range(len(rids))] == rids
