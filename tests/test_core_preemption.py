"""Tests for the preemption mechanism models (sections 2.2.1, 3.1, 5.6)."""

import random

import pytest

from repro import constants
from repro.core.preemption import (
    CacheLineCooperation,
    HalfNormalNotice,
    LinuxIPI,
    NoPreemption,
    PostedIPI,
    RdtscSelfPreemption,
    UniformProbeGapNotice,
    UserIPI,
)
from repro.hardware import CoherenceModel


def rng(seed=0):
    return random.Random(seed)


class TestPostedIPI:
    def test_is_precise(self):
        assert PostedIPI().notice_delay_cycles(rng()) == 0.0

    def test_disruption_includes_receive_and_flush(self):
        mech = PostedIPI()
        assert mech.worker_disruption_cycles == (
            constants.IPI_RECEIVE_CYCLES + constants.IPI_EXTRA_DISRUPTION_CYCLES
        )

    def test_no_instrumentation_tax(self):
        assert PostedIPI().proc_overhead == 0.0

    def test_preemptive_context_switch(self):
        assert (
            PostedIPI().context_switch_cycles
            == constants.PREEMPTIVE_CONTEXT_SWITCH_CYCLES
        )


class TestLinuxIPI:
    def test_costs_double_receive(self):
        assert LinuxIPI().worker_disruption_cycles == (
            2 * constants.IPI_RECEIVE_CYCLES + constants.IPI_EXTRA_DISRUPTION_CYCLES
        )


class TestUserIPI:
    def test_scales_with_coherence(self):
        base = UserIPI().worker_disruption_cycles
        scaled = UserIPI(coherence=CoherenceModel(1.5)).worker_disruption_cycles
        assert scaled == int(round(1.5 * constants.UIPI_RECEIVE_CYCLES))
        assert base == constants.UIPI_RECEIVE_CYCLES

    def test_cheaper_than_posted_ipi(self):
        assert UserIPI().worker_disruption_cycles < PostedIPI().worker_disruption_cycles


class TestCacheLineCooperation:
    def test_cnotif_is_one_eighth_of_shinjuku_ipi(self):
        # Section 3.1: the final probe's RaW miss (~150 cycles) is 1/8th the
        # cost of a Shinjuku IPI (~1200 cycles).
        mech = CacheLineCooperation()
        assert mech.raw_miss_cycles * 8 == constants.IPI_RECEIVE_CYCLES
        # Only part of the miss is exposed as lost execution time.
        assert mech.worker_disruption_cycles == int(
            round(
                constants.CACHELINE_MISS_CYCLES
                * constants.CACHELINE_MISS_EXPOSED_FRACTION
            )
        )

    def test_notice_delay_is_bounded_by_probe_gap(self):
        mech = CacheLineCooperation()
        r = rng(1)
        delays = [mech.notice_delay_cycles(r) for _ in range(1000)]
        assert all(0 <= d <= constants.PROBE_INTERVAL_CYCLES for d in delays)
        assert max(delays) > 0

    def test_instrumentation_tax_is_low(self):
        assert CacheLineCooperation().proc_overhead < 0.02

    def test_coherence_scaling(self):
        mech = CacheLineCooperation(coherence=CoherenceModel(1.5))
        assert mech.raw_miss_cycles == int(
            round(1.5 * constants.CACHELINE_MISS_CYCLES)
        )
        assert mech.worker_disruption_cycles == int(
            round(
                mech.raw_miss_cycles * constants.CACHELINE_MISS_EXPOSED_FRACTION
            )
        )

    def test_cooperative_switch_is_cheap(self):
        assert (
            CacheLineCooperation().context_switch_cycles
            == constants.COOP_CONTEXT_SWITCH_CYCLES
        )

    def test_attach_profile_changes_notice(self):
        class StubProfile:
            overhead_fraction = 0.01

            def sample_gap_cycles(self, rng):
                return 10_000

        mech = CacheLineCooperation()
        mech.attach_profile(StubProfile())
        r = rng(2)
        delays = [mech.notice_delay_cycles(r) for _ in range(200)]
        assert max(delays) > constants.PROBE_INTERVAL_CYCLES


class TestRdtscSelfPreemption:
    def test_no_dispatcher_needed(self):
        assert not RdtscSelfPreemption().needs_dispatcher_signal

    def test_flat_21_percent_tax(self):
        assert RdtscSelfPreemption().proc_overhead == pytest.approx(0.21)

    def test_no_notification_disruption(self):
        assert RdtscSelfPreemption().worker_disruption_cycles == 0


class TestNoPreemption:
    def test_not_preemptive(self):
        assert not NoPreemption().preemptive

    def test_signal_raises(self):
        with pytest.raises(RuntimeError):
            NoPreemption().notice_delay_cycles(rng())


class TestNoticeModels:
    def test_half_normal_is_one_sided(self):
        notice = HalfNormalNotice(2600)
        r = rng(3)
        samples = [notice.sample_cycles(r) for _ in range(2000)]
        assert all(s >= 0 for s in samples)
        # Mean of |N(0, s)| is s * sqrt(2/pi) ~= 0.798 s.
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(2600 * 0.7979, rel=0.1)

    def test_half_normal_zero_sigma_is_precise(self):
        assert HalfNormalNotice(0).sample_cycles(rng()) == 0

    def test_half_normal_rejects_negative(self):
        with pytest.raises(ValueError):
            HalfNormalNotice(-1)

    def test_uniform_probe_gap_uses_profile(self):
        class StubProfile:
            def sample_gap_cycles(self, rng):
                return 500

        notice = UniformProbeGapNotice(StubProfile())
        r = rng(4)
        samples = [notice.sample_cycles(r) for _ in range(500)]
        assert all(0 <= s <= 500 for s in samples)
