"""Tests for the section-6 scalability designs: the single-logical-queue
runtime and multi-dispatcher replication."""

import pytest

from repro.core import (
    LogicalQueueServer,
    ReplicatedServer,
    Server,
    concord,
    logical_queue_concord,
    persephone_fcfs,
)
from repro.hardware import c6420
from repro.metrics import summarize_slowdowns
from repro.workloads import PoissonProcess
from repro.workloads.named import bimodal_50_1_50_100, fixed_1us


class TestLogicalQueue:
    def test_drains_and_conserves(self):
        server = LogicalQueueServer(
            c6420(4), logical_queue_concord(5.0), seed=1
        )
        result = server.run(bimodal_50_1_50_100(), PoissonProcess(60_000),
                            2000)
        assert result.drained
        assert len(result.records) == 2000
        assert all(r.remaining_cycles == 0 for r in result.records)
        assert all(r.slowdown() >= 1.0 for r in result.records)

    def test_no_dispatcher_attribute(self):
        server = LogicalQueueServer(
            c6420(2), logical_queue_concord(5.0), seed=1
        )
        with pytest.raises(AttributeError):
            server.dispatcher

    def test_sustains_load_beyond_dispatcher_ceiling(self):
        # One dispatcher tops out ~4.3 MRps on Fixed(1us); no-dispatcher
        # spraying + stealing sails past it.
        server = LogicalQueueServer(
            c6420(), logical_queue_concord(5.0), seed=1
        )
        result = server.run(fixed_1us(), PoissonProcess(6_000_000), 20_000)
        assert summarize_slowdowns(result.slowdowns()).p999 < 50

    def test_stealing_happens_under_imbalance(self):
        server = LogicalQueueServer(
            c6420(8), logical_queue_concord(5.0), seed=2
        )
        result = server.run(
            bimodal_50_1_50_100(), PoissonProcess(120_000), 4000
        )
        assert result.dispatcher_stats["steals_started"] > 0

    def test_preemption_still_works(self):
        server = LogicalQueueServer(
            c6420(4), logical_queue_concord(5.0), seed=3
        )
        result = server.run(
            bimodal_50_1_50_100(), PoissonProcess(50_000), 1500
        )
        longs = [r for r in result.records if r.kind == "long"]
        assert longs
        assert sum(r.preemptions for r in longs) / len(longs) > 10

    def test_stealing_spreads_preempted_fragments(self):
        # A preempted request rejoins its own worker's queue, but idle
        # peers steal the fragments — that IS the logical queue's load
        # balancing.  Each steal moves exactly one entry, so the steal
        # count is bounded by queue insertions (arrivals + preemptions).
        server = LogicalQueueServer(
            c6420(4), logical_queue_concord(5.0), seed=4
        )
        result = server.run(
            bimodal_50_1_50_100(), PoissonProcess(20_000), 800
        )
        steals = result.dispatcher_stats["steals_started"]
        insertions = len(result.records) + sum(
            r.preemptions for r in result.records
        )
        assert 0 < steals <= insertions

    def test_single_shot(self):
        server = LogicalQueueServer(
            c6420(2), logical_queue_concord(5.0), seed=1
        )
        server.run(fixed_1us(), PoissonProcess(10_000), 100)
        with pytest.raises(RuntimeError):
            server.run(fixed_1us(), PoissonProcess(10_000), 100)


class TestReplication:
    def test_partitions_must_divide_workers(self):
        with pytest.raises(ValueError):
            ReplicatedServer(c6420(14), concord(5.0), num_partitions=4)
        with pytest.raises(ValueError):
            ReplicatedServer(c6420(14), concord(5.0), num_partitions=0)

    def test_all_requests_complete_once(self):
        server = ReplicatedServer(c6420(4), persephone_fcfs(),
                                  num_partitions=2, seed=1)
        result = server.run(fixed_1us(), PoissonProcess(500_000), 3000)
        assert result.drained
        assert len(result.records) == 3000

    def test_two_dispatchers_beat_one_when_dispatcher_bound(self):
        rate = 5_000_000
        single = Server(c6420(14), concord(5.0), seed=1).run(
            fixed_1us(), PoissonProcess(rate), 15_000
        )
        dual = ReplicatedServer(c6420(14), concord(5.0),
                                num_partitions=2, seed=1).run(
            fixed_1us(), PoissonProcess(rate), 15_000
        )
        single_tail = summarize_slowdowns(single.slowdowns()).p999
        dual_tail = summarize_slowdowns(dual.slowdowns()).p999
        assert dual_tail < single_tail

    def test_replication_hurts_load_balance_for_heavy_tails(self):
        # Disjoint partitions cannot share queue depth: with few workers
        # per partition, heavy-tailed work suffers vs one global queue.
        workload = bimodal_50_1_50_100()
        rate = 0.6 * 14 * 1e6 / workload.mean_us()
        single = Server(c6420(14), concord(5.0), seed=2).run(
            workload, PoissonProcess(rate), 8000
        )
        sharded = ReplicatedServer(c6420(14), concord(5.0),
                                   num_partitions=7, seed=2).run(
            workload, PoissonProcess(rate), 8000
        )
        single_tail = summarize_slowdowns(single.slowdowns()).p999
        sharded_tail = summarize_slowdowns(sharded.slowdowns()).p999
        assert sharded_tail > single_tail

    def test_merged_result_interface(self):
        server = ReplicatedServer(c6420(4), concord(5.0),
                                  num_partitions=2, seed=1)
        result = server.run(fixed_1us(), PoissonProcess(100_000), 1000)
        assert "x2" in result.config_name
        assert 0.0 <= result.dispatcher_utilization() <= 1.0
        assert 0.0 <= result.worker_idle_fraction() <= 1.0
        assert result.throughput_rps() > 0
        assert len(result.worker_stats) == 4

    def test_single_shot(self):
        server = ReplicatedServer(c6420(2), concord(5.0),
                                  num_partitions=2, seed=1)
        server.run(fixed_1us(), PoissonProcess(10_000), 100)
        with pytest.raises(RuntimeError):
            server.run(fixed_1us(), PoissonProcess(10_000), 100)
