"""Integration tests for the simulated server: conservation, determinism,
queueing-theory agreement, and the paper's qualitative invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Server, concord, persephone_fcfs, shinjuku
from repro.core.presets import concord_no_steal, coop_jbsq, ideal_single_queue
from repro.models.queueing import mmk_mean_wait
from repro.workloads import (
    Exponential,
    PoissonProcess,
    bimodal_50_1_50_100,
    fixed_1us,
)
from repro.workloads.distributions import ClassMix, RequestClass
from repro.hardware import c6420


def run(config, workload, rate, n, workers=14, seed=3):
    server = Server(c6420(workers), config, seed=seed)
    return server.run(workload, PoissonProcess(rate), n)


class TestConservation:
    def test_every_request_completes_exactly_once(self):
        result = run(shinjuku(5.0), bimodal_50_1_50_100(), 100_000, 2000)
        assert result.drained
        rids = [r.rid for r in result.records]
        assert len(rids) == 2000
        assert len(set(rids)) == 2000

    def test_completed_requests_have_no_remaining_work(self):
        result = run(concord(5.0), bimodal_50_1_50_100(), 150_000, 2000)
        assert all(r.remaining_cycles == 0 for r in result.records)
        assert all(r.completion_cycle is not None for r in result.records)

    def test_slowdown_at_least_one(self):
        for config in (persephone_fcfs(), shinjuku(5.0), concord(5.0)):
            result = run(config, bimodal_50_1_50_100(), 100_000, 1500)
            assert all(s >= 1.0 for s in result.slowdowns(warmup_frac=0.0)), (
                config.name
            )

    def test_completion_after_arrival_plus_service(self):
        result = run(shinjuku(5.0), fixed_1us(), 500_000, 2000)
        for r in result.records:
            assert r.completion_cycle >= r.arrival_cycle + r.service_cycles


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = run(concord(5.0), bimodal_50_1_50_100(), 150_000, 1500, seed=11)
        b = run(concord(5.0), bimodal_50_1_50_100(), 150_000, 1500, seed=11)
        assert a.slowdowns() == b.slowdowns()
        assert a.dispatcher_stats == b.dispatcher_stats

    def test_different_seed_different_results(self):
        a = run(concord(5.0), bimodal_50_1_50_100(), 150_000, 1500, seed=11)
        b = run(concord(5.0), bimodal_50_1_50_100(), 150_000, 1500, seed=12)
        assert a.slowdowns() != b.slowdowns()

    def test_server_is_single_shot(self):
        server = Server(c6420(2), persephone_fcfs(), seed=0)
        server.run(fixed_1us(), PoissonProcess(100_000), 50)
        with pytest.raises(RuntimeError):
            server.run(fixed_1us(), PoissonProcess(100_000), 50)


class TestPreemptionBehaviour:
    def test_nonpreemptive_never_preempts(self):
        result = run(persephone_fcfs(), bimodal_50_1_50_100(), 100_000, 1500)
        assert all(r.preemptions == 0 for r in result.records)

    def test_long_requests_preempted_about_service_over_quantum(self):
        # At light load a 100us request with a 5us quantum yields ~19 times
        # (the last slice completes instead of yielding).
        result = run(shinjuku(5.0), bimodal_50_1_50_100(), 20_000, 1200)
        longs = [r for r in result.records if r.kind == "long"]
        assert longs
        mean_preempts = sum(r.preemptions for r in longs) / len(longs)
        assert 15 <= mean_preempts <= 21

    def test_short_requests_never_preempted(self):
        result = run(shinjuku(5.0), bimodal_50_1_50_100(), 100_000, 1500)
        shorts = [r for r in result.records if r.kind == "short"]
        assert shorts
        assert all(r.preemptions == 0 for r in shorts)

    def test_preemption_helps_heavy_tail(self):
        # The core claim behind Fig. 5-7: with long requests in the mix,
        # preemptive scheduling crushes the short requests' tail slowdown.
        from repro.metrics import summarize_slowdowns

        rate, n = 180_000, 4000
        blocked = summarize_slowdowns(
            run(persephone_fcfs(), bimodal_50_1_50_100(), rate, n).slowdowns()
        )
        preempted = summarize_slowdowns(
            run(shinjuku(5.0), bimodal_50_1_50_100(), rate, n).slowdowns()
        )
        assert preempted.p999 < blocked.p999


class TestQueueingAgreement:
    def test_ideal_mmk_matches_erlang_c(self):
        # Zero-overhead single queue + exponential service == M/M/k.
        workers, rate_rps, mean_us = 4, 320_000, 10.0
        config = ideal_single_queue()
        server = Server(c6420(workers), config, seed=5)
        workload = ClassMix(
            [RequestClass("exp", 1.0, Exponential(mean_us))], name="exp"
        )
        result = server.run(workload, PoissonProcess(rate_rps), 40_000)
        records = result.measured_records(warmup_frac=0.1)
        clock = server.clock
        waits_us = [
            clock.cycles_to_us(r.sojourn_cycles()) - r.service_us for r in records
        ]
        mean_wait = sum(waits_us) / len(waits_us)
        expected = mmk_mean_wait(
            rate_rps / 1e6, 1.0 / mean_us, workers
        )  # per-us rates
        assert mean_wait == pytest.approx(expected, rel=0.25)


class TestArrivalSeam:
    """The injectable-arrival refactor: run() is now a thin wrapper over
    run_source(), and external agents can push requests in via deliver()."""

    def test_run_source_with_explicit_pairs(self):
        server = Server(c6420(2), persephone_fcfs(), seed=0)
        pairs = [
            (float(i * 20), server.request_from_sample(i, "fixed", 1.0))
            for i in range(50)
        ]
        result = server.run_source(iter(pairs), expected=50)
        assert result.drained
        assert len(result.records) == 50
        clock = server.clock
        for record in result.records:
            expected_cycle = clock.us_to_cycles(record.rid * 20.0)
            assert record.arrival_cycle == expected_cycle

    def test_open_loop_source_matches_run(self):
        # run() must be exactly the default source fed through run_source().
        direct = run(concord(5.0), bimodal_50_1_50_100(), 150_000, 800, seed=4)
        server = Server(c6420(14), concord(5.0), seed=4)
        via_source = server.run_source(
            server.arrival_source(
                bimodal_50_1_50_100(), PoissonProcess(150_000), 800
            ),
            expected=800,
        )
        assert direct.slowdowns() == via_source.slowdowns()
        assert direct.dispatcher_stats == via_source.dispatcher_stats

    def test_external_delivery_on_shared_simulator(self):
        # Two servers coexist in one simulation — the seam repro.cluster
        # plugs into.
        from repro.sim.engine import Simulator
        from repro.sim.rng import RngStreams

        sim = Simulator()
        master = RngStreams(21)
        servers = [
            Server(c6420(2), persephone_fcfs(), sim=sim,
                   streams=master.spawn_key("server", i))
            for i in range(2)
        ]
        for index, server in enumerate(servers):
            for i in range(20):
                request = server.request_from_sample(i, "fixed", 1.0)
                sim.at(
                    server.clock.us_to_cycles(5.0 * i + index),
                    lambda s=server, r=request: s.deliver(r),
                    "external",
                )
        sim.run()
        for server in servers:
            assert server.num_delivered == 20
            assert server.inflight == 0
            result = server.collect_result()
            assert result.drained
            assert len(result.records) == 20

    def test_inflight_tracks_delivered_minus_completed(self):
        server = Server(c6420(2), persephone_fcfs(), seed=0)
        assert server.inflight == 0
        request = server.request_from_sample(0, "fixed", 10.0)
        server.deliver(request)
        assert server.inflight == 1
        server.sim.run()
        assert server.inflight == 0

    def test_completion_hook_fires_per_request(self):
        server = Server(c6420(2), persephone_fcfs(), seed=0)
        seen = []
        server.on_complete = seen.append
        server.run(fixed_1us(), PoissonProcess(100_000), 100)
        assert len(seen) == 100
        assert {r.rid for r in seen} == set(range(100))


class TestJBSQ:
    def test_outstanding_never_exceeds_depth(self):
        config = concord_no_steal(5.0, jbsq_depth=2)
        server = Server(c6420(4), config, seed=9)
        seen = []
        for worker in server.workers:
            original = worker.enqueue

            def checked(request, ready_at, w=worker, orig=original):
                orig(request, ready_at)
                seen.append(w.outstanding)

            worker.enqueue = checked
        server.run(bimodal_50_1_50_100(), PoissonProcess(60_000), 1500)
        assert seen
        assert max(seen) <= 2

    def test_jbsq_reduces_worker_idle_vs_sq(self):
        # Fig. 3's effect: at saturation with short requests, JBSQ workers
        # idle far less than single-queue workers.
        sq = run(persephone_fcfs(), fixed_1us(), 3_500_000, 20_000)
        jbsq_config = coop_jbsq(100.0)  # quantum larger than service
        jbsq = run(jbsq_config, fixed_1us(), 3_500_000, 20_000)
        assert jbsq.worker_idle_fraction() < sq.worker_idle_fraction()


class TestWorkConservingDispatcher:
    def test_stolen_requests_finish_on_dispatcher(self):
        result = run(concord(5.0), bimodal_50_1_50_100(), 250_000, 4000)
        stolen = result.stolen_requests()
        assert result.dispatcher_stats["steal_completions"] == len(stolen)
        for r in stolen:
            assert r.started_by_dispatcher
            assert r.last_worker is None  # never migrated to a worker

    def test_steal_disabled_variant_never_steals(self):
        result = run(concord_no_steal(5.0), bimodal_50_1_50_100(), 250_000, 3000)
        assert result.dispatcher_stats["steals_started"] == 0
        assert not result.stolen_requests()


class TestFCFSOrdering:
    def test_single_worker_fcfs_completes_in_arrival_order(self):
        result = run(persephone_fcfs(), fixed_1us(), 200_000, 800, workers=1)
        completion_order = [r.rid for r in result.records]
        assert completion_order == sorted(completion_order)


class TestSingleQueueHandoff:
    def test_sparse_requests_pay_handoff_floor(self):
        # One worker, ultra-light load: sojourn = rx + push + receive +
        # switch + service; the handoff component must be >= the two-miss
        # floor of section 2.2.2.
        result = run(persephone_fcfs(), fixed_1us(), 1_000, 200, workers=1)
        service = result.records[0].service_cycles
        extras = [r.sojourn_cycles() - service for r in result.records]
        assert min(extras) >= 400


@given(
    rate=st.sampled_from([50_000, 150_000, 250_000]),
    seed=st.integers(min_value=0, max_value=1000),
    quantum=st.sampled_from([2.0, 5.0, 10.0]),
)
@settings(max_examples=8, deadline=None)
def test_property_all_configs_drain_and_conserve(rate, seed, quantum):
    for config in (persephone_fcfs(), shinjuku(quantum), concord(quantum)):
        server = Server(c6420(6), config, seed=seed)
        result = server.run(
            bimodal_50_1_50_100(), PoissonProcess(rate), 400
        )
        assert result.drained
        assert len(result.records) == 400
        assert all(r.remaining_cycles == 0 for r in result.records)
        assert all(r.slowdown() >= 1.0 for r in result.records)


class TestClientView:
    def test_client_latency_includes_rtt(self):
        result = run(persephone_fcfs(), fixed_1us(), 50_000, 500, workers=4)
        latencies = result.client_latencies_us(warmup_frac=0.0)
        assert len(latencies) == 500
        # Every end-to-end latency carries the 10us round trip on top of
        # at least the 1us service time.
        assert min(latencies) >= 11.0

    def test_custom_rtt(self):
        result = run(persephone_fcfs(), fixed_1us(), 50_000, 200, workers=4)
        base = min(result.client_latencies_us(warmup_frac=0.0, rtt_ns=0))
        with_rtt = min(result.client_latencies_us(warmup_frac=0.0,
                                                  rtt_ns=20_000))
        assert with_rtt - base == 20.0
