"""White-box tests for the work-conserving dispatcher's steal slices:
begin/interrupt/pause/resume, quantum capping, and buffer exclusivity
(section 3.3)."""

from repro.core import Server, concord
from repro.hardware import c6420
from repro.workloads import PoissonProcess
from repro.workloads.distributions import bimodal
from repro.workloads.named import bimodal_50_1_50_100


def overload_run(workers=2, rate=60_000, n=2500, seed=4, quantum=5.0):
    server = Server(c6420(workers), concord(quantum), seed=seed)
    result = server.run(bimodal_50_1_50_100(), PoissonProcess(rate), n)
    return server, result


class TestStealSlices:
    def test_interrupted_slices_resume_and_finish(self):
        server, result = overload_run()
        stats = result.dispatcher_stats
        # Under overload the dispatcher steals, gets interrupted by rx and
        # preemption traffic, and still finishes every stolen request.
        assert stats["steals_started"] > 0
        assert stats["steal_completions"] == len(result.stolen_requests())
        assert result.drained
        assert server.dispatcher.steal_buffer is None
        assert server.dispatcher._steal is None

    def test_stolen_work_charged_to_dispatcher(self):
        _server, result = overload_run()
        stats = result.dispatcher_stats
        stolen_work = sum(
            r.service_cycles for r in result.stolen_requests()
        )
        if stolen_work:
            # Stolen execution runs at the rdtsc-instrumented rate, so the
            # busy time exceeds the raw work.
            assert stats["steal_busy_cycles"] >= stolen_work

    def test_slices_are_quantum_capped(self):
        # Stolen long requests must be processed in multiple slices: the
        # dispatcher self-preempts each quantum (section 3.3), so a stolen
        # 100us request at a 5us quantum cannot finish in one slice.
        server, result = overload_run(quantum=5.0)
        stolen_longs = [
            r for r in result.stolen_requests() if r.kind == "long"
        ]
        if stolen_longs:
            for record in stolen_longs:
                processing = (
                    record.completion_cycle - record.first_dispatch_cycle
                )
                # Far longer than a single uninterrupted execution.
                assert processing > record.service_cycles

    def test_steals_only_nonstarted_requests(self):
        _server, result = overload_run()
        for record in result.stolen_requests():
            # A stolen request never ran on a worker: dispatcher-only.
            assert record.last_worker is None

    def test_one_outstanding_stolen_context(self):
        # The dedicated buffer holds at most one partially-executed stolen
        # request; instrument _begin_steal to observe the invariant.
        server = Server(c6420(2), concord(5.0), seed=9)
        dispatcher = server.dispatcher
        original = dispatcher._begin_steal
        violations = []

        def checked():
            if dispatcher._steal is not None:
                violations.append("begin while slice active")
            original()

        dispatcher._begin_steal = checked
        server.run(bimodal_50_1_50_100(), PoissonProcess(60_000), 2000)
        assert not violations

    def test_no_steal_of_short_queue_when_workers_free(self):
        # Light load, many workers: queues never fill, never steal.
        server = Server(c6420(8), concord(5.0), seed=1)
        result = server.run(
            bimodal(90, 1.0, 10, 5.0), PoissonProcess(100_000), 2000
        )
        assert result.dispatcher_stats["steals_started"] == 0
