"""Focused tests for worker behaviour: epoch guards, idle accounting,
timing invariants."""

from repro.core import Server, concord, shinjuku
from repro.core.presets import persephone_fcfs
from repro.hardware import c6420
from repro.workloads import PoissonProcess
from repro.workloads.distributions import bimodal
from repro.workloads.named import bimodal_50_1_50_100, fixed_1us


def run(config, workload, rate, n, workers=4, seed=2):
    server = Server(c6420(workers), config, seed=seed)
    return server.run(workload, PoissonProcess(rate), n), server


class TestEpochGuards:
    def test_wasted_signals_counted_not_crashed(self):
        # Aggressive quantum close to the service time races completions
        # against preemption notices.
        workload = bimodal(50, 2.0, 50, 2.2)
        result, server = run(shinjuku(2.0), workload, 800_000, 4000)
        assert result.drained
        wasted = sum(w.wasted_signals for w in server.workers)
        assert wasted >= 0  # never negative, never fatal

    def test_preempted_work_is_conserved(self):
        result, _server = run(
            concord(2.0), bimodal_50_1_50_100(), 100_000, 2000
        )
        for record in result.records:
            assert record.remaining_cycles == 0
            # A 100us request with a 2us quantum must be preempted a lot.
            if record.kind == "long" and not record.started_by_dispatcher:
                assert record.preemptions > 10


class TestIdleAccounting:
    def test_idle_plus_busy_bounded_by_duration(self):
        result, server = run(
            persephone_fcfs(), fixed_1us(), 2_000_000, 5000, workers=4
        )
        duration = result.end_cycle
        for worker in server.workers:
            assert worker.idle_cycles + worker.busy_cycles <= duration + 1

    def test_work_cycles_match_completed_service(self):
        result, server = run(
            persephone_fcfs(), fixed_1us(), 1_000_000, 3000, workers=4
        )
        total_work = sum(w.work_cycles for w in server.workers)
        total_service = sum(r.service_cycles for r in result.records)
        assert total_work == total_service

    def test_work_conserved_under_preemption(self):
        result, server = run(
            shinjuku(5.0), bimodal_50_1_50_100(), 100_000, 2000, workers=4
        )
        total_work = sum(w.work_cycles for w in server.workers)
        total_service = sum(r.service_cycles for r in result.records)
        # Integer rounding at each preemption loses < 1 cycle per slice.
        total_preemptions = sum(r.preemptions for r in result.records)
        assert abs(total_work - total_service) <= total_preemptions + 1


class TestTimingInvariants:
    def test_first_dispatch_after_arrival(self):
        result, _server = run(
            concord(5.0), bimodal_50_1_50_100(), 150_000, 2000
        )
        for record in result.records:
            assert record.first_dispatch_cycle >= record.arrival_cycle
            assert record.completion_cycle > record.first_dispatch_cycle

    def test_instrumentation_stretches_service(self):
        # Concord's worker executes instrumented code: minimum slowdown of
        # a never-preempted request exceeds the instrumentation tax.
        result, server = run(concord(50.0), fixed_1us(), 1_000, 300)
        untouched = [r for r in result.records if r.preemptions == 0
                     and not r.started_by_dispatcher]
        assert untouched
        for record in untouched:
            sojourn = record.sojourn_cycles()
            assert sojourn >= record.service_cycles * server.worker_rate - 1

    def test_completion_order_matches_records_list(self):
        result, _server = run(
            persephone_fcfs(), fixed_1us(), 500_000, 1000
        )
        cycles = [r.completion_cycle for r in result.records]
        assert cycles == sorted(cycles)


class TestStolenRequestTiming:
    def test_stolen_requests_run_slower(self):
        # Stolen requests execute rdtsc-instrumented code on the dispatcher
        # and cannot migrate back (section 3.3/5.5): their minimum
        # processing time reflects the dispatcher rate.
        result, server = run(
            concord(5.0), bimodal_50_1_50_100(), 60_000, 4000, workers=2,
            seed=5,
        )
        stolen = [r for r in result.stolen_requests()
                  if r.kind == "short" and r.preemptions == 0]
        if stolen:  # load-dependent; guard for robustness
            for record in stolen:
                processing = record.completion_cycle - record.first_dispatch_cycle
                assert processing >= record.service_cycles
